//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the subset of the proptest API the
//! workspace's test suites use: [`strategy::Strategy`] with
//! `prop_map` / `prop_filter` / `prop_flat_map` / `prop_perturb` /
//! `prop_recursive` adapters, numeric range strategies, tuple
//! strategies, [`strategy::Just`], `any::<T>()`, a character-class
//! subset of string "regex" strategies, `prop_oneof!`,
//! [`collection::vec`], and the `proptest!` runner macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!`.
//!
//! Generation is deterministic: every test function derives its seed
//! from its module path and case index, so failures reproduce exactly.
//! There is no shrinking — the failing case's inputs are reported via
//! the panic message instead.

pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Derives an independent generator.
        pub fn fork(&mut self) -> TestRng {
            TestRng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
        }
    }

    /// A strategy could not produce a value (e.g. a filter never
    /// matched); the whole test case is re-drawn.
    #[derive(Debug, Clone)]
    pub struct Rejection(pub String);

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case should be skipped and another drawn (`prop_assume!`).
        Reject(String),
        /// The property failed; the test panics.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (skip) with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Runner configuration; only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: draws cases until `config.cases` pass,
    /// panicking on the first failure. Called by the `proptest!` macro.
    pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let mut case = 0u64;
        while passed < config.cases {
            case += 1;
            let seed = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case);
            let mut rng = TestRng::new(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    assert!(
                        rejected < 4096 + 64 * config.cases as u64,
                        "{name}: too many rejected cases (last reason: {reason})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed on case {case} (seed {seed:#018x}): {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::{Rejection, TestRng};
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value, or rejects the attempt.
        ///
        /// # Errors
        ///
        /// [`Rejection`] when the strategy cannot produce a value (for
        /// example a `prop_filter` that never matched); the runner
        /// re-draws the whole case.
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `pred` holds.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Transforms generated values with access to a private RNG.
        fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> O,
        {
            Perturb { inner: self, f }
        }

        /// Builds recursive values: `self` is the leaf strategy and
        /// `branch` wraps an inner strategy into one level of nesting.
        /// `depth` bounds the nesting; the size hints are accepted for
        /// API compatibility but not used.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let deeper = branch(level).boxed();
                level = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            level
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> Result<T, Rejection>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
            Ok(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
            Ok((self.f)(self.inner.generate(rng)?))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
            for _ in 0..256 {
                let v = self.inner.generate(rng)?;
                if (self.pred)(&v) {
                    return Ok(v);
                }
            }
            Err(Rejection(self.reason.clone()))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Rejection> {
            let first = self.inner.generate(rng)?;
            (self.f)(first).generate(rng)
        }
    }

    /// See [`Strategy::prop_perturb`].
    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Perturb<S, F>
    where
        S: Strategy,
        F: Fn(S::Value, TestRng) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
            let v = self.inner.generate(rng)?;
            let fork = rng.fork();
            Ok((self.f)(v, fork))
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128).wrapping_mul(span) >> 64;
                    Ok((self.start as i128 + off as i128) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128).wrapping_mul(span) >> 64;
                    Ok((lo as i128 + off as i128) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
            Ok(self.start + (self.end - self.start) * rng.next_f64())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> Result<f32, Rejection> {
            Ok(self.start + (self.end - self.start) * rng.next_f64() as f32)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+);)*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                    Ok(($(self.$idx.generate(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    /// String strategies from a pattern: a sequence of atoms (`.`,
    /// `[set]` with `a-z` ranges, or a literal character), each with an
    /// optional `{n}` / `{lo,hi}` repetition count. This covers the
    /// character-class subset of proptest's regex strategies that the
    /// workspace uses.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> Result<String, Rejection> {
            Ok(generate_pattern(self, rng))
        }
    }

    fn generate_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            assert!(lo <= hi, "bad character range in pattern {pat}");
                            set.extend(lo..=hi);
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated [set] in pattern {pat}");
                    i += 1;
                    set
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated {{}} in pattern {pat}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("repetition lower bound"),
                        b.trim().parse::<usize>().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "bad repetition bounds in pattern {pat}");
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            assert!(!alphabet.is_empty(), "empty character set in pattern {pat}");
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::{Rejection, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
            Ok(T::arbitrary(rng))
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mostly moderate magnitudes, with occasional special
            // values, mirroring proptest's habit of probing edge cases.
            match rng.below(16) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                4 => f64::NAN,
                5 => f64::MAX,
                6 => f64::MIN_POSITIVE,
                _ => {
                    let magnitude = 10f64.powf(rng.next_f64() * 18.0 - 9.0);
                    let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                    sign * magnitude * rng.next_f64()
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('?')
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::{Rejection, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
            let span = (self.len.hi - self.len.lo + 1) as u64;
            let n = self.len.lo + rng.below(span) as usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.generate(rng)?);
            }
            Ok(out)
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests; see the crate docs for the supported form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(
                            let $arg = match $crate::strategy::Strategy::generate(
                                &($strat),
                                __proptest_rng,
                            ) {
                                Ok(v) => v,
                                Err(r) => {
                                    return Err($crate::test_runner::TestCaseError::Reject(r.0))
                                }
                            };
                        )+
                        #[allow(clippy::redundant_closure_call)]
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        })()
                    },
                );
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                lhs,
                rhs,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                lhs, rhs
            )));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    fn draw<S: Strategy>(s: &S) -> S::Value {
        s.generate(&mut TestRng::new(42)).expect("generates")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng).unwrap();
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).generate(&mut rng).unwrap();
            assert!((-5..=5).contains(&w));
            let f = (-1.5f64..1.5).generate(&mut rng).unwrap();
            assert!((-1.5..1.5).contains(&f));
        }
    }

    #[test]
    fn patterns_match_their_alphabet() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng).unwrap();
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_and_collections_compose() {
        let strat = crate::collection::vec(prop_oneof![Just(1u32), 5u32..8], 2..5);
        let v = draw(&strat);
        assert!(v.len() >= 2 && v.len() < 5);
        assert!(v.iter().all(|&x| x == 1 || (5..8).contains(&x)));
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 1..10);
        let a = strat.generate(&mut TestRng::new(5)).unwrap();
        let b = strat.generate(&mut TestRng::new(5)).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_roundtrip(x in 0u64..100, flips in any::<bool>()) {
            prop_assume!(x != 99);
            prop_assert!(x < 100);
            prop_assert_eq!(flips, flips);
            prop_assert_ne!(x, 100);
        }
    }
}
