//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the criterion API the workspace's
//! benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size` /
//! `bench_function` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is a simple best-of-samples wall-clock measurement printed to
//! stdout — enough to compare runs by eye, with none of criterion's
//! statistics.

use std::fmt::Display;
use std::time::Instant;

/// An identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    best_ns: u128,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, keeping the best sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = start.elapsed().as_nanos() / self.iters_per_sample as u128;
            self.best_ns = self.best_ns.min(ns);
        }
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        best_ns: u128::MAX,
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.best_ns == u128::MAX {
        println!("{name:<40} (no measurement)");
    } else {
        println!("{name:<40} best {:>12} ns/iter", b.best_ns);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
