#!/usr/bin/env bash
# Checks that every relative markdown link in the repository's docs
# points at a file that exists. External (http) links and pure anchors
# are skipped. Exits non-zero listing each broken link.
set -euo pipefail
cd "$(dirname "$0")/.."

# Reference docs other files link to by name must exist before the link
# scan — a deleted doc would otherwise only be caught if something still
# links to it.
for required in docs/architecture.md docs/observability.md \
    docs/scsql_reference.md docs/server.md; do
    if [ ! -f "$required" ]; then
        echo "MISSING: required doc $required"
        exit 1
    fi
done

broken=$(
    for doc in README.md EXPERIMENTS.md DESIGN.md ROADMAP.md docs/*.md; do
        [ -f "$doc" ] || continue
        dir=$(dirname "$doc")
        # Pull out each markdown link target: [text](target)
        grep -o ']([^)]*)' "$doc" 2>/dev/null | sed 's/^](//; s/)$//' |
            while read -r target; do
                case "$target" in
                http://* | https://* | "#"*) continue ;;
                esac
                path="${target%%#*}"
                [ -n "$path" ] || continue
                if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
                    echo "BROKEN: $doc -> $target"
                fi
            done
    done || true
)

if [ -n "$broken" ]; then
    echo "$broken"
    echo "broken markdown links found"
    exit 1
fi
echo "all markdown links resolve"
