#!/usr/bin/env bash
# Checks that every relative markdown link in the repository's docs
# points at a file that exists. External (http) links and pure anchors
# are skipped. Exits non-zero listing each broken link.
set -euo pipefail
cd "$(dirname "$0")/.."

broken=$(
    for doc in README.md EXPERIMENTS.md DESIGN.md ROADMAP.md docs/*.md; do
        [ -f "$doc" ] || continue
        dir=$(dirname "$doc")
        # Pull out each markdown link target: [text](target)
        grep -o ']([^)]*)' "$doc" 2>/dev/null | sed 's/^](//; s/)$//' |
            while read -r target; do
                case "$target" in
                http://* | https://* | "#"*) continue ;;
                esac
                path="${target%%#*}"
                [ -n "$path" ] || continue
                if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
                    echo "BROKEN: $doc -> $target"
                fi
            done
    done || true
)

if [ -n "$broken" ]; then
    echo "$broken"
    echo "broken markdown links found"
    exit 1
fi
echo "all markdown links resolve"
