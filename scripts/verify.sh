#!/usr/bin/env bash
# The repository's verification gate: the tier-1 commands plus style and
# lint checks. CI runs exactly this script; run it locally before
# pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perfstat (byte-identity across execution tiers + columnar gate)"
# perfstat exits non-zero if any execution tier (coalesced, parallel,
# jittered, fused-scalar, columnar) deviates from the interpreted
# reference series, if the batch passes' accounting (answer, finished
# time, RNG draws, absorbed batches) diverges across tiers, or if a
# batch pass drops below its speedup floor (take-sum < 1.3,
# filter-heavy < 1.9, relay < 1.3), or if the everything-on
# observability pass regresses the jittered grid by 2% or more.
./target/release/perfstat --out /tmp/perfstat-verify.json
rm -f /tmp/perfstat-verify.json

echo "verify: OK"
