#!/usr/bin/env bash
# The repository's verification gate: the tier-1 commands plus style and
# lint checks. CI runs exactly this script; run it locally before
# pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perfstat (byte-identity across execution tiers + columnar gate)"
# perfstat exits non-zero if any execution tier (coalesced, parallel,
# jittered, fused-scalar, columnar) deviates from the interpreted
# reference series, if the batch passes' accounting (answer, finished
# time, RNG draws, absorbed batches) diverges across tiers, or if a
# batch pass drops below its speedup floor (take-sum < 1.3,
# filter-heavy < 1.9, relay < 1.3), or if the everything-on
# observability pass regresses the jittered grid by 2% or more.
./target/release/perfstat --out /tmp/perfstat-verify.json
rm -f /tmp/perfstat-verify.json

echo "==> scsqd smoke (served transcript == local shell transcript)"
# Start the daemon on an OS-assigned port, run a prepare/run/show-catalog
# script through the scsqc client, and diff the served transcript against
# the scsql shell running the same script locally: the deterministic
# simulation backend makes the two byte-identical. Then ask the daemon to
# shut itself down and check it exits cleanly.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cat > "$smoke_dir/smoke.scsql" <<'EOF'
prepare p2p as select extract(b) from sp a, sp b
where b=sp(streamof(count(extract(a))), 'bg', 0)
and a=sp(gen_array(300000,10),'bg',1);
run p2p;
run p2p;
show catalog;
EOF
./target/release/scsqd --listen 127.0.0.1:0 > "$smoke_dir/scsqd.out" &
scsqd_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^LISTEN //p' "$smoke_dir/scsqd.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "scsqd never announced its listen address"
    kill "$scsqd_pid" 2>/dev/null || true
    exit 1
fi
./target/release/scsqc "$addr" "$smoke_dir/smoke.scsql" > "$smoke_dir/served.out"
./target/release/scsql "$smoke_dir/smoke.scsql" > "$smoke_dir/local.out"
diff "$smoke_dir/served.out" "$smoke_dir/local.out"
printf '.shutdown\n' | ./target/release/scsqc "$addr" > /dev/null
wait "$scsqd_pid"
echo "    served == local, daemon exited cleanly"

echo "verify: OK"
