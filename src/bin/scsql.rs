//! `scsql` — an interactive SCSQL shell on the simulated LOFAR
//! environment.
//!
//! §2.1: "Users interact with SCSQ on a Linux front-end cluster." This
//! binary is that interaction surface: type SCSQL statements terminated
//! by `;`, get result values and the measured streaming performance.
//!
//! ```text
//! $ cargo run --bin scsql
//! scsql> select extract(b) from sp a, sp b
//!     -> where b=sp(streamof(count(extract(a))), 'bg', 0)
//!     -> and a=sp(gen_array(3000000,100),'bg',1);
//! 100
//! -- 1 value in 1.842s
//! ```
//!
//! Meta-commands (not SCSQL): `.help`, `.stats on|off`, `.buffer <bytes>`,
//! `.double on|off`, `.policy naive|aware`, `.quit`. A file argument runs
//! a script instead of the prompt: `scsql queries.scsql`.
//!
//! The shell is a [`scsq::Session`] over a private hub, so the session
//! statements (`prepare name as …`, `run name`, `show catalog`) work
//! here exactly as they do against a served `scsqd` — same rows, same
//! summary lines, byte for byte.

use scsq::{PlacementPolicy, Session, SessionReply};
use std::io::{BufRead, IsTerminal, Write};

struct Shell {
    session: Session,
    show_stats: bool,
    interactive: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shell = Shell {
        session: Session::lofar(),
        show_stats: false,
        interactive: std::io::stdin().is_terminal() && args.is_empty(),
    };

    if let Some(path) = args.first() {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scsql: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        let mut buffer = String::new();
        for line in text.lines() {
            shell.feed_line(line, &mut buffer);
        }
        return;
    }

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    shell.banner();
    shell.prompt(&buffer);
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if !shell.feed_line(&line, &mut buffer) {
            return;
        }
        shell.prompt(&buffer);
    }
}

impl Shell {
    fn banner(&self) {
        if self.interactive {
            println!("SCSQ — stream queries on a simulated LOFAR environment");
            println!("type `.help` for meta-commands; end SCSQL statements with `;`");
        }
    }

    fn prompt(&self, buffer: &str) {
        if self.interactive {
            let p = if buffer.trim().is_empty() {
                "scsql> "
            } else {
                "    -> "
            };
            print!("{p}");
            let _ = std::io::stdout().flush();
        }
    }

    /// Processes one input line; returns false on `.quit`.
    fn feed_line(&mut self, line: &str, buffer: &mut String) -> bool {
        let trimmed = line.trim();
        if buffer.trim().is_empty() && trimmed.starts_with('.') {
            if let Some(query) = trimmed.strip_prefix(".explain ") {
                match self.session.explain(query) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                }
                return true;
            }
            return self.meta(trimmed);
        }
        buffer.push_str(line);
        buffer.push('\n');
        while let Some(pos) = buffer.find(';') {
            let stmt: String = buffer[..=pos].to_string();
            buffer.replace_range(..=pos, "");
            let text = stmt.trim();
            if !text.is_empty() {
                self.execute(text);
            }
        }
        true
    }

    fn execute(&mut self, text: &str) {
        // Statements are split at `;`, so each chunk is one statement.
        // The session routes it: `create function` to the catalog,
        // `prepare`/`run`/`show catalog` to the session catalog,
        // queries to the engine. Rows and summaries come from
        // `SessionReply`, the same renderings `scsqd` frames on the
        // wire — the transcripts diff clean.
        match self.session.execute(text) {
            Ok(reply) => {
                for row in reply.rows() {
                    println!("{row}");
                }
                println!("{}", reply.summary());
                if self.show_stats {
                    if let SessionReply::Result { result, .. } = &reply {
                        for ch in &result.stats().channels {
                            println!(
                                "--   {} -> {} [{}] {} bytes",
                                ch.src, ch.dst, ch.carrier, ch.bytes
                            );
                        }
                        for rp in &result.stats().rp_reports {
                            println!(
                                "--   rp@{} in={} out={}{}",
                                rp.node,
                                rp.elements_in,
                                rp.elements_out,
                                if rp.is_client { " (client)" } else { "" }
                            );
                        }
                    }
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }

    fn meta(&mut self, cmd: &str) -> bool {
        let mut parts = cmd.split_whitespace();
        match parts.next().unwrap_or_default() {
            ".quit" | ".exit" => return false,
            ".help" => {
                println!(".help                this help");
                println!(".explain <query;>    show the query's set-up without running it");
                println!(".stats on|off        per-channel / per-RP statistics");
                println!(
                    ".buffer <bytes>      MPI stream buffer size (now {})",
                    self.session.options().mpi_buffer
                );
                println!(
                    ".double on|off       MPI double buffering (now {})",
                    self.session.options().mpi_double
                );
                println!(".policy naive|aware  node selection policy");
                println!(".quit                leave");
            }
            ".stats" => match parts.next() {
                Some("on") => self.show_stats = true,
                Some("off") => self.show_stats = false,
                _ => eprintln!("usage: .stats on|off"),
            },
            ".buffer" => match parts.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(b) if b > 0 => self.session.options_mut().mpi_buffer = b,
                _ => eprintln!("usage: .buffer <bytes>"),
            },
            ".double" => match parts.next() {
                Some("on") => self.session.options_mut().mpi_double = true,
                Some("off") => self.session.options_mut().mpi_double = false,
                _ => eprintln!("usage: .double on|off"),
            },
            ".policy" => match parts.next() {
                Some("naive") => self.session.options_mut().placement = PlacementPolicy::Naive,
                Some("aware") => {
                    self.session.options_mut().placement = PlacementPolicy::TopologyAware
                }
                _ => eprintln!("usage: .policy naive|aware"),
            },
            other => eprintln!("unknown meta-command `{other}` (try .help)"),
        }
        true
    }
}
