//! `scsqd` — the long-lived SCSQL server daemon.
//!
//! §2.1: "Users interact with SCSQ on a Linux front-end cluster" — SCSQ
//! runs as a service that many users query at once. `scsqd` is that
//! front door on the deterministic simulation backend: it listens on a
//! TCP or Unix-domain socket, serves any number of concurrent sessions,
//! and shares one compilation cache across all of them.
//!
//! ```text
//! $ scsqd --listen 127.0.0.1:0
//! LISTEN 127.0.0.1:43527
//! ```
//!
//! The `LISTEN <addr>` line on stdout is machine-parseable: scripts (and
//! `tests/server.rs`) read it to learn the OS-assigned port before
//! connecting with `scsqc`. The daemon runs until a session issues the
//! `.shutdown` meta-command.
//!
//! Flags:
//!
//! * `--listen ADDR` — TCP address to bind (default `127.0.0.1:0`)
//! * `--unix PATH` — bind a Unix-domain socket instead (Unix only)
//!
//! Protocol reference: `docs/server.md`.

use scsq::ScsqdServer;
use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut listen = String::from("127.0.0.1:0");
    let mut unix: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => die("scsqd: --listen needs an address"),
            },
            "--unix" => match args.next() {
                Some(path) => unix = Some(path),
                None => die("scsqd: --unix needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: scsqd [--listen ADDR | --unix PATH]");
                println!("  --listen ADDR   TCP address to bind (default 127.0.0.1:0)");
                println!("  --unix PATH     bind a Unix-domain socket instead");
                return;
            }
            other => die(&format!("scsqd: unknown flag `{other}` (try --help)")),
        }
    }

    let server = match unix {
        Some(path) => bind_unix(&path),
        None => match ScsqdServer::bind_tcp(&listen) {
            Ok(s) => s,
            Err(e) => {
                die(&format!("scsqd: cannot bind {listen}: {e}"));
            }
        },
    };
    println!("LISTEN {}", server.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = server.serve() {
        die(&format!("scsqd: {e}"));
    }
}

#[cfg(unix)]
fn bind_unix(path: &str) -> ScsqdServer {
    match ScsqdServer::bind_unix(path) {
        Ok(s) => s,
        Err(e) => die(&format!("scsqd: cannot bind {path}: {e}")),
    }
}

#[cfg(not(unix))]
fn bind_unix(_path: &str) -> ScsqdServer {
    die("scsqd: --unix is only available on Unix platforms");
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}
