//! # scsq — Super Computer Stream Query processor (reproduction)
//!
//! Umbrella crate for the SCSQ reproduction. It re-exports the public API
//! of [`scsq_core`] so that examples and integration tests can depend on a
//! single crate, mirroring how a downstream user would consume the
//! project.
//!
//! See the repository `README.md` for an architecture overview and
//! `DESIGN.md` for the experiment index.
//!
//! ## Quickstart
//!
//! ```
//! use scsq::prelude::*;
//!
//! # fn main() -> Result<(), ScsqError> {
//! let mut scsq = Scsq::lofar();
//! let result = scsq.run(
//!     "select extract(b) \
//!      from sp a, sp b \
//!      where b=sp(streamof(count(extract(a))), 'bg', 0) \
//!      and a=sp(gen_array(1000, 10), 'bg', 1);",
//! )?;
//! assert_eq!(result.values(), &[scsq::Value::from(10i64)]);
//! # Ok(())
//! # }
//! ```

pub use scsq_core::*;

/// Convenient glob import for applications.
pub mod prelude {
    pub use scsq_core::prelude::*;
}
