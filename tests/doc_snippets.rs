//! Compiles and runs every runnable SCSQL snippet in the documentation.
//!
//! Markdown code blocks fenced as ```` ```scsql ```` in `docs/` are
//! executed through the `scsql` shell binary in script mode; a snippet
//! that fails to parse, bind, place, or run fails this test. Blocks with
//! any other fence tag (grammar sketches, shell transcripts, JSON) are
//! ignored. This keeps the documentation's examples from rotting.

use std::path::Path;
use std::process::Command;

/// Extracts the contents of every ```` ```scsql ````-fenced block.
fn scsql_blocks(markdown: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in markdown.lines() {
        match &mut current {
            Some(block) => {
                if line.trim_start().starts_with("```") {
                    blocks.push(current.take().expect("in a block"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
            None => {
                if line.trim() == "```scsql" {
                    current = Some(String::new());
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```scsql block");
    blocks
}

/// Runs one snippet through the shell binary and panics with the
/// shell's stderr if it failed.
fn run_snippet(doc: &str, index: usize, snippet: &str) {
    let path = std::env::temp_dir().join(format!(
        "scsq_doc_snippet_{}_{index}.scsql",
        doc.replace(['/', '.'], "_")
    ));
    std::fs::write(&path, snippet).expect("write snippet");
    let out = Command::new(env!("CARGO_BIN_EXE_scsql"))
        .arg(&path)
        .output()
        .expect("shell binary runs");
    let _ = std::fs::remove_file(&path);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success() && !stderr.contains("error:"),
        "{doc} snippet #{index} failed:\n{snippet}\n--- stderr ---\n{stderr}"
    );
}

fn check_doc(rel: &str, expect_at_least: usize) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {rel}: {e}"));
    let blocks = scsql_blocks(&text);
    assert!(
        blocks.len() >= expect_at_least,
        "{rel}: expected at least {expect_at_least} runnable snippets, found {}",
        blocks.len()
    );
    for (i, block) in blocks.iter().enumerate() {
        run_snippet(rel, i, block);
    }
}

#[test]
fn scsql_reference_snippets_run() {
    check_doc("docs/scsql_reference.md", 7);
}

#[test]
fn server_doc_snippets_run() {
    check_doc("docs/server.md", 1);
}

/// The filter-heavy columnar example embeds its query as one plain
/// string literal; run that SCSQL through the shell too, so the
/// example's query cannot rot even when the example binary itself is
/// not built.
#[test]
fn columnar_filter_example_query_runs() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/columnar_filter.rs");
    let text = std::fs::read_to_string(&path).expect("read example");
    let start = text.find("\"select").expect("example embeds a query") + 1;
    let end = start + text[start..].find(";\"").expect("query terminator") + 1;
    run_snippet("examples/columnar_filter.rs", 0, &text[start..end]);
}

#[test]
fn observability_snippets_run() {
    check_doc("docs/observability.md", 1);
}

#[test]
fn block_extraction_is_exact() {
    let md = "intro\n```scsql\nselect 1;\n```\n```\ngrammar\n```\n```scsql\nmerge({});\n```\n";
    assert_eq!(scsql_blocks(md), vec!["select 1;\n", "merge({});\n"]);
}
