//! The paper's evaluation findings, asserted as integration tests.
//!
//! Each test reruns one of the §3 experiments (at reduced scale via the
//! shared bench harness) and checks the corresponding claim from the
//! paper's text. These are the claims `EXPERIMENTS.md` tracks.

use scsq_bench::{ablation, fig15, fig6, fig8, Scale};
use scsq_core::{HardwareSpec, NodeId, Scsq, Value};

fn spec() -> HardwareSpec {
    HardwareSpec::lofar()
}

// ---------- Figure 6 ---------------------------------------------------

#[test]
fn fig6_optimal_buffer_is_1000_bytes_for_both_modes() {
    let buffers = [500u64, 1_000, 2_000, 5_000];
    let series = fig6::run(&spec(), Scale::quick(), &buffers).unwrap();
    for s in &series {
        assert_eq!(s.peak().unwrap().0, 1_000.0, "{}: {s:?}", s.label());
    }
}

#[test]
fn fig6_sub_1k_buffers_collapse_due_to_min_torus_message() {
    let series = fig6::run(&spec(), Scale::quick(), &[100, 500, 1_000]).unwrap();
    let double = &series[1];
    // Bandwidth below 1K scales roughly linearly with the buffer size
    // (everything is padded to a 1K torus message).
    let b100 = double.y_at(100.0).unwrap();
    let b500 = double.y_at(500.0).unwrap();
    let b1000 = double.y_at(1_000.0).unwrap();
    assert!(b100 < 0.15 * b1000);
    assert!(b500 < 0.6 * b1000);
    assert!(b500 > 3.0 * b100);
}

#[test]
fn fig6_large_buffers_degrade_but_flatten() {
    // Enough data that even 1 MB buffers see a steady-state pipeline.
    let scale = Scale {
        array_bytes: 1_000_000,
        arrays: 60,
        ..Scale::quick()
    };
    let series = fig6::run(&spec(), scale, &[1_000, 50_000, 1_000_000]).unwrap();
    let double = &series[1];
    let peak = double.y_at(1_000.0).unwrap();
    let mid = double.y_at(50_000.0).unwrap();
    let big = double.y_at(1_000_000.0).unwrap();
    assert!(mid < peak, "cache misses must bite above the knee");
    assert!(
        (big - mid).abs() < 0.1 * mid,
        "the degradation saturates: {mid:.1} vs {big:.1}"
    );
}

#[test]
fn fig6_double_buffering_pays_off_for_large_buffers() {
    let series = fig6::run(&spec(), Scale::quick(), &[100, 200_000]).unwrap();
    let single = &series[0];
    let double = &series[1];
    let gain_small = double.y_at(100.0).unwrap() / single.y_at(100.0).unwrap();
    let gain_large = double.y_at(200_000.0).unwrap() / single.y_at(200_000.0).unwrap();
    assert!(gain_small < 1.1, "modes converge for tiny buffers");
    assert!(gain_large > 1.15, "double buffering wins for large buffers");
}

#[test]
fn fig6_bandwidth_is_reproducible_from_metric_streams_alone() {
    // The paper's self-measurement claim: SCSQ measures its own
    // communication performance with stream queries. An observer SP
    // running `bandwidth(metrics(a))` must agree with the externally
    // computed Figure 6 quotient (delivered bytes / query time) within
    // 1% — they differ only by the post-last-delivery EOS tail.
    let mut scsq = Scsq::lofar();
    let external = scsq
        .run(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(1000000,30),'bg',1);",
        )
        .unwrap()
        .bandwidth_into(NodeId::bg(0));
    let r = scsq
        .run(
            "select extract(m) from sp a, sp b, sp m
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(1000000,30),'bg',1)
             and m=sp(streamof(bandwidth(metrics(a))), 'bg', 2);",
        )
        .unwrap();
    let measured = match r.values() {
        [Value::Real(x)] => *x,
        other => panic!("expected one real bandwidth value, got {other:?}"),
    };
    let rel = (measured - external).abs() / external;
    assert!(
        rel < 0.01,
        "self-measured {measured:.0} B/s vs external {external:.0} B/s ({:.3}% apart)",
        rel * 100.0
    );
}

#[test]
fn fig6_self_measured_bandwidth_survives_columnar_batching() {
    // The same self-measurement claim, with the metric stream forwarded
    // over a channel to a downstream bandwidth SP — the topology where
    // delivered metric samples arrive in multi-row batches and the
    // columnar bandwidth fold (rather than the per-sample chain) can
    // absorb them. The fold must change nothing: the columnar and
    // per-element runs must agree bit for bit, and both must still
    // match the externally computed Figure 6 quotient within 1%.
    let query = "select extract(w) from sp a, sp b, sp m, sp w
         where b=sp(streamof(count(extract(a))), 'bg', 0)
         and a=sp(gen_array(100000,300),'bg',1)
         and m=sp(streamof(metrics(a)), 'bg', 2)
         and w=sp(streamof(bandwidth(extract(m))), 'bg', 3);";
    let mut scsq = Scsq::lofar();
    let external = scsq
        .run(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(100000,300),'bg',1);",
        )
        .unwrap()
        .bandwidth_into(NodeId::bg(0));
    let bandwidth_of = |scsq: &mut Scsq, columnar: bool| {
        scsq.options_mut().columnar = columnar;
        let r = scsq.run(query).unwrap();
        match r.values() {
            [Value::Real(x)] => *x,
            other => panic!("expected one real bandwidth value, got {other:?}"),
        }
    };
    let columnar = bandwidth_of(&mut scsq, true);
    let per_element = bandwidth_of(&mut scsq, false);
    assert_eq!(
        columnar.to_bits(),
        per_element.to_bits(),
        "columnar bandwidth fold must be bit-identical to the per-sample chain"
    );
    let rel = (columnar - external).abs() / external;
    assert!(
        rel < 0.01,
        "self-measured {columnar:.0} B/s vs external {external:.0} B/s ({:.3}% apart)",
        rel * 100.0
    );
}

// ---------- Figure 8 ---------------------------------------------------

#[test]
fn fig8_balanced_selection_beats_sequential() {
    let series = fig8::run(&spec(), Scale::quick(), &[50_000, 500_000]).unwrap();
    let gain = fig8::best_balanced_gain(&series);
    // §5: "stream merging performs up to 60% better if no busy
    // intermediate nodes are involved".
    assert!(gain > 1.4 && gain < 2.0, "gain={gain:.2}");
}

#[test]
fn fig8_merging_needs_much_larger_buffers_than_p2p() {
    let buffers = [1_000u64, 100_000];
    let p2p = fig6::run(&spec(), Scale::quick(), &buffers).unwrap();
    let merge = fig8::run(&spec(), Scale::quick(), &buffers).unwrap();
    let p2p_double = &p2p[1];
    let bal_double = merge
        .iter()
        .find(|s| s.label() == "balanced / double buffering")
        .unwrap();
    // P2P is already at its optimum at 1K; merging at 1K runs at a small
    // fraction of its own 100K bandwidth (obs. 3: "buffers smaller than
    // 10K are much slower for stream merging than for point-to-point").
    let merge_ratio = bal_double.y_at(1_000.0).unwrap() / bal_double.y_at(100_000.0).unwrap();
    let p2p_ratio = p2p_double.y_at(1_000.0).unwrap() / p2p_double.y_at(100_000.0).unwrap();
    assert!(merge_ratio < 0.5, "merge@1K/merge@100K = {merge_ratio:.2}");
    assert!(p2p_ratio > 1.0, "p2p@1K/p2p@100K = {p2p_ratio:.2}");
}

#[test]
fn fig8_double_buffering_matters_less_for_merging() {
    let buffers = [100_000u64];
    let p2p = fig6::run(&spec(), Scale::quick(), &buffers).unwrap();
    let merge = fig8::run(&spec(), Scale::quick(), &buffers).unwrap();
    let p2p_gain = p2p[1].y_at(100_000.0).unwrap() / p2p[0].y_at(100_000.0).unwrap();
    let bal = |mode: &str| {
        merge
            .iter()
            .find(|s| s.label() == format!("balanced / {mode} buffering"))
            .unwrap()
            .y_at(100_000.0)
            .unwrap()
    };
    let merge_gain = bal("double") / bal("single");
    assert!(
        merge_gain <= p2p_gain + 0.05,
        "merge gain {merge_gain:.2} vs p2p gain {p2p_gain:.2}"
    );
}

// ---------- Figure 15 --------------------------------------------------

#[test]
fn fig15_observation_1_many_io_nodes_win() {
    let series = fig15::run(&spec(), Scale::quick(), &[4]).unwrap();
    let at = |i: usize| series[i].y_at(4.0).unwrap();
    for single_io in 0..4 {
        assert!(
            at(4) > 1.5 * at(single_io),
            "Query 5 ({:.0}) must dominate Query {} ({:.0})",
            at(4),
            single_io + 1,
            at(single_io)
        );
    }
}

#[test]
fn fig15_observation_2_two_receivers_offload_one() {
    let series = fig15::run(&spec(), Scale::quick(), &[2, 4]).unwrap();
    let q1 = &series[0];
    let q3 = &series[2];
    assert!(q3.y_at(2.0).unwrap() > 1.15 * q1.y_at(2.0).unwrap());
    assert!(q3.y_at(4.0).unwrap() >= 0.95 * q1.y_at(4.0).unwrap());
}

#[test]
fn fig15_observation_3_q5_beats_q6() {
    let series = fig15::run(&spec(), Scale::quick(), &[4]).unwrap();
    let q5 = series[4].y_at(4.0).unwrap();
    let q6 = series[5].y_at(4.0).unwrap();
    assert!(q5 > 1.15 * q6, "q5={q5:.0} q6={q6:.0}");
}

#[test]
fn fig15_observation_4_q1_beats_q2() {
    let series = fig15::run(&spec(), Scale::quick(), &[3]).unwrap();
    let q1 = series[0].y_at(3.0).unwrap();
    let q2 = series[1].y_at(3.0).unwrap();
    assert!(q1 > 1.3 * q2, "q1={q1:.0} q2={q2:.0}");
}

#[test]
fn fig15_observation_5_q5_peaks_near_920_and_dips_at_5() {
    // Long enough streams to amortize the bgCC poll-tick start-up.
    let scale = Scale {
        array_bytes: 3_000_000,
        arrays: 25,
        ..Scale::quick()
    };
    let series = fig15::run(&spec(), scale, &[3, 4, 5]).unwrap();
    let q5 = &series[4];
    let peak = q5.y_at(4.0).unwrap();
    // "The best streaming bandwidth is achieved for Query 5, which peaks
    // at ~920 Mbps."
    assert!((850.0..980.0).contains(&peak), "peak={peak:.0} Mbps");
    // "In Query 5, there is a significant performance dip for n=5."
    let dip = q5.y_at(5.0).unwrap();
    assert!(dip < 0.9 * peak, "dip={dip:.0} vs peak={peak:.0}");
    // And the curve was still rising into the peak.
    assert!(q5.y_at(3.0).unwrap() < peak);
}

// ---------- the §5 refinement ------------------------------------------

#[test]
fn topology_aware_placement_beats_naive() {
    let series = ablation::run(&spec(), Scale::quick(), &[4]).unwrap();
    let naive = series[0].y_at(4.0).unwrap();
    let aware = series[1].y_at(4.0).unwrap();
    assert!(aware > 2.0 * naive, "aware={aware:.0} naive={naive:.0}");
}

// ---------- latency self-measurement -----------------------------------

/// The query whose a→b channel the latency tests observe.
fn latency_quantile_query(q: f64) -> String {
    format!(
        "select extract(l) from sp a, sp b, sp l
         where b=sp(streamof(count(extract(a))), 'bg', 0)
         and a=sp(gen_array(100000,50),'bg',1)
         and l=sp(streamof(quantile(latency(a), {q})), 'bg', 2);"
    )
}

#[test]
fn latency_quantiles_match_the_tracked_histogram_across_all_tiers() {
    // The paper's self-measurement claim, extended to latency: a
    // `quantile(latency(a), q)` observer must report exactly the value
    // computed externally from the watched channel's ingress→delivery
    // histogram — and all three executor tiers (interpreted, fused,
    // columnar) must agree byte for byte.
    for q in [0.5, 0.99] {
        let query = latency_quantile_query(q);
        let mut measured_by_tier = Vec::new();
        for (fuse, columnar) in [(false, false), (true, false), (true, true)] {
            let mut scsq = Scsq::lofar();
            scsq.options_mut().fuse = fuse;
            scsq.options_mut().columnar = columnar;
            let r = scsq.run(&query).unwrap();
            let measured = match r.values() {
                [Value::Integer(x)] => *x,
                other => panic!("expected one integer latency quantile, got {other:?}"),
            };
            let tracked: Vec<_> = r
                .stats()
                .channels
                .iter()
                .filter(|c| c.latency.count() > 0)
                .collect();
            assert_eq!(
                tracked.len(),
                1,
                "exactly the watched a->b channel tracks latency"
            );
            let external = tracked[0].latency.quantile(q) as i64;
            assert_eq!(
                measured, external,
                "fuse={fuse} columnar={columnar} q={q}: self-measured vs external"
            );
            measured_by_tier.push(measured);
        }
        assert!(
            measured_by_tier.windows(2).all(|w| w[0] == w[1]),
            "tiers disagree at q={q}: {measured_by_tier:?}"
        );
    }
}

#[test]
fn forwarded_latency_quantile_survives_columnar_batching() {
    // Latency samples forwarded over a stream channel to a downstream
    // quantile SP — the topology where delivered samples arrive in
    // multi-row batches and the columnar fold can absorb them. The fold
    // must change nothing: columnar and per-element runs agree bit for
    // bit, and both match the watched channel's own histogram.
    let query = "select extract(w) from sp a, sp b, sp m, sp w
         where b=sp(streamof(count(extract(a))), 'bg', 0)
         and a=sp(gen_array(100000,50),'bg',1)
         and m=sp(streamof(latency(a)), 'bg', 2)
         and w=sp(streamof(quantile(extract(m), 0.99)), 'bg', 3);";
    let mut scsq = Scsq::lofar();
    let quantile_of = |scsq: &mut Scsq, columnar: bool| {
        scsq.options_mut().columnar = columnar;
        let r = scsq.run(query).unwrap();
        let measured = match r.values() {
            [Value::Integer(x)] => *x,
            other => panic!("expected one integer latency quantile, got {other:?}"),
        };
        let external = r
            .stats()
            .channels
            .iter()
            .find(|c| c.latency.count() > 0)
            .expect("the watched a->b channel tracks latency")
            .latency
            .quantile(0.99) as i64;
        (measured, external)
    };
    let (columnar, columnar_ext) = quantile_of(&mut scsq, true);
    let (per_element, per_element_ext) = quantile_of(&mut scsq, false);
    assert_eq!(columnar, per_element, "columnar fold must change nothing");
    assert_eq!(columnar, columnar_ext);
    assert_eq!(per_element, per_element_ext);
}

#[test]
fn latency_observation_never_perturbs_the_channel() {
    // Observability may never change results: a run with per-channel
    // latency tracking on must be indistinguishable from the plain run
    // in every result-affecting respect.
    let query = "select extract(b) from sp a, sp b
         where b=sp(streamof(count(extract(a))), 'bg', 0)
         and a=sp(gen_array(100000,30),'bg',1);";
    let mut scsq = Scsq::lofar();
    let plain = scsq.run(query).unwrap();
    scsq.options_mut().observe_latency = true;
    let observed = scsq.run(query).unwrap();
    assert_eq!(plain.values(), observed.values());
    assert_eq!(plain.finished().as_nanos(), observed.finished().as_nanos());
    assert_eq!(plain.stats().events, observed.stats().events);
    let pairs = plain
        .stats()
        .channels
        .iter()
        .zip(observed.stats().channels.iter());
    let mut tracked = 0;
    for (p, o) in pairs {
        assert_eq!(p.bytes, o.bytes);
        assert_eq!(p.bytes_enqueued, o.bytes_enqueued);
        assert_eq!(p.buffers_sent, o.buffers_sent);
        assert_eq!(p.queue_peak_trains, o.queue_peak_trains);
        assert_eq!(p.latency.count(), 0, "plain run tracks nothing");
        tracked += u64::from(o.latency.count() > 0);
    }
    assert!(tracked > 0, "observed run tracked at least one channel");
}

#[test]
fn metrics_snapshot_carries_the_latency_summary() {
    let query = "select extract(b) from sp a, sp b
         where b=sp(streamof(count(extract(a))), 'bg', 0)
         and a=sp(gen_array(100000,30),'bg',1);";
    let mut scsq = Scsq::lofar();
    scsq.options_mut().observe_latency = true;
    let r = scsq.run(query).unwrap();
    let snap = scsq_engine::MetricsSnapshot::from_result(&r);
    let c = snap
        .channels
        .iter()
        .find(|c| c.lat_count > 0)
        .expect("a tracked channel reports a latency summary");
    assert!(c.lat_p50_ns > 0);
    assert!(c.lat_p50_ns <= c.lat_p95_ns);
    assert!(c.lat_p95_ns <= c.lat_p99_ns);
    assert!(c.lat_p99_ns <= c.lat_max_ns);
    let json = snap.to_json();
    for key in [
        "lat_count",
        "lat_p50_ns",
        "lat_p95_ns",
        "lat_p99_ns",
        "lat_max_ns",
    ] {
        assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
    }
}

// ---------- observability contracts ------------------------------------

/// Every JSON object key in `json` (a quoted string followed by `:`).
fn json_keys(json: &str) -> std::collections::BTreeSet<String> {
    let parts: Vec<&str> = json.split('"').collect();
    let mut keys = std::collections::BTreeSet::new();
    for i in (1..parts.len()).step_by(2) {
        if parts
            .get(i + 1)
            .is_some_and(|rest| rest.trim_start().starts_with(':'))
        {
            keys.insert(parts[i].to_string());
        }
    }
    keys
}

#[test]
fn metric_catalog_doc_matches_snapshot_json_keys() {
    // Doc-drift guard: the metric-catalog table in docs/observability.md
    // must list exactly the keys `MetricsSnapshot::to_json` emits — a
    // row per key, no stale rows, no undocumented keys.
    let doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/docs/observability.md"
    ))
    .expect("docs/observability.md exists");
    let section = doc
        .split("## Metric catalog")
        .nth(1)
        .expect("docs/observability.md has a '## Metric catalog' section");
    let mut documented = std::collections::BTreeSet::new();
    for line in section.lines() {
        if line.starts_with('#') {
            break; // next heading ends the catalog
        }
        if let Some(rest) = line.strip_prefix("| `") {
            let name = rest.split('`').next().expect("closing backtick");
            documented.insert(name.to_string());
        }
    }
    let mut scsq = Scsq::lofar();
    scsq.options_mut().observe_latency = true;
    let r = scsq
        .run(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(1000,2),'bg',1);",
        )
        .unwrap();
    let emitted = json_keys(&scsq_engine::MetricsSnapshot::from_result(&r).to_json());
    let undocumented: Vec<_> = emitted.difference(&documented).collect();
    let stale: Vec<_> = documented.difference(&emitted).collect();
    assert!(
        undocumented.is_empty() && stale.is_empty(),
        "metric catalog drifted from MetricsSnapshot::to_json — \
         undocumented: {undocumented:?}, stale rows: {stale:?}"
    );
}

#[test]
fn chrome_trace_export_is_well_formed() {
    // The flight recorder's Chrome-trace export must load in a trace
    // viewer: monotone non-decreasing `ts`, every span a matched B/E
    // pair, balanced JSON. The span gate is global and observational
    // only (the ring is thread-local), so flipping it here cannot
    // affect other tests' results.
    scsq_sim::obs::set_enabled(true);
    let _ = scsq_sim::obs::take_spans();
    let mut scsq = Scsq::lofar();
    scsq.run(
        "select extract(b) from sp a, sp b
         where b=sp(streamof(count(extract(a))), 'bg', 0)
         and a=sp(gen_array(100000,10),'bg',1);",
    )
    .unwrap();
    scsq_sim::obs::set_enabled(false);
    let drain = scsq_sim::obs::take_spans();
    assert!(!drain.spans.is_empty(), "the traced run recorded spans");
    assert_eq!(drain.dropped, 0, "a short run fits the ring");
    let json = scsq_sim::obs::chrome_trace_json(&drain.spans);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert_eq!(
        json.matches("\"ph\":\"B\"").count(),
        drain.spans.len(),
        "one begin event per span"
    );
    assert_eq!(
        json.matches("\"ph\":\"E\"").count(),
        drain.spans.len(),
        "one end event per span"
    );
    let ts: Vec<f64> = json
        .split("\"ts\":")
        .skip(1)
        .map(|s| s.split(',').next().unwrap().parse::<f64>().unwrap())
        .collect();
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "trace timestamps must be globally non-decreasing"
    );
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
