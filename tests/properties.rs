//! Cross-crate property-based tests (proptest).
//!
//! These pin down the invariants the reproduction's correctness rests
//! on: the parser never panics, marshaling round-trips every value, the
//! distributed radix-2 plan equals the direct FFT, counting queries
//! count exactly, and the simulated network behaves like a physical one
//! (conservation, monotonicity).

use proptest::prelude::*;
use scsq::prelude::*;
use scsq::{ArrayData, ClusterName};
use scsq_ql::{codec, parse_program};

// ---------- parser robustness -------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary input never panics the lexer/parser.
    #[test]
    fn parser_never_panics_on_noise(src in ".{0,200}") {
        let _ = parse_program(&src);
    }

    /// Arbitrary ASCII-ish SCSQL-flavored token soup never panics.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("select".to_string()),
                Just("from".to_string()),
                Just("where".to_string()),
                Just("and".to_string()),
                Just("in".to_string()),
                Just("sp".to_string()),
                Just("merge".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(",".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("'bg'".to_string()),
                Just("123".to_string()),
                "[a-z]{1,6}",
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse_program(&src);
    }
}

// ---------- marshaling ----------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Integer),
        any::<f64>()
            .prop_filter("NaN breaks equality", |f| !f.is_nan())
            .prop_map(Value::Real),
        ".{0,24}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(-1e9f64..1e9, 0..16)
            .prop_map(|v| Value::Array(ArrayData::Real(v))),
        proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 0..8)
            .prop_map(|v| Value::Array(ArrayData::Complex(v))),
        (1u64..10_000_000).prop_map(Value::synthetic_array),
        (0u64..1000).prop_map(|h| Value::Sp(scsq::SpHandle(h))),
    ];
    leaf.prop_recursive(3, 32, 8, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Value::Bag)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode = identity, and the declared marshaled size is an
    /// upper bound that synthetic arrays alone can exceed on the wire.
    #[test]
    fn codec_round_trips_every_value(v in arb_value()) {
        let bytes = codec::encode_to_vec(&v);
        let (back, used) = codec::decode(&bytes).expect("decode");
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(used, bytes.len());
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn codec_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode(&bytes);
    }
}

// ---------- query semantics -----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A counting query counts exactly n × arrays, for any workload
    /// shape, and the measured traffic matches the marshaled sizes.
    #[test]
    fn counting_queries_count_exactly(
        n in 1u32..6,
        arrays in 1u64..12,
        bytes in 1_000u64..500_000,
    ) {
        let mut scsq = Scsq::lofar();
        let r = scsq.run_with(
            &format!(
                "select extract(b) from bag of sp a, sp b, integer n
                 where b=sp(count(merge(a)), 'bg')
                 and a=spv((select gen_array({bytes},{arrays})
                            from integer i where i in iota(1,n)), 'be', urr('be'))
                 and n=2;"
            ),
            &[("n", Value::Integer(i64::from(n)))],
        ).expect("query runs");
        prop_assert_eq!(
            r.values(),
            &[Value::Integer(i64::from(n) * arrays as i64)]
        );
        let expected_bytes = u64::from(n) * arrays * (bytes + 9);
        prop_assert_eq!(
            r.bytes_between(ClusterName::BackEnd, ClusterName::BlueGene),
            expected_bytes
        );
    }

    /// More data never finishes earlier (monotonicity of the simulated
    /// hardware).
    #[test]
    fn more_arrays_never_finish_earlier(arrays in 1u64..10) {
        let run = |k: u64| {
            let mut scsq = Scsq::lofar();
            scsq.run(&format!(
                "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(gen_array(50000,{k}),'bg',1);"
            )).expect("query runs").finished()
        };
        prop_assert!(run(arrays + 1) >= run(arrays));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The distributed radix-2 pipeline equals the direct FFT for any
    /// power-of-two signal the receiver produces.
    #[test]
    fn distributed_fft_equals_direct(samples_pow in 4u32..10, arrays in 1u64..4) {
        let samples = 1usize << samples_pow;
        let mut scsq = Scsq::lofar();
        scsq.options_mut().receiver_samples = samples;
        scsq.options_mut().receiver_arrays = arrays;
        scsq.define(
            "create function radix2(string s) -> stream
             as select radixcombine(merge({a,b}))
             from sp a, sp b, sp c
             where a=sp(fft(odd (extract(c))))
             and b=sp(fft(even(extract(c))))
             and c=sp(receiver(s));",
        ).expect("function defines");
        let r = scsq.run("radix2('prop');").expect("query runs");
        prop_assert_eq!(r.values().len(), arrays as usize);
        for v in r.values() {
            let Value::Array(ArrayData::Complex(spec)) = v else {
                return Err(TestCaseError::fail("expected complex array"));
            };
            prop_assert_eq!(spec.len(), samples);
            // Energy must be positive and finite: a garbled combine
            // would produce NaN or zeros.
            let energy: f64 = spec.iter().map(|(re, im)| re * re + im * im).sum();
            prop_assert!(energy.is_finite() && energy > 0.0);
        }
    }

    /// Window aggregation agrees with a reference implementation for
    /// any window geometry.
    #[test]
    fn windows_match_reference(
        total in 1i64..40,
        size in 1i64..8,
        slide in 1i64..8,
    ) {
        let mut scsq = Scsq::lofar();
        let r = scsq.run(&format!(
            "select extract(w) from sp src, sp w
             where w=sp(winagg(extract(src), {size}, {slide}, 'sum'), 'bg')
             and src=sp(streamof(iota(1,{total})), 'be');"
        )).expect("query runs");

        // Reference: emit after the first full window, then every
        // `slide` elements; flush the unemitted tail.
        let xs: Vec<i64> = (1..=total).collect();
        let mut expected = Vec::new();
        let mut since = 0i64;
        let mut emitted = false;
        for i in 0..xs.len() {
            since += 1;
            let window_full = (i + 1) as i64 >= size;
            let due = if emitted { since >= slide } else { window_full };
            if due {
                let lo = (i + 1).saturating_sub(size as usize);
                expected.push(Value::Integer(xs[lo..=i].iter().sum()));
                since = 0;
                emitted = true;
            }
        }
        if since > 0 {
            // The flush covers unemitted elements, bounded by the window
            // capacity.
            let tail_len = (since as usize).min(size as usize).min(xs.len());
            let tail = &xs[xs.len() - tail_len..];
            expected.push(Value::Integer(tail.iter().sum()));
        }
        prop_assert_eq!(r.values(), expected.as_slice());
    }
}

// ---------- event queue ordering ----------------------------------------

use scsq_sim::{EventQueue, SimTime};

proptest! {
    /// The event queue (with its front-slot fast path) pops in
    /// (time, insertion-order) — exactly a stable sort by time.
    #[test]
    fn event_queue_pops_like_a_stable_sort(
        times in proptest::collection::vec(0u64..50, 0..64)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: ties keep insertion order
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, p)| (t.as_nanos(), p))).collect();
        prop_assert_eq!(got, expected);
    }

    /// Interleaved pushes and pops — the pop-then-push-later pattern the
    /// fast path optimizes — agree with a naive min-scan model at every
    /// step, including pushes that displace the cached front.
    #[test]
    fn event_queue_interleaved_ops_match_model(
        ops in proptest::collection::vec((0u64..20, proptest::arbitrary::any::<bool>()), 0..64)
    ) {
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, usize)> = Vec::new();
        let mut seq = 0usize;
        for (t, is_pop) in ops {
            if is_pop {
                let expected = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(mt, ms))| (mt, ms))
                    .map(|(i, _)| i);
                match expected {
                    Some(i) => {
                        let (mt, ms) = model.remove(i);
                        let (qt, qp) = q.pop().expect("model is non-empty");
                        prop_assert_eq!((qt.as_nanos(), qp), (mt, ms));
                    }
                    None => prop_assert!(q.pop().is_none()),
                }
            } else {
                q.push(SimTime::from_nanos(t), seq);
                model.push((t, seq));
                seq += 1;
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }
}
