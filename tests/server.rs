//! End-to-end tests of the `scsqd` daemon over a real socket.
//!
//! Each test spawns the `scsqd` binary, reads its `LISTEN <addr>` line
//! to learn the OS-assigned port, and drives it through the wire
//! protocol with [`scsq::wire::Client`] — the same path `scsqc` uses.
//! The backend is the deterministic simulation, so the suite can assert
//! byte-identity between served transcripts and the local `scsql`
//! shell, and exact compilation counts across concurrent sessions.

use scsq::wire::{Client, FrameKind};
use scsq_bench::serve::run_script;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A running `scsqd` child process bound to a loopback port.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start() -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_scsqd"))
            .args(["--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn scsqd");
        let stdout = child.stdout.as_mut().expect("scsqd stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTEN line");
        let addr = line
            .strip_prefix("LISTEN ")
            .unwrap_or_else(|| panic!("expected `LISTEN <addr>`, got {line:?}"))
            .trim()
            .to_string();
        Daemon { child, addr }
    }

    fn connect(&self) -> Client {
        Client::connect_tcp(&self.addr).expect("connect to scsqd")
    }

    /// Asks the daemon to shut down and waits for a clean exit.
    fn stop(mut self) {
        let mut c = self.connect();
        let frames = c.statement(".shutdown").expect("shutdown");
        assert_eq!(frames.last().unwrap().payload, "-- shutting down");
        let status = self.child.wait().expect("wait for scsqd");
        assert!(status.success(), "scsqd exited with {status}");
    }

    /// The daemon's `.server` stats JSON, via a throwaway session.
    fn server_stats(&self) -> String {
        let mut c = self.connect();
        let frames = c.statement(".server").expect(".server");
        assert_eq!(frames[0].kind, FrameKind::Info);
        let _ = c.bye();
        frames[0].payload.clone()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.child.try_wait().map(|s| s.is_none()).unwrap_or(false) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

fn json_field(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let rest = &json[json.find(&pat).unwrap_or_else(|| panic!("{key} in {json}")) + pat.len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

const PREPARED: &str = "select extract(b) from sp a, sp b \
                        where b=sp(streamof(count(extract(a))), 'bg', 0) \
                        and a=sp(gen_array(300000,10),'bg',1);";

#[test]
fn served_transcript_is_byte_identical_to_the_shell() {
    let script = "create function g(integer k) -> stream as gen_array(50000, k);\n\
                  select extract(b) from sp a, sp b\n\
                  where b=sp(streamof(count(extract(a))), 'bg', 0)\n\
                  and a=sp(g(7),'bg',1);\n\
                  prepare q as select extract(b) from sp a, sp b\n\
                  where b=sp(streamof(count(extract(a))), 'bg', 0)\n\
                  and a=sp(gen_array(300000,10),'bg',1);\n\
                  run q;\n\
                  run q;\n\
                  show catalog;\n\
                  run missing;\n";

    // One-shot: the scsql shell in script mode.
    let path = std::env::temp_dir().join(format!("scsq-server-test-{}.scsql", std::process::id()));
    std::fs::write(&path, script).expect("write script");
    let shell = Command::new(env!("CARGO_BIN_EXE_scsql"))
        .arg(&path)
        .output()
        .expect("run scsql");
    let _ = std::fs::remove_file(&path);
    assert!(shell.status.success());

    // Served: the same script through a live scsqd over TCP.
    let daemon = Daemon::start();
    let mut client = daemon.connect();
    let (mut out, mut err) = (Vec::new(), Vec::new());
    run_script(&mut client, script, &mut out, &mut err).expect("serve script");
    drop(client);

    assert_eq!(
        String::from_utf8_lossy(&out),
        String::from_utf8_lossy(&shell.stdout),
        "served stdout differs from the shell's"
    );
    assert_eq!(
        String::from_utf8_lossy(&err),
        String::from_utf8_lossy(&shell.stderr),
        "served stderr differs from the shell's"
    );
    // The transcript exercised every statement shape.
    let text = String::from_utf8_lossy(&out);
    assert!(text.contains("-- function defined"));
    assert!(text.contains("-- prepared q"));
    assert!(text.contains("prepared q: select extract(b)"));
    assert!(text.contains("function g: create function g("));
    assert!(text.contains("-- 2 catalog entries"));
    assert!(String::from_utf8_lossy(&err).contains("unknown prepared query"));
    daemon.stop();
}

#[test]
fn concurrent_sessions_share_one_compilation() {
    let daemon = Daemon::start();
    // Two clients prepare the same query text at the same time; the
    // hub's interning cache must compile it exactly once.
    let rows: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let addr = &daemon.addr;
                s.spawn(move || {
                    let mut c = Client::connect_tcp(addr).expect("connect");
                    let frames = c
                        .statement(&format!("prepare q{i} as {PREPARED}"))
                        .expect("prepare");
                    assert_eq!(frames.last().unwrap().payload, format!("-- prepared q{i}"));
                    let frames = c.statement(&format!("run q{i};")).expect("run");
                    assert_eq!(frames[0].kind, FrameKind::Row);
                    let row = frames[0].payload.clone();
                    c.bye().expect("bye");
                    row
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(rows[0], rows[1], "shared plan, identical results");
    assert_eq!(rows[0], "10");

    let stats = daemon.server_stats();
    assert_eq!(
        json_field(&stats, "compilations"),
        1,
        "two prepares, one compilation: {stats}"
    );
    assert_eq!(json_field(&stats, "plan_cache_hits"), 1, "{stats}");
    assert_eq!(json_field(&stats, "plan_cache_len"), 1, "{stats}");
    daemon.stop();
}

#[test]
fn dropped_connection_releases_its_session_only() {
    let daemon = Daemon::start();
    let mut a = daemon.connect();
    let mut b = daemon.connect();
    a.statement(&format!("prepare mine as {PREPARED}")).unwrap();
    b.statement(&format!("prepare q as {PREPARED}")).unwrap();

    // Kill A's connection without a BYE; the server must reap the
    // session without touching B's catalog or the shared cache.
    drop(a);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = daemon.server_stats();
        // The probe session itself is already closed when `.server`
        // replies were captured from inside it, so expect B + probe.
        if json_field(&stats, "sessions_open") <= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "session A never reaped: {stats}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // B is unaffected and still resolves its own name…
    let frames = b.statement("run q;").unwrap();
    assert_eq!(frames[0].payload, "10");
    // …while A's name was private to A and is gone with it.
    let frames = b.statement("run mine;").unwrap();
    assert_eq!(frames[0].kind, FrameKind::Err);
    assert!(frames[0].payload.contains("unknown prepared query"));
    let stats = daemon.server_stats();
    assert_eq!(json_field(&stats, "compilations"), 1, "{stats}");
    b.bye().unwrap();
    daemon.stop();
}

#[test]
fn metrics_and_profile_frames_carry_observability_payloads() {
    let daemon = Daemon::start();
    let mut c = daemon.connect();
    c.statement(".metrics on").unwrap();
    c.statement(".profile on").unwrap();
    let frames = c.statement(PREPARED).unwrap();
    let kinds: Vec<FrameKind> = frames.iter().map(|f| f.kind).collect();
    assert_eq!(
        kinds,
        [
            FrameKind::Row,
            FrameKind::Metrics,
            FrameKind::Profile,
            FrameKind::Ok
        ],
        "{frames:?}"
    );
    assert_eq!(frames[0].payload, "10");
    let metrics = &frames[1].payload;
    assert!(metrics.contains("\"channels\""), "{metrics}");
    assert!(metrics.contains("\"bytes\""), "{metrics}");
    let profile = &frames[2].payload;
    assert!(profile.contains("stage"), "{profile}");
    assert!(frames[3].payload.starts_with("-- 1 value in "));

    // Observability off again: plain frames, identical result bytes.
    c.statement(".metrics off").unwrap();
    c.statement(".profile off").unwrap();
    let plain = c.statement(PREPARED).unwrap();
    assert_eq!(plain.len(), 2);
    assert_eq!(plain[0].payload, frames[0].payload);
    assert_eq!(
        plain[1].payload, frames[3].payload,
        "profiling never changes results"
    );
    c.bye().unwrap();
    daemon.stop();
}

#[test]
fn runtime_option_metas_apply_per_session() {
    let daemon = Daemon::start();
    let mut fast = daemon.connect();
    let mut slow = daemon.connect();
    // Same prepared plan, different runtime buffering per session.
    slow.statement(".buffer 100000").unwrap();
    slow.statement(".double off").unwrap();
    fast.statement(".buffer 100000").unwrap();
    fast.statement(".double on").unwrap();
    let q = "select extract(b) from sp a, sp b \
             where b=sp(streamof(count(extract(a))), 'bg', 0) \
             and a=sp(gen_array(1000000,5),'bg',1);";
    let f = fast.statement(q).unwrap();
    let s = slow.statement(q).unwrap();
    assert_eq!(f[0].payload, s[0].payload, "same values either way");
    assert_ne!(
        f.last().unwrap().payload,
        s.last().unwrap().payload,
        "double buffering changes the reported query time"
    );
    let stats = daemon.server_stats();
    assert_eq!(
        json_field(&stats, "compilations"),
        1,
        "runtime knobs don't fork the plan cache: {stats}"
    );
    fast.bye().unwrap();
    slow.bye().unwrap();
    daemon.stop();
}

#[test]
fn unix_socket_end_to_end() {
    #[cfg(unix)]
    {
        let sock = std::env::temp_dir().join(format!("scsqd-e2e-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let mut child = Command::new(env!("CARGO_BIN_EXE_scsqd"))
            .args(["--unix", sock.to_str().unwrap()])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn scsqd --unix");
        let mut line = String::new();
        BufReader::new(child.stdout.as_mut().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.starts_with("LISTEN "), "{line}");

        let mut c = Client::connect_unix(&sock).expect("connect unix");
        assert!(c.banner().starts_with("scsqd "));
        let frames = c.statement("merge({});").unwrap();
        assert!(frames
            .last()
            .unwrap()
            .payload
            .starts_with("-- 0 values in "));
        c.statement(".shutdown").unwrap();
        let status = child.wait().unwrap();
        assert!(status.success());
        assert!(!sock.exists(), "socket file cleaned up");
    }
}

#[test]
fn write_then_read_frames_through_a_live_daemon() {
    // Drive the protocol by hand (no Client helper) to pin the framing:
    // HELLO first, statement replies terminated by OK, BYE closes.
    let daemon = Daemon::start();
    let stream = std::net::TcpStream::connect(&daemon.addr).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    let hello = scsq::wire::read_frame(&mut reader).unwrap().unwrap();
    assert_eq!(hello.kind, FrameKind::Hello);
    assert!(hello.payload.starts_with("scsqd "));

    let q = "select extract(b) from sp a, sp b \
             where b=sp(streamof(count(extract(a))), 'bg', 0) \
             and a=sp(gen_array(10000,4),'bg',1);";
    scsq::wire::write_frame(&mut writer, FrameKind::Stmt, q).unwrap();
    writer.flush().unwrap();
    let row = scsq::wire::read_frame(&mut reader).unwrap().unwrap();
    assert_eq!((row.kind, row.payload.as_str()), (FrameKind::Row, "4"));
    let ok = scsq::wire::read_frame(&mut reader).unwrap().unwrap();
    assert_eq!(ok.kind, FrameKind::Ok);

    scsq::wire::write_frame(&mut writer, FrameKind::Bye, "").unwrap();
    assert!(
        scsq::wire::read_frame(&mut reader).unwrap().is_none(),
        "server closes after BYE"
    );
    daemon.stop();
}
