//! End-to-end test of the `scsql` shell binary in script mode.

use std::io::Write;
use std::process::{Command, Stdio};

fn scsql() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scsql"))
}

#[test]
fn runs_a_script_file() {
    let dir = std::env::temp_dir();
    let path = dir.join("scsq_shell_test.scsql");
    std::fs::write(
        &path,
        "-- comment line\n\
         create function g(integer k) -> stream as gen_array(10000, k);\n\
         select extract(b) from sp a, sp b\n\
         where b=sp(streamof(count(extract(a))), 'bg', 0)\n\
         and a=sp(g(6),'bg',1);\n",
    )
    .expect("write script");
    let out = scsql().arg(&path).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("-- function defined"), "{stdout}");
    assert!(stdout.contains('6'), "{stdout}");
    assert!(stdout.contains("-- 1 value in"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pipes_statements_through_stdin() {
    let mut child = scsql()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            b".stats on\n\
              select extract(b) from sp a, sp b\n\
              where b=sp(count(take(extract(a), 2)), 'bg', 0)\n\
              and a=sp(gen_array(1000,5),'bg',1);\n\
              .quit\n",
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains('2'), "{stdout}");
    assert!(
        stdout.contains("rp@"),
        "stats must print rp monitors: {stdout}"
    );
}

#[test]
fn reports_errors_without_dying() {
    let mut child = scsql()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"select broken;\nmerge({});\n.quit\n")
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stderr.contains("error:"), "{stderr}");
    // The shell kept going: the second (valid, empty) query answered.
    assert!(stdout.contains("-- 0 values in"), "{stdout}");
}

#[test]
fn explain_meta_command_describes_the_setup() {
    let mut child = scsql()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(
            b".explain select extract(b) from sp a, sp b \
              where b=sp(count(extract(a)), 'bg', 0) \
              and a=sp(gen_array(1000,1),'bg',1);\n.quit\n",
        )
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 stream processes"), "{stdout}");
    assert!(stdout.contains("=mpi=>"), "{stdout}");
}
