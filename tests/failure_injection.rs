//! Failure injection: everything the paper says should fail, fails —
//! with a diagnosable error, never a panic or a wrong answer.

use scsq::prelude::*;

fn run(src: &str) -> Result<QueryResult, ScsqError> {
    Scsq::lofar().run(src)
}

// ---------- node selection failures -------------------------------------

/// §2.4: "In case the stream contains no available node, the query will
/// fail." Two RPs pinned to the same CNK compute node conflict.
#[test]
fn explicit_node_double_booking_fails() {
    let err = run("select extract(b) from sp a, sp b
         where a=sp(gen_array(1000,1),'bg',5)
         and b=sp(count(extract(a)),'bg',5);")
    .unwrap_err();
    assert!(
        err.to_string().contains("no available node"),
        "unexpected error: {err}"
    );
}

/// A pset holds 8 compute nodes; the 9th inPset placement must fail.
#[test]
fn pset_exhaustion_fails() {
    let err = run("select extract(b) from bag of sp a, sp b, integer n
         where b=sp(count(merge(a)), 'bg', 31)
         and a=spv((select gen_array(1000,1)
                    from integer i where i in iota(1,n)), 'bg', inPset(1))
         and n=9;")
    .unwrap_err();
    assert!(err.to_string().contains("no available node"), "{err}");
}

/// Nine generators fit in a pset only without a ninth sibling: exactly 8
/// succeed.
#[test]
fn pset_capacity_boundary_succeeds_at_8() {
    let r = run("select extract(b) from bag of sp a, sp b, integer n
         where b=sp(count(merge(a)), 'bg', 31)
         and a=spv((select gen_array(1000,1)
                    from integer i where i in iota(1,n)), 'bg', inPset(1))
         and n=8;")
    .unwrap();
    assert_eq!(r.values(), &[Value::Integer(8)]);
}

/// A 33rd BlueGene RP cannot be placed on a 32-node partition.
#[test]
fn partition_exhaustion_fails() {
    let err = run("select extract(b) from bag of sp a, sp b, integer n
         where b=sp(count(merge(a)), 'bg')
         and a=spv((select gen_array(1000,1)
                    from integer i where i in iota(1,n)), 'bg')
         and n=32;")
    .unwrap_err();
    assert!(err.to_string().contains("no available node"), "{err}");
}

/// I/O nodes "cannot be used for computations" — they are not in the
/// compute CNDB at all, so the BlueGene index space is 0..31 and node 32
/// does not exist.
#[test]
fn out_of_range_node_number_fails() {
    let err = run("select extract(a) from sp a
         where a=sp(gen_array(1000,1),'bg',32);")
    .unwrap_err();
    assert!(err.to_string().contains("no available node"), "{err}");
}

/// inPset is 1-based in SCSQL, like the paper's inPset(1).
#[test]
fn in_pset_zero_is_rejected() {
    let err = run("select extract(a) from sp a
         where a=sp(gen_array(1000,1),'bg',inPset(0));")
    .unwrap_err();
    assert!(err.to_string().contains("numbered from 1"), "{err}");
}

// ---------- language-level failures -------------------------------------

#[test]
fn unknown_cluster_fails() {
    let err = run("select extract(a) from sp a where a=sp(gen_array(1,1),'cloud');").unwrap_err();
    assert!(err.to_string().contains("unknown cluster name"), "{err}");
}

#[test]
fn unknown_function_fails() {
    let err = run("select extract(a) from sp a where a=sp(zap(1),'bg');").unwrap_err();
    assert!(err.to_string().contains("unknown function `zap`"), "{err}");
}

#[test]
fn wrong_arity_fails() {
    let err = run("select extract(a) from sp a where a=sp(gen_array(1),'bg');").unwrap_err();
    assert!(err.to_string().contains("expects 2..=2 arguments"), "{err}");
}

#[test]
fn syntax_error_has_position() {
    let err = run("select extract(a) frm sp a;").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("syntax error at 1:"), "{msg}");
}

#[test]
fn unresolvable_variables_fail() {
    let err = run("select extract(a) from sp a, sp b
         where a=sp(extract(b),'bg') and b=sp(extract(a),'bg');")
    .unwrap_err();
    assert!(err.to_string().contains("circular"), "{err}");
}

#[test]
fn undeclared_unbound_variable_fails() {
    let err = run("select extract(zz) from sp a where a=sp(gen_array(1,1),'bg');").unwrap_err();
    assert!(err.to_string().contains("unbound variable `zz`"), "{err}");
}

#[test]
fn declared_but_never_bound_variable_fails() {
    let err =
        run("select extract(a) from sp a, sp ghost where a=sp(gen_array(1,1),'bg');").unwrap_err();
    assert!(
        err.to_string()
            .contains("`ghost` is declared but never bound"),
        "{err}"
    );
}

#[test]
fn in_predicate_at_top_level_fails() {
    let err = run("select extract(a) from sp a, integer i
         where a=sp(gen_array(1,1),'bg') and i in iota(1,3);")
    .unwrap_err();
    assert!(err.to_string().contains("spv()"), "{err}");
}

// ---------- runtime failures --------------------------------------------

/// sum() over arrays is a runtime type error: the query aborts with a
/// diagnostic instead of returning a bogus number.
#[test]
fn summing_arrays_fails_at_runtime() {
    let err = run("select extract(b) from sp a, sp b
         where b=sp(streamof(sum(extract(a))), 'bg', 0)
         and a=sp(gen_array(1000,3),'bg',1);")
    .unwrap_err();
    assert!(err.to_string().contains("expected number"), "{err}");
}

/// fft() over integers is equally diagnosable.
#[test]
fn fft_of_integers_fails_at_runtime() {
    let err = run("select extract(b) from sp a, sp b
         where b=sp(fft(extract(a)), 'bg', 0)
         and a=sp(streamof(iota(1,4)),'bg',1);")
    .unwrap_err();
    assert!(err.to_string().contains("expected array"), "{err}");
}

/// radixcombine demands exactly two producers.
#[test]
fn radixcombine_with_three_producers_fails() {
    let err = run("select radixcombine(merge({a,b,c})) from sp a, sp b, sp c
         where a=sp(gen_array(1000,1),'bg')
         and b=sp(gen_array(1000,1),'bg')
         and c=sp(gen_array(1000,1),'bg');")
    .unwrap_err();
    assert!(err.to_string().contains("exactly two"), "{err}");
}

// ---------- catalog failures ---------------------------------------------

#[test]
fn redefining_a_builtin_fails() {
    let mut scsq = Scsq::lofar();
    let err = scsq
        .define("create function merge(object x) -> stream as extract(x);")
        .unwrap_err();
    assert!(err.to_string().contains("built-in"), "{err}");
}

#[test]
fn duplicate_function_definition_fails() {
    let mut scsq = Scsq::lofar();
    scsq.define("create function f(integer x) -> stream as gen_array(x, 1);")
        .unwrap();
    let err = scsq
        .define("create function f(integer x) -> stream as gen_array(x, 2);")
        .unwrap_err();
    assert!(err.to_string().contains("already defined"), "{err}");
}

/// After a failed query, the system stays usable (fresh environment per
/// query).
#[test]
fn failures_do_not_poison_the_system() {
    let mut scsq = Scsq::lofar();
    assert!(scsq.run("select broken;").is_err());
    assert!(scsq
        .run(
            "select extract(a) from sp a
             where a=sp(gen_array(1000,1),'bg',5);"
        )
        .is_ok());
}
