//! The parallel sweep executor's contract: running a figure sweep on N
//! worker threads produces series *bit-identical* to the sequential
//! path, and the sweep front-end compiles each distinct query text
//! exactly once no matter how many points and repetitions execute it.

use scsq_bench::{buffer_sweep, fig15, fig6, sweep, ExecMode, Scale, SweepPoint};
use scsq_core::prelude::*;

#[test]
fn fig6_parallel_series_equal_sequential() {
    let spec = HardwareSpec::lofar();
    let scale = Scale::quick();
    let buffers = buffer_sweep();
    let sequential = fig6::run_with_jobs(&spec, scale, &buffers, 1, ExecMode::default()).unwrap();
    let parallel = fig6::run_with_jobs(&spec, scale, &buffers, 4, ExecMode::default()).unwrap();
    assert_eq!(sequential, parallel);
}

#[test]
fn fig15_parallel_series_equal_sequential() {
    let spec = HardwareSpec::lofar();
    let scale = Scale::quick();
    let ns = [1, 2, 3, 4];
    let sequential = fig15::run_with_jobs(&spec, scale, &ns, 1, ExecMode::default()).unwrap();
    let parallel = fig15::run_with_jobs(&spec, scale, &ns, 4, ExecMode::default()).unwrap();
    assert_eq!(sequential, parallel);
}

#[test]
fn jittered_repetitions_stay_deterministic_across_jobs() {
    // Repetition seeds derive from the repetition index, not from worker
    // scheduling, so multi-rep jittered sweeps are parallel-safe too.
    let spec = HardwareSpec::lofar();
    let scale = Scale {
        reps: 3,
        jitter: 0.02,
        ..Scale::quick()
    };
    let buffers = [1_000u64, 100_000];
    let sequential = fig6::run_with_jobs(&spec, scale, &buffers, 1, ExecMode::default()).unwrap();
    let parallel = fig6::run_with_jobs(&spec, scale, &buffers, 4, ExecMode::default()).unwrap();
    assert_eq!(sequential, parallel);
    // With jitter and several reps, the spread is real (non-zero sd).
    assert!(sequential
        .iter()
        .any(|s| s.devs().iter().any(|sd| *sd > 0.0)));
}

#[test]
fn a_sweep_compiles_each_query_text_exactly_once() {
    // The §3.1 buffer sweep: 2 buffering modes x 4 buffer sizes x 2
    // repetitions = 16 runs of one query text -> exactly 1 compilation.
    let mut scsq = Scsq::lofar();
    let scale = Scale {
        reps: 2,
        jitter: 0.01,
        ..Scale::quick()
    };
    let plan = scsq.prepare(&fig6::query(scale)).unwrap();
    assert_eq!(scsq.compilations(), 1);

    let mut points = Vec::new();
    for double in [false, true] {
        for &buffer in &[100u64, 1_000, 100_000, 1_000_000] {
            points.push(SweepPoint {
                series: usize::from(double),
                x: buffer as f64,
                plan: plan.clone(),
                options: RunOptions {
                    mpi_buffer: buffer,
                    mpi_double: double,
                    ..RunOptions::default()
                },
                spec: scsq.spec().clone(),
            });
        }
    }
    let series = sweep(
        &["single", "double"],
        &points,
        scale,
        |r| r.bandwidth_into(NodeId::bg(0)),
        4,
    )
    .unwrap();
    assert_eq!(series.len(), 2);
    assert_eq!(series[0].points().len(), 4);
    assert_eq!(
        scsq.compilations(),
        1,
        "16 sweep runs must not recompile the query"
    );
}
