//! The paper's queries, verbatim (modulo whitespace), end to end.
//!
//! Every SCSQL text in §2.4 and §3 of the paper must parse, bind, place,
//! execute on the simulated LOFAR hardware, and produce the logically
//! correct answer. Intra-BlueGene runs use a 100 KB stream buffer so the
//! full 100 × 3 MB workload stays fast in debug builds (the buffer size
//! is an execution option, not part of the query text).

use scsq::prelude::*;

fn scsq_with_big_buffers() -> Scsq {
    let mut scsq = Scsq::lofar();
    scsq.options_mut().mpi_buffer = 100_000;
    scsq
}

/// §3.1, intra-BG point-to-point: "gen_array() generates the finite
/// stream of 100 arrays of size 3MB each."
#[test]
fn p2p_query_verbatim() {
    let mut scsq = scsq_with_big_buffers();
    let r = scsq
        .run(
            "select extract(b)
             from sp a, sp b
             where b=sp(streamof(count(extract(a)))
             , 'bg',0) and
             a=sp(gen_array(3000000,100),'bg',1);",
        )
        .unwrap();
    assert_eq!(r.values(), &[Value::Integer(100)]);
    // 300 MB of payload crossed the torus into node 0.
    assert!(r.bytes_into(NodeId::bg(0)) >= 300_000_000);
    assert!(r.total_time() > SimDur::from_millis(100));
}

/// §3.1, stream merging with explicit node selections (Fig 7).
#[test]
fn merge_query_verbatim_both_selections() {
    for (y, label) in [(2, "sequential"), (4, "balanced")] {
        let mut scsq = scsq_with_big_buffers();
        let r = scsq
            .run(&format!(
                "select extract(c)
                 from sp a, sp b, sp c
                 where c=sp(count(merge({{a,b}})), 'bg',0)
                 and a=sp(gen_array(3000000,100),'bg',1)
                 and b=sp(gen_array(3000000,100),'bg',{y});"
            ))
            .unwrap();
        assert_eq!(r.values(), &[Value::Integer(200)], "{label}");
        assert!(r.bytes_into(NodeId::bg(0)) >= 600_000_000, "{label}");
    }
}

/// §3.2 Query 1, verbatim: all generators on back-end node 1, one
/// receiving compute node, one I/O node.
#[test]
fn query_1_verbatim() {
    let mut scsq = Scsq::lofar();
    let r = scsq
        .run(
            "select extract(c) from
             bag of sp a, sp b, sp c,
             integer n
             where c=sp(extract(b), 'bg')
             and   b=sp(count(merge(a)), 'bg')
             and   a=spv(
                (select gen_array(3000000,100)
                from integer i where i in iota(1,n)),
                        'be', 1)
             and n=4;",
        )
        .unwrap();
    assert_eq!(r.values(), &[Value::Integer(400)]);
    assert_eq!(
        r.bytes_between(ClusterName::BackEnd, ClusterName::BlueGene),
        400 * 3_000_009
    );
}

/// §3.2 Query 2, verbatim: generators spread over back-end nodes with
/// urr('be').
#[test]
fn query_2_verbatim() {
    let mut scsq = Scsq::lofar();
    let r = scsq
        .run(
            "select extract(c) from
             bag of sp a, sp b, sp c,
             integer n
             where c=sp(extract(b), 'bg')
             and b=sp(count(merge(a)), 'bg')
             and a=spv(
                (select gen_array(3000000,100)
                from integer i where i in iota(1,n)),
                        'be', urr('be'))
             and n=4;",
        )
        .unwrap();
    assert_eq!(r.values(), &[Value::Integer(400)]);
}

/// §3.2 Queries 3-6, verbatim: parallel receivers, one vs many I/O
/// nodes, co-located vs spread senders.
#[test]
fn queries_3_through_6_verbatim() {
    let variants = [
        ("inPset(1)", "1", "Query 3"),
        ("inPset(1)", "urr('be')", "Query 4"),
        ("psetrr()", "1", "Query 5"),
        ("psetrr()", "urr('be')", "Query 6"),
    ];
    for (bg_alloc, be_alloc, label) in variants {
        let mut scsq = Scsq::lofar();
        let r = scsq
            .run(&format!(
                "select extract(c) from
                 bag of sp a, bag of sp b, sp c,
                 integer n
                 where c=sp(streamof(sum(merge(b))),
                            'bg')
                 and   b=spv(
                   (select streamof(count(extract(p)))
                    from sp p
                    where p in a),
                             'bg', {bg_alloc})
                 and a=spv(
                  (select gen_array(3000000,100)
                   from integer i where i in iota(1,n)),
                             'be', {be_alloc})
                 and n=4;",
            ))
            .unwrap();
        assert_eq!(r.values(), &[Value::Integer(400)], "{label}");
        // Four generators, four receivers, one summing node, one relay
        // ... Query 3-6 graphs: 4 + 4 + 1 SPs + client.
        assert_eq!(r.stats().rps, 10, "{label}");
    }
}

/// §2.4's mapreduce-grep, scaled to the corpus: the bare-expression
/// statement form.
#[test]
fn mapreduce_grep_statement() {
    let mut scsq = Scsq::lofar();
    let r = scsq
        .run(
            "merge(spv(
                select grep(\"antenna\", filename(i))
                from integer i
                where i in iota(1,20)));",
        )
        .unwrap();
    assert!(!r.values().is_empty());
    for v in r.values() {
        assert!(v.as_str().unwrap().contains("antenna"));
    }
}

/// §2.4's radix2 function definition followed by an invocation.
#[test]
fn radix2_function_verbatim() {
    let mut scsq = Scsq::lofar();
    scsq.define(
        "create function radix2(string s)
                      ->stream
         as select radixcombine(merge({a,b}))
         from sp a, sp b, sp c
         where a=sp(fft(odd (extract(c))))
         and b=sp(fft(even(extract(c))))
         and c=sp(receiver(s));",
    )
    .unwrap();
    let r = scsq.run("radix2('sensor');").unwrap();
    assert_eq!(r.values().len(), scsq.options().receiver_arrays as usize);
}

/// The paper alters the query variable n instead of editing query text;
/// verify the pre-binding path agrees with textual substitution.
#[test]
fn prebound_n_equals_textual_n() {
    let q = |n: u32| {
        format!(
            "select extract(b) from bag of sp a, sp b, integer n
             where b=sp(count(merge(a)), 'bg')
             and a=spv((select gen_array(1000000,10)
                        from integer i where i in iota(1,n)), 'be', 1)
             and n={n};"
        )
    };
    let mut scsq = Scsq::lofar();
    let textual = scsq.run(&q(6)).unwrap();
    let prebound = scsq.run_with(&q(2), &[("n", Value::Integer(6))]).unwrap();
    assert_eq!(textual.values(), prebound.values());
    assert_eq!(textual.finished(), prebound.finished());
}
