//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use scsq_sim::{EventQueue, FifoServer, RunningStats, SimDur, SimTime, SplitMix64};

proptest! {
    /// The event queue pops in nondecreasing time order regardless of
    /// push order.
    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// FIFO server invariants: grants never overlap, never start before
    /// arrival, and total busy time equals the sum of service demands.
    #[test]
    fn fifo_server_grants_are_disjoint_and_conserving(
        jobs in proptest::collection::vec((0u64..1_000_000, 1u64..10_000), 1..100)
    ) {
        let mut server = FifoServer::new();
        let mut prev_finish = SimTime::ZERO;
        let mut total = SimDur::ZERO;
        // FIFO discipline requires nondecreasing arrivals in call order;
        // sort to model a well-formed arrival stream.
        let mut jobs = jobs;
        jobs.sort_by_key(|&(arrival, _)| arrival);
        for &(arrival, service) in &jobs {
            let arrival = SimTime::from_nanos(arrival);
            let service = SimDur::from_nanos(service);
            let g = server.serve(arrival, service);
            prop_assert!(g.start >= arrival);
            prop_assert!(g.start >= prev_finish);
            prop_assert_eq!(g.finish, g.start + service);
            prev_finish = g.finish;
            total += service;
        }
        prop_assert_eq!(server.busy_total(), total);
        prop_assert_eq!(server.busy_until(), prev_finish);
    }

    /// Work conservation: a server's makespan is at most (last arrival +
    /// total work) and at least the total work.
    #[test]
    fn fifo_server_makespan_bounds(
        jobs in proptest::collection::vec((0u64..100_000, 1u64..1_000), 1..50)
    ) {
        let mut jobs = jobs;
        jobs.sort_by_key(|&(a, _)| a);
        let mut server = FifoServer::new();
        let mut finish = SimTime::ZERO;
        for &(arrival, service) in &jobs {
            finish = server
                .serve(SimTime::from_nanos(arrival), SimDur::from_nanos(service))
                .finish;
        }
        let work: u64 = jobs.iter().map(|&(_, s)| s).sum();
        let last_arrival = jobs.last().expect("non-empty").0;
        prop_assert!(finish.as_nanos() >= work);
        prop_assert!(finish.as_nanos() <= last_arrival + work);
    }

    /// Welford statistics match the two-pass formulas.
    #[test]
    fn running_stats_match_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.sample_variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(s.min().expect("non-empty"),
            xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().expect("non-empty"),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// SplitMix64 is a bijection-ish mixer: different seeds give
    /// different first outputs (collision-free over small samples) and
    /// jitter stays in band.
    #[test]
    fn rng_jitter_band(seed in any::<u64>(), amp in 0.0f64..0.5) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            let j = rng.jitter(amp);
            prop_assert!(j >= 1.0 - amp - 1e-12 && j <= 1.0 + amp + 1e-12);
        }
    }

    /// Duration arithmetic: for_bytes is monotone in bytes and inversely
    /// monotone in rate.
    #[test]
    fn for_bytes_monotonicity(bytes in 1u64..1_000_000_000, rate in 1.0f64..1e10) {
        let d1 = SimDur::for_bytes(bytes, rate);
        let d2 = SimDur::for_bytes(bytes + 1, rate);
        let d3 = SimDur::for_bytes(bytes, rate * 2.0);
        prop_assert!(d2 >= d1);
        prop_assert!(d3 <= d1);
    }
}
