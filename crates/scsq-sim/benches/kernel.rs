//! Microbenchmarks for the simulation kernel: event throughput and
//! server bookkeeping. Full-scale figure regenerations push tens of
//! millions of events through this code, so its constants matter.

use criterion::{criterion_group, criterion_main, Criterion};
use scsq_sim::{FifoServer, SimDur, SimTime, Simulator, SwitchingServer};
use std::hint::black_box;

fn bench_event_dispatch(c: &mut Criterion) {
    c.bench_function("kernel/dispatch_10k_events", |b| {
        b.iter(|| {
            fn chain(count: &mut u64, sim: &mut Simulator<u64>) {
                if *count < 10_000 {
                    *count += 1;
                    sim.schedule_after(SimDur::from_nanos(10), chain);
                }
            }
            let mut sim = Simulator::new(0u64);
            sim.schedule_after(SimDur::from_nanos(10), chain);
            sim.run_to_completion();
            black_box(sim.events_executed())
        });
    });

    c.bench_function("kernel/queue_mixed_order_10k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0u64);
            for i in 0..10_000u64 {
                // Pseudo-shuffled times exercise heap rebalancing.
                let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
                sim.schedule_at(SimTime::from_nanos(t), |w, _| *w += 1);
            }
            sim.run_to_completion();
            black_box(*sim.world())
        });
    });
}

fn bench_servers(c: &mut Criterion) {
    c.bench_function("kernel/fifo_serve_10k", |b| {
        b.iter(|| {
            let mut s = FifoServer::new();
            let mut t = SimTime::ZERO;
            for _ in 0..10_000 {
                t = s.serve(t, SimDur::from_nanos(100)).finish;
            }
            black_box(t)
        });
    });

    c.bench_function("kernel/switching_serve_2flows_10k", |b| {
        b.iter(|| {
            let mut s = SwitchingServer::new(SimDur::from_micros(25));
            let mut t = SimTime::ZERO;
            for i in 0..10_000u64 {
                t = s.serve_from(i % 2, t, SimDur::from_nanos(100)).finish;
            }
            black_box(t)
        });
    });
}

criterion_group!(benches, bench_event_dispatch, bench_servers);
criterion_main!(benches);
