#![warn(missing_docs)]
//! # scsq-sim — deterministic discrete-event simulation kernel
//!
//! This crate provides the discrete-event simulation (DES) substrate on
//! which the SCSQ reproduction models the LOFAR hardware environment
//! (BlueGene torus + Linux clusters). It is intentionally generic: the
//! kernel knows nothing about networks or stream queries, only about a
//! virtual clock, an ordered event queue, and a few queueing primitives
//! (FIFO servers) that higher layers compose into links, NICs, and
//! communication co-processors.
//!
//! The simulator is **single-threaded and deterministic**: two runs with
//! the same inputs produce bit-identical schedules, which lets the test
//! suite assert exact bandwidth numbers.
//!
//! ## Example
//!
//! ```
//! use scsq_sim::{Simulator, SimDur};
//!
//! // The "world" can be any state the events mutate.
//! let mut sim = Simulator::new(0u64);
//! sim.schedule_after(SimDur::from_micros(5), |world, sim| {
//!     *world += 1;
//!     sim.schedule_after(SimDur::from_micros(5), move |world, _| {
//!         *world += 10;
//!     });
//! });
//! sim.run_to_completion();
//! assert_eq!(*sim.world(), 11);
//! ```

pub mod coalesce;
pub mod hist;
pub mod obs;
pub mod queue;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;
pub mod typed;

pub use coalesce::{CoalesceStats, Coalescer, JumpPlan, Snapshot, StateProbe};
pub use hist::{LatencyHistogram, LATENCY_BUCKETS};
pub use obs::{Span, SpanDrain};
pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use server::{FifoServer, SwitchingServer};
pub use stats::{RunningStats, Series};
pub use time::{SimDur, SimTime};
pub use typed::{Event, TypedSimulator};

use std::fmt;

/// A scheduled event: a one-shot closure over the world and the simulator.
type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Simulator<W>)>;

/// The discrete-event simulator.
///
/// `Simulator` owns the world state `W`, the virtual clock, and the event
/// queue. Events are closures `FnOnce(&mut W, &mut Simulator<W>)`; they may
/// schedule further events. Time never moves backwards; scheduling an
/// event in the past is a logic error and panics.
///
/// During event dispatch the world is moved out of the simulator so the
/// closure can receive disjoint `&mut` borrows of both; accessing
/// [`Simulator::world`] *from inside an event* therefore panics — events
/// should use the `&mut W` argument they are given.
pub struct Simulator<W> {
    now: SimTime,
    queue: EventQueue<EventFn<W>>,
    world: Option<W>,
    executed: u64,
    limit: Option<u64>,
    limit_exceeded: bool,
}

impl<W: fmt::Debug> fmt::Debug for Simulator<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .field("world", &self.world)
            .finish()
    }
}

impl<W> Simulator<W> {
    /// Creates a simulator at time zero owning `world`.
    pub fn new(world: W) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            world: Some(world),
            executed: 0,
            limit: None,
            limit_exceeded: false,
        }
    }

    /// Sets a safety limit on the number of executed events.
    ///
    /// When the limit is reached, [`Simulator::step`] stops dispatching
    /// (pending events stay queued) and [`Simulator::limit_exceeded`]
    /// reports it — this catches accidental event storms without
    /// panicking through arbitrary model code.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Whether the event budget was exhausted before the queue drained.
    pub fn limit_exceeded(&self) -> bool {
        self.limit_exceeded
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world.
    ///
    /// # Panics
    ///
    /// Panics when called from inside an event closure (use the closure's
    /// `&mut W` argument instead).
    pub fn world(&self) -> &W {
        self.world
            .as_ref()
            .expect("world is moved out during event dispatch; use the event's &mut W argument")
    }

    /// Exclusive access to the world.
    ///
    /// # Panics
    ///
    /// Panics when called from inside an event closure (use the closure's
    /// `&mut W` argument instead).
    pub fn world_mut(&mut self) -> &mut W {
        self.world
            .as_mut()
            .expect("world is moved out during event dispatch; use the event's &mut W argument")
    }

    /// Consumes the simulator, returning the world.
    pub fn into_world(self) -> W {
        self.world
            .expect("world is moved out during event dispatch")
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
    ) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={:?} at={:?}",
            self.now,
            at
        );
        self.queue.push(at, Box::new(event));
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule_after(
        &mut self,
        after: SimDur,
        event: impl FnOnce(&mut W, &mut Simulator<W>) + 'static,
    ) {
        self.schedule_at(self.now + after, event);
    }

    /// Runs a single event if one is pending. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        if self.limit_exceeded {
            return false;
        }
        if let Some(limit) = self.limit {
            if self.executed >= limit {
                self.limit_exceeded = true;
                return false;
            }
        }
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue returned an event in the past");
        self.now = at;
        self.executed += 1;
        let mut world = self
            .world
            .take()
            .expect("step re-entered during event dispatch");
        event(&mut world, self);
        self.world = Some(world);
        true
    }

    /// Runs events until the queue is empty and returns the final time.
    pub fn run_to_completion(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Runs events until the queue is empty or the clock passes
    /// `deadline`; events scheduled after the deadline remain queued.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            self.step();
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new(Vec::new());
        sim.schedule_after(SimDur::from_nanos(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_after(SimDur::from_nanos(10), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_after(SimDur::from_nanos(20), |w: &mut Vec<u32>, _| w.push(2));
        sim.run_to_completion();
        assert_eq!(sim.world(), &[1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut sim = Simulator::new(Vec::new());
        for i in 0..10u32 {
            sim.schedule_after(SimDur::from_nanos(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run_to_completion();
        assert_eq!(sim.world(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut sim = Simulator::new(0u64);
        sim.schedule_after(SimDur::from_micros(1), |_, sim| {
            assert_eq!(sim.now(), SimTime::from_nanos(1_000));
            sim.schedule_after(SimDur::from_micros(2), |w, sim| {
                *w = sim.now().as_nanos();
            });
        });
        let end = sim.run_to_completion();
        assert_eq!(end, SimTime::from_nanos(3_000));
        assert_eq!(*sim.world(), 3_000);
    }

    #[test]
    fn run_until_leaves_future_events_pending() {
        let mut sim = Simulator::new(0u32);
        sim.schedule_after(SimDur::from_nanos(10), |w: &mut u32, _| *w += 1);
        sim.schedule_after(SimDur::from_nanos(100), |w: &mut u32, _| *w += 1);
        sim.run_until(SimTime::from_nanos(50));
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.events_pending(), 1);
        sim.run_to_completion();
        assert_eq!(*sim.world(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulator::new(());
        sim.schedule_after(SimDur::from_nanos(10), |_, sim| {
            sim.schedule_at(SimTime::from_nanos(5), |_, _| {});
        });
        sim.run_to_completion();
    }

    #[test]
    fn event_limit_catches_storms() {
        fn rearm(_: &mut (), sim: &mut Simulator<()>) {
            sim.schedule_after(SimDur::from_nanos(1), rearm);
        }
        let mut sim = Simulator::new(()).with_event_limit(100);
        sim.schedule_after(SimDur::from_nanos(1), rearm);
        sim.run_to_completion();
        assert!(sim.limit_exceeded());
        assert_eq!(sim.events_executed(), 100);
        assert_eq!(sim.events_pending(), 1, "the re-armed event stays queued");
    }
}
