//! The event queue: a time-ordered priority queue with FIFO tie-breaking.
//!
//! Events scheduled for the same instant fire in insertion order, which
//! keeps the simulator deterministic even when model code schedules many
//! simultaneous events.
//!
//! The queue keeps the earliest entry in a dedicated front slot rather
//! than in the heap, and refills it lazily: a pop hands out the front
//! without touching the heap, and the next push claims the empty front
//! when it beats the heap's top. Discrete-event workloads
//! overwhelmingly pop one event and push its successor (a generator's
//! production chain, a channel's buffer cycles); as long as that
//! successor stays ahead of everything else pending, the pop-then-push
//! cycle is a slot swap and a single comparison — no heap sift at all,
//! regardless of how many unrelated events are parked in the heap.
//!
//! Payloads live in a slab indexed by heap entries, not in the heap
//! itself. Heap sift operations then move only 20-byte (time, seq,
//! slot) records regardless of payload size, and a pop-then-push cycle
//! reuses the freed slot, so a steady-state simulation allocates
//! nothing per event: the slab grows once to the peak concurrent event
//! population and every later push lands in a recycled slot.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered queue of payloads of type `T`.
///
/// ```
/// use scsq_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "later");
/// q.push(SimTime::from_nanos(10), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "sooner")));
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    /// Fast-path slot for the earliest entry. Invariant: when `front`
    /// is `Some`, it sorts before every heap entry; when `None`, the
    /// heap's top (if any) is the minimum. The slot is refilled lazily
    /// by pushes, never by pops, so a steady pop-then-push chain leaves
    /// the heap untouched.
    front: Option<Entry>,
    heap: BinaryHeap<Entry>,
    seq: u64,
    /// Payload storage. Invariant: `slab[e.slot]` is `Some` for every
    /// queued entry `e`, and every `None` slot index is on `free`.
    slab: Vec<Option<T>>,
    free: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    /// Whether this entry surfaces strictly before `other`.
    fn before(&self, other: &Self) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            front: None,
            heap: BinaryHeap::new(),
            seq: 0,
            slab: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Creates an empty queue with capacity for `capacity` concurrent
    /// entries, avoiding reallocation while the event population grows.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            front: None,
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.heap.len() + usize::from(self.front.is_some())
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.front.is_none() && self.heap.is_empty()
    }

    /// Stores `payload` in a free slab slot and returns its index.
    fn alloc(&mut self, payload: T) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("event slab exceeds u32 slots");
                self.slab.push(Some(payload));
                slot
            }
        }
    }

    /// Enqueues `payload` to surface at time `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc(payload);
        let entry = Entry { at, seq, slot };
        match &self.front {
            Some(min) if entry.before(min) => {
                let displaced = self.front.replace(entry).expect("front checked Some");
                self.heap.push(displaced);
            }
            Some(_) => self.heap.push(entry),
            None => match self.heap.peek() {
                Some(top) if !entry.before(top) => self.heap.push(entry),
                _ => self.front = Some(entry),
            },
        }
    }

    /// Removes and returns the earliest entry, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let min = match self.front.take() {
            Some(e) => e,
            None => self.heap.pop()?,
        };
        let payload = self.slab[min.slot as usize]
            .take()
            .expect("queued entry has a payload");
        self.free.push(min.slot);
        Some((min.at, payload))
    }

    /// The earliest queued entry: the front slot when occupied, the heap
    /// top otherwise.
    fn min_entry(&self) -> Option<&Entry> {
        self.front.as_ref().or_else(|| self.heap.peek())
    }

    /// The time of the earliest entry without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min_entry().map(|e| e.at)
    }

    /// The payload of the earliest entry without removing it.
    pub fn peek_payload(&self) -> Option<&T> {
        self.min_entry()
            .map(|e| self.slab[e.slot as usize].as_ref().expect("queued payload"))
    }

    /// Walks every queued entry in surfacing order through a
    /// [`crate::coalesce::StateProbe`]: each entry's time is probed as
    /// an extrapolatable number, the margin to the previous entry (and
    /// to `now` for the first) as a stay-positive guard, and the payload
    /// through `probe_payload`. The queue is rebuilt afterwards with
    /// surfacing order preserved exactly, so a digest-mode walk is
    /// observationally a no-op.
    pub fn probe_entries(
        &mut self,
        p: &mut crate::coalesce::StateProbe<'_>,
        now: SimTime,
        mut probe_payload: impl FnMut(&mut T, &mut crate::coalesce::StateProbe<'_>),
    ) {
        let mut entries: Vec<Entry> = Vec::with_capacity(self.len());
        entries.extend(self.front.take());
        entries.extend(std::mem::take(&mut self.heap).into_vec());
        entries.sort_by_key(|e| (e.at, e.seq));
        p.shape(entries.len() as u64);
        let mut prev_at = now;
        for e in &mut entries {
            // An advancing `now` must never overtake this entry, and
            // entries must not swap order: guard both margins (only the
            // implicit negative-delta rule applies).
            p.guard(e.at.as_nanos().saturating_sub(prev_at.as_nanos()), u64::MAX);
            prev_at = e.at;
            p.time(&mut e.at);
            let payload = self.slab[e.slot as usize]
                .as_mut()
                .expect("queued entry has a payload");
            probe_payload(payload, p);
        }
        // Re-number in surfacing order: relative order of existing
        // entries is preserved and future pushes sort after them.
        for (i, e) in entries.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        self.seq = entries.len() as u64;
        debug_assert!(entries
            .windows(2)
            .all(|w| (w[0].at, w[0].seq) <= (w[1].at, w[1].seq)));
        let mut it = entries.into_iter();
        self.front = it.next();
        self.heap = it.collect();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), 'c');
        q.push(SimTime::from_nanos(1), 'a');
        q.push(SimTime::from_nanos(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(9), ());
        q.push(SimTime::from_nanos(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_then_push_chain_stays_ordered() {
        // The front-slot fast path: alternating pop / push-at-later-time
        // with at most one pending entry.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), 0u64);
        for i in 1..1000u64 {
            let (at, v) = q.pop().expect("chained entry");
            assert_eq!(v, i - 1);
            q.push(at + crate::SimDur::from_nanos(1), i);
        }
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn earlier_push_displaces_the_front() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(50), 'b');
        q.push(SimTime::from_nanos(10), 'a');
        q.push(SimTime::from_nanos(90), 'c');
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ['a', 'b', 'c']);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        q.push(SimTime::from_nanos(2), 2);
        q.push(SimTime::from_nanos(1), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(2), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slab_slots_are_recycled() {
        // A steady pop-then-push cycle must reuse the freed slot rather
        // than growing payload storage without bound.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), String::from("a"));
        q.push(SimTime::from_nanos(2), String::from("b"));
        for i in 3..100u64 {
            let (at, v) = q.pop().expect("entry");
            assert!(!v.is_empty());
            q.push(at + crate::SimDur::from_nanos(i), format!("v{i}"));
        }
        assert_eq!(q.slab.len(), 2);
        assert_eq!(q.len(), 2);
    }
}
