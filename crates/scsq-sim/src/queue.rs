//! The event queue: a time-ordered priority queue with FIFO tie-breaking.
//!
//! Events scheduled for the same instant fire in insertion order, which
//! keeps the simulator deterministic even when model code schedules many
//! simultaneous events.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered queue of payloads of type `T`.
///
/// ```
/// use scsq_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "later");
/// q.push(SimTime::from_nanos(10), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "sooner")));
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Enqueues `payload` to surface at time `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest entry, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The time of the earliest entry without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), 'c');
        q.push(SimTime::from_nanos(1), 'a');
        q.push(SimTime::from_nanos(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(9), ());
        q.push(SimTime::from_nanos(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
