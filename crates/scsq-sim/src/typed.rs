//! A monomorphized simulator for hot simulation loops.
//!
//! [`crate::Simulator`] stores events as boxed `FnOnce` closures — one
//! heap allocation and one indirect call per event. That is flexible
//! (any closure is an event) but costs real time when a model executes
//! hundreds of millions of events. [`TypedSimulator`] instead stores a
//! caller-defined event *enum* inline in the queue: zero per-event
//! boxes, branch-predictable dispatch, and the same deterministic
//! (time, insertion-order) semantics as the boxed simulator.
//!
//! ## Example
//!
//! ```
//! use scsq_sim::typed::{Event, TypedSimulator};
//! use scsq_sim::SimDur;
//!
//! enum Tick {
//!     Add(u64),
//! }
//!
//! impl Event<u64> for Tick {
//!     fn fire(self, world: &mut u64, sim: &mut TypedSimulator<u64, Tick>) {
//!         match self {
//!             Tick::Add(n) => {
//!                 *world += n;
//!                 if n < 3 {
//!                     sim.schedule_after(SimDur::from_nanos(1), Tick::Add(n + 1));
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = TypedSimulator::new(0u64);
//! sim.schedule_after(SimDur::from_nanos(1), Tick::Add(1));
//! sim.run_to_completion();
//! assert_eq!(*sim.world(), 6);
//! ```

use crate::coalesce::StateProbe;
use crate::queue::EventQueue;
use crate::time::{SimDur, SimTime};

/// A dispatchable event for [`TypedSimulator`].
pub trait Event<W>: Sized {
    /// Consumes the event, mutating the world and scheduling follow-ups.
    fn fire(self, world: &mut W, sim: &mut TypedSimulator<W, Self>);
}

/// A discrete-event simulator whose events are a concrete type rather
/// than boxed closures. Semantics mirror [`crate::Simulator`]: events
/// fire in (time, insertion-order); the world is moved out during
/// dispatch; an optional event budget stops dispatch without draining
/// the queue.
pub struct TypedSimulator<W, E> {
    now: SimTime,
    queue: EventQueue<E>,
    /// Boxed so the per-event take/put around dispatch moves one
    /// pointer, not the (potentially kilobyte-sized) world itself.
    world: Option<Box<W>>,
    executed: u64,
    limit: Option<u64>,
    limit_exceeded: bool,
    /// High-water mark of the pending-event population. A monotone max
    /// over the queue length, which the coalescing probe walks as shape
    /// (and which a period jump leaves unchanged), so this needs no
    /// probe entry of its own.
    pending_hwm: usize,
}

impl<W, E> TypedSimulator<W, E> {
    /// Creates a simulator at time zero owning `world`.
    pub fn new(world: W) -> Self {
        TypedSimulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            world: Some(Box::new(world)),
            executed: 0,
            limit: None,
            limit_exceeded: false,
            pending_hwm: 0,
        }
    }

    /// Like [`TypedSimulator::new`], pre-reserving queue capacity for
    /// `capacity` concurrently pending events.
    pub fn with_capacity(world: W, capacity: usize) -> Self {
        TypedSimulator {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(capacity),
            world: Some(Box::new(world)),
            executed: 0,
            limit: None,
            limit_exceeded: false,
            pending_hwm: 0,
        }
    }

    /// Sets a safety limit on the number of executed events; when it is
    /// reached, dispatch stops with pending events still queued and
    /// [`TypedSimulator::limit_exceeded`] reports it.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Whether the event budget was exhausted before the queue drained.
    pub fn limit_exceeded(&self) -> bool {
        self.limit_exceeded
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world.
    ///
    /// # Panics
    ///
    /// Panics when called from inside an event (use the `&mut W`
    /// argument `fire` receives instead).
    pub fn world(&self) -> &W {
        self.world
            .as_deref()
            .expect("world is moved out during event dispatch; use fire's &mut W argument")
    }

    /// Consumes the simulator, returning the world.
    ///
    /// # Panics
    ///
    /// Panics when called from inside an event.
    pub fn into_world(self) -> W {
        *self
            .world
            .expect("world is moved out during event dispatch")
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// The largest pending-event population observed so far — the peak
    /// concurrent event load the queue had to absorb. Coalescing jumps
    /// do not perturb it: the queue length is probed as shape, so it is
    /// constant across a jumped period.
    pub fn events_pending_high_water(&self) -> usize {
        self.pending_hwm
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={:?} at={:?}",
            self.now,
            at
        );
        self.queue.push(at, event);
        let pending = self.queue.len();
        if pending > self.pending_hwm {
            self.pending_hwm = pending;
        }
    }

    /// Schedules `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDur, event: E) {
        self.schedule_at(self.now + after, event);
    }

    /// Maps the next event to fire through `f` without removing it
    /// (e.g. to derive a coalescing cut key). `None` when the queue is
    /// empty.
    pub fn peek_key(&self, f: impl FnOnce(&E) -> u64) -> Option<u64> {
        self.queue.peek_payload().map(f)
    }

    /// Walks the simulator's entire state — clock, executed-event
    /// counter, queued events, and the world — through a coalescing
    /// [`StateProbe`]. With a digest-mode probe this is observationally
    /// a no-op that fingerprints the state; with an advance-mode probe
    /// it fast-forwards the state by whole periods.
    ///
    /// `probe_event` and `probe_world` must walk their arguments
    /// identically in both modes; the walk order defines coordinate
    /// identity. Both receive the pre-advance clock as `now`.
    ///
    /// # Panics
    ///
    /// Panics when called from inside an event.
    pub fn probe_state(
        &mut self,
        p: &mut StateProbe<'_>,
        probe_event: impl FnMut(&mut E, &mut StateProbe<'_>),
        probe_world: impl FnOnce(&mut W, &mut StateProbe<'_>, SimTime),
    ) {
        let now = self.now;
        p.time(&mut self.now);
        match self.limit {
            // Never extrapolate past the event budget: the budget
            // exhausts mid-period in real execution.
            Some(limit) => p.bounded(&mut self.executed, limit),
            None => p.num(&mut self.executed),
        }
        self.queue.probe_entries(p, now, probe_event);
        let world = self
            .world
            .as_mut()
            .expect("probe_state called during event dispatch");
        probe_world(world, p, now);
    }
}

impl<W, E: Event<W>> TypedSimulator<W, E> {
    /// Runs a single event if one is pending. Returns `false` when the
    /// queue is empty or the event budget is exhausted.
    pub fn step(&mut self) -> bool {
        if self.limit_exceeded {
            return false;
        }
        if let Some(limit) = self.limit {
            if self.executed >= limit {
                self.limit_exceeded = true;
                return false;
            }
        }
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue returned an event in the past");
        self.now = at;
        self.executed += 1;
        let mut world = self
            .world
            .take()
            .expect("step re-entered during event dispatch");
        event.fire(&mut world, self);
        self.world = Some(world);
        true
    }

    /// Runs events until the queue is empty (or the budget is exhausted)
    /// and returns the final time.
    pub fn run_to_completion(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    enum Ev {
        Push(u32),
        Chain { left: u32 },
    }

    impl Event<Vec<u32>> for Ev {
        fn fire(self, world: &mut Vec<u32>, sim: &mut TypedSimulator<Vec<u32>, Ev>) {
            match self {
                Ev::Push(v) => world.push(v),
                Ev::Chain { left } => {
                    world.push(left);
                    if left > 0 {
                        sim.schedule_after(SimDur::from_nanos(2), Ev::Chain { left: left - 1 });
                    }
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = TypedSimulator::new(Vec::new());
        sim.schedule_at(SimTime::from_nanos(30), Ev::Push(3));
        sim.schedule_at(SimTime::from_nanos(10), Ev::Push(1));
        sim.schedule_at(SimTime::from_nanos(20), Ev::Push(2));
        sim.run_to_completion();
        assert_eq!(sim.world(), &[1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut sim = TypedSimulator::new(Vec::new());
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(5), Ev::Push(i));
        }
        sim.run_to_completion();
        assert_eq!(sim.world(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_the_clock() {
        let mut sim = TypedSimulator::with_capacity(Vec::new(), 16);
        sim.schedule_at(SimTime::from_nanos(1), Ev::Chain { left: 4 });
        let end = sim.run_to_completion();
        assert_eq!(end, SimTime::from_nanos(9));
        assert_eq!(sim.world(), &[4, 3, 2, 1, 0]);
        assert_eq!(sim.events_executed(), 5);
    }

    #[test]
    fn event_limit_stops_dispatch() {
        let mut sim = TypedSimulator::new(Vec::new()).with_event_limit(3);
        sim.schedule_at(SimTime::from_nanos(1), Ev::Chain { left: 10 });
        sim.run_to_completion();
        assert!(sim.limit_exceeded());
        assert_eq!(sim.events_executed(), 3);
        assert_eq!(sim.events_pending(), 1, "the chained event stays queued");
    }

    #[test]
    fn pending_high_water_tracks_the_peak_population() {
        let mut sim = TypedSimulator::new(Vec::new());
        assert_eq!(sim.events_pending_high_water(), 0);
        for i in 0..5 {
            sim.schedule_at(SimTime::from_nanos(10 + i), Ev::Push(i as u32));
        }
        assert_eq!(sim.events_pending_high_water(), 5);
        sim.run_to_completion();
        // Draining the queue never lowers the mark.
        assert_eq!(sim.events_pending(), 0);
        assert_eq!(sim.events_pending_high_water(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: TypedSimulator<Vec<u32>, Ev> = TypedSimulator::new(Vec::new());
        sim.schedule_at(SimTime::from_nanos(5), Ev::Push(0));
        sim.step();
        // now == 5; the past is off-limits.
        sim.schedule_at(SimTime::from_nanos(1), Ev::Push(1));
    }
}
