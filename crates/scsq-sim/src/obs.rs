//! Observability gate and flight-recorder span ring.
//!
//! This module holds the two cross-layer observability primitives that
//! must live below the engine in the dependency graph:
//!
//! - a global [`enabled`]/[`set_enabled`] gate (one relaxed atomic
//!   load when off — the same cost discipline as the metrics hub,
//!   which forwards its own gate here), and
//! - a bounded, thread-local **flight recorder**: a fixed-capacity
//!   ring of recent [`Span`]s on the *simulated* timeline, drained
//!   with [`take_spans`] and exported with [`chrome_trace_json`] in
//!   Chrome trace-event format (`chrome://tracing`, Perfetto).
//!
//! The ring is thread-local so recording never takes a lock: parallel
//! sweep workers each record their own spans and the per-event hot
//! path stays allocation- and contention-free. A driver that wants a
//! trace runs the traced pass on one thread and drains the ring there.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

/// Global observability gate. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Spans retained per thread before the oldest are overwritten.
pub const SPAN_RING_CAPACITY: usize = 65_536;

/// Whether span recording is enabled (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// One interval on the simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Short static label ("sp", "transmit", "coalesce-jump", ...).
    pub name: &'static str,
    /// Category for trace-viewer filtering ("rp", "channel", ...).
    pub cat: &'static str,
    /// Virtual thread lane the span renders on (e.g. one per channel).
    pub tid: u64,
    /// Start, in simulated nanoseconds.
    pub ts_ns: u64,
    /// Duration, in simulated nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    spans: Vec<Span>,
    /// Next write position once the ring is full.
    head: usize,
    dropped: u64,
}

thread_local! {
    static RING: RefCell<Ring> = const {
        RefCell::new(Ring {
            spans: Vec::new(),
            head: 0,
            dropped: 0,
        })
    };
}

/// Records a span into this thread's flight-recorder ring.
///
/// A no-op unless [`enabled`]; when the ring is full the oldest span
/// is overwritten and counted as dropped.
#[inline]
pub fn record_span(span: Span) {
    if !enabled() {
        return;
    }
    RING.with(|r| {
        let mut r = r.borrow_mut();
        if r.spans.len() < SPAN_RING_CAPACITY {
            r.spans.push(span);
        } else {
            let head = r.head;
            r.spans[head] = span;
            r.head = (head + 1) % SPAN_RING_CAPACITY;
            r.dropped += 1;
        }
    });
}

/// The result of draining the flight recorder.
#[derive(Debug, Clone, Default)]
pub struct SpanDrain {
    /// Retained spans, oldest first.
    pub spans: Vec<Span>,
    /// Spans overwritten because the ring was full.
    pub dropped: u64,
}

/// Drains and returns this thread's recorded spans (oldest first),
/// resetting the ring.
pub fn take_spans() -> SpanDrain {
    RING.with(|r| {
        let mut r = r.borrow_mut();
        let head = r.head;
        let mut spans = std::mem::take(&mut r.spans);
        spans.rotate_left(head);
        let dropped = r.dropped;
        r.head = 0;
        r.dropped = 0;
        SpanDrain { spans, dropped }
    })
}

/// Renders spans as a Chrome trace-event JSON document.
///
/// Every span becomes a matched `B`/`E` pair on its `tid` lane, with
/// `ts` in microseconds of simulated time. The event list is globally
/// stable-sorted by `ts` (ties keep per-lane order: a span's end
/// before the next span's begin, a begin before its own end), and
/// spans that overlap a predecessor on the same lane are clamped
/// forward so each lane's begin/end events nest properly — trace
/// viewers require serialized activity per thread lane.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    // Sort spans per lane and clamp overlaps so B/E pairs nest.
    let mut by_lane: Vec<Span> = spans.to_vec();
    by_lane.sort_by_key(|s| (s.tid, s.ts_ns, s.dur_ns));
    let mut last_end: Vec<(u64, u64)> = Vec::new(); // (tid, end_ns)
                                                    // (ts_ns, is_begin, name, cat, tid)
    let mut events: Vec<(u64, bool, &'static str, &'static str, u64)> = Vec::new();
    for s in &by_lane {
        let end_slot = match last_end.iter_mut().find(|(tid, _)| *tid == s.tid) {
            Some(slot) => slot,
            None => {
                last_end.push((s.tid, 0));
                last_end.last_mut().expect("just pushed")
            }
        };
        let start = s.ts_ns.max(end_slot.1);
        let end = start + s.dur_ns.saturating_sub(start - s.ts_ns);
        let end = end.max(start);
        end_slot.1 = end;
        events.push((start, true, s.name, s.cat, s.tid));
        events.push((end, false, s.name, s.cat, s.tid));
    }
    // Global stable sort by ts only: per-lane generation order already
    // has each span's end before the next span's begin and each begin
    // before its own end, so ties keep both properties — including
    // zero-duration spans, whose B must still precede their E.
    events.sort_by_key(|&(ts, _, _, _, _)| ts);
    let mut out = String::with_capacity(events.len() * 80 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, (ts_ns, is_begin, name, cat, tid)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = if *is_begin { 'B' } else { 'E' };
        let _ = write!(
            out,
            "\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\
             \"ts\":{}.{:03},\"pid\":1,\"tid\":{tid}}}",
            ts_ns / 1_000,
            ts_ns % 1_000,
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tid: u64, ts: u64, dur: u64) -> Span {
        Span {
            name: "t",
            cat: "test",
            tid,
            ts_ns: ts,
            dur_ns: dur,
        }
    }

    #[test]
    fn disabled_gate_records_nothing() {
        set_enabled(false);
        record_span(span(1, 0, 10));
        assert!(take_spans().spans.is_empty());
    }

    #[test]
    fn enabled_gate_records_and_drains() {
        set_enabled(true);
        record_span(span(1, 0, 10));
        record_span(span(1, 20, 5));
        set_enabled(false);
        let drain = take_spans();
        assert_eq!(drain.spans.len(), 2);
        assert_eq!(drain.dropped, 0);
        assert!(take_spans().spans.is_empty(), "drain resets the ring");
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        set_enabled(true);
        for i in 0..(SPAN_RING_CAPACITY as u64 + 10) {
            record_span(span(1, i, 1));
        }
        set_enabled(false);
        let drain = take_spans();
        assert_eq!(drain.spans.len(), SPAN_RING_CAPACITY);
        assert_eq!(drain.dropped, 10);
        assert_eq!(drain.spans[0].ts_ns, 10, "oldest retained span is #10");
        let last = drain.spans.last().expect("non-empty");
        assert_eq!(last.ts_ns, SPAN_RING_CAPACITY as u64 + 9);
    }

    #[test]
    fn chrome_trace_has_monotone_ts_and_matched_pairs() {
        let spans = [span(1, 100, 50), span(2, 120, 10), span(1, 200, 0)];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("}"));
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, 3);
        assert_eq!(ends, 3);
    }

    #[test]
    fn zero_duration_span_still_begins_before_it_ends() {
        // A zero-duration span emits B and E at the same ts; the begin
        // must come first in file order or viewers see an orphaned end.
        let json = chrome_trace_json(&[span(3, 500, 0)]);
        let b = json.find("\"ph\":\"B\"").expect("has a begin");
        let e = json.find("\"ph\":\"E\"").expect("has an end");
        assert!(b < e, "begin precedes end: {json}");
    }

    #[test]
    fn overlapping_spans_on_one_lane_are_clamped_forward() {
        let spans = [span(7, 0, 100), span(7, 50, 100)];
        let json = chrome_trace_json(&spans);
        // Second span starts where the first ends: 100ns = 0.100us.
        assert!(json.contains("\"ts\":0.100"), "{json}");
        assert!(json.contains("\"ts\":0.150"), "{json}");
    }
}
