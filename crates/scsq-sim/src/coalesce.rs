//! Affine train coalescing: detect periodic phases of a simulation and
//! fast-forward whole periods analytically.
//!
//! The figure workloads push long trains of identical messages through
//! the cluster models. Once such a train is in steady state, the entire
//! simulator state evolves *affinely*: between two occurrences of the
//! same event kind ("cuts"), every counter and every clock advances by a
//! constant per-period delta. This module detects that regime from the
//! outside — without any model-specific knowledge — and jumps the whole
//! state forward by `N` periods in one step, producing bit-identical
//! results to executing the events one by one.
//!
//! The three pieces:
//!
//! * [`StateProbe`] — a visitor the model's state walks itself through,
//!   once per digest. Each call classifies one piece of state as an
//!   extrapolatable number ([`StateProbe::num`]), a number with an upper
//!   bound it must not cross ([`StateProbe::bounded`]), a read-only
//!   safety margin ([`StateProbe::guard`]), or opaque structure that
//!   must stay exactly equal for a jump to be sound
//!   ([`StateProbe::shape`]).
//! * [`Snapshot`] — the digest a probe walk produces.
//! * [`Coalescer`] — the detector: confirms three consecutive equal
//!   delta vectors before the first jump, then re-jumps after a single
//!   matching period, with exponential backoff when a phase refuses to
//!   lock.
//!
//! ## Soundness
//!
//! A jump of `P` periods replays the confirmed per-period delta `P`
//! times. That is exactly what per-event execution would produce as
//! long as no *comparison* inside the model changes its outcome during
//! the jumped span. Three mechanisms enforce this:
//!
//! * any coordinate with a **negative** delta caps `P` so it stays
//!   strictly positive (a depleting counter reaching zero is a behavior
//!   change);
//! * [`StateProbe::bounded`]/[`StateProbe::guard`] coordinates cap `P`
//!   so they stay strictly below their bound (a filling buffer wrapping
//!   or a backlog crossing a drop threshold is a behavior change);
//! * everything else (lengths, discriminants, payload bytes, float
//!   accumulators) is hashed into the shape, and any shape change
//!   blocks the jump entirely.
//!
//! A reserve of two periods is always withheld, and a jump with no
//! finite cap at all is refused: unbounded extrapolation would mean no
//! coordinate ever forces the phase to end, which real workloads never
//! exhibit (they terminate).

use crate::time::{SimDur, SimTime};

/// Periods withheld from every jump so the state never lands exactly on
/// a behavior boundary.
const RESERVE_PERIODS: u64 = 2;
/// Consecutive equal delta vectors required before the first jump of a
/// phase.
const CONFIRM_MATCHES: u32 = 3;
/// Digests without a jump before backing off. Digesting is an order of
/// magnitude more expensive than dispatching the events of a period, so
/// barren stretches (e.g. the pipeline-ramp transient after each train,
/// whose in-flight set changes size every period) must stop digesting
/// quickly.
const BARREN_LIMIT: u32 = 4;
/// Upper bound on the exponential backoff, in periods.
const MAX_SKIP: u64 = 512;
/// Events without seeing the anchor key again before re-anchoring on
/// the current event.
const REANCHOR_AFTER: u64 = 4096;
/// Hard clamp on a single jump so delta arithmetic stays far from
/// overflow.
const MAX_JUMP: u64 = 1 << 32;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One multiply-xor round over a full word. The constant is the FNV
/// prime, but the mix is word-at-a-time: the hash is only ever compared
/// against hashes computed the same way within one run, so all that
/// matters is determinism and diffusion, and the byte-at-a-time loop
/// was the single hottest instruction sequence of a state digest.
#[inline]
fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME).rotate_left(23)
}

/// An upper-bound constraint on one probed coordinate: the coordinate
/// must stay strictly below `bound` for the confirmed deltas to remain
/// valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cap {
    coord: usize,
    bound: u64,
}

enum Mode<'a> {
    Digest,
    Advance { deltas: &'a [i64], periods: u64 },
}

/// A visitor that either digests simulation state into a [`Snapshot`]
/// or replays a confirmed per-period delta onto it.
///
/// The same probe walk must visit the same state in the same order in
/// both modes; the walk order is the coordinate identity.
pub struct StateProbe<'a> {
    mode: Mode<'a>,
    idx: usize,
    nums: Vec<u64>,
    caps: Vec<Cap>,
    shape: u64,
}

impl<'a> StateProbe<'a> {
    /// Creates a probe that records state into a snapshot.
    pub fn digest() -> Self {
        StateProbe {
            mode: Mode::Digest,
            idx: 0,
            nums: Vec::with_capacity(1024),
            caps: Vec::with_capacity(16),
            shape: FNV_OFFSET,
        }
    }

    /// Creates a probe that advances state by `deltas * periods`.
    pub fn advance(deltas: &'a [i64], periods: u64) -> Self {
        StateProbe {
            mode: Mode::Advance { deltas, periods },
            idx: 0,
            nums: Vec::new(),
            caps: Vec::new(),
            shape: FNV_OFFSET,
        }
    }

    #[inline]
    fn apply(x: u64, delta: i64, periods: u64) -> u64 {
        // Two's-complement wrapping arithmetic: deltas are computed with
        // wrapping subtraction, so replaying them wraps consistently.
        x.wrapping_add((delta as u64).wrapping_mul(periods))
    }

    /// Probes an extrapolatable counter.
    #[inline]
    pub fn num(&mut self, x: &mut u64) {
        match &self.mode {
            Mode::Digest => self.nums.push(*x),
            Mode::Advance { deltas, periods } => *x = Self::apply(*x, deltas[self.idx], *periods),
        }
        self.idx += 1;
    }

    /// Probes a signed counter (stored as its two's-complement bits).
    #[inline]
    pub fn num_i64(&mut self, x: &mut i64) {
        let mut bits = *x as u64;
        self.num(&mut bits);
        *x = bits as i64;
    }

    /// Probes a `usize` counter.
    #[inline]
    pub fn num_usize(&mut self, x: &mut usize) {
        let mut bits = *x as u64;
        self.num(&mut bits);
        *x = bits as usize;
    }

    /// Probes a simulation instant.
    #[inline]
    pub fn time(&mut self, t: &mut SimTime) {
        let mut ns = t.as_nanos();
        self.num(&mut ns);
        *t = SimTime::from_nanos(ns);
    }

    /// Probes a simulation duration.
    #[inline]
    pub fn dur(&mut self, d: &mut SimDur) {
        let mut ns = d.as_nanos();
        self.num(&mut ns);
        *d = SimDur::from_nanos(ns);
    }

    /// Probes a counter that must stay strictly below `bound` (e.g. a
    /// buffer fill level, or executed events under an event budget).
    #[inline]
    pub fn bounded(&mut self, x: &mut u64, bound: u64) {
        if matches!(self.mode, Mode::Digest) {
            self.caps.push(Cap {
                coord: self.idx,
                bound,
            });
        }
        self.num(x);
    }

    /// Probes a derived, read-only safety margin that must stay strictly
    /// below `bound`. Use [`u64::MAX`] as the bound when only the
    /// implicit stay-positive rule for negative deltas should apply.
    #[inline]
    pub fn guard(&mut self, x: u64, bound: u64) {
        match &self.mode {
            Mode::Digest => {
                self.caps.push(Cap {
                    coord: self.idx,
                    bound,
                });
                self.nums.push(x);
            }
            Mode::Advance { .. } => {} // derived: nothing to write back
        }
        self.idx += 1;
    }

    /// Mixes an opaque structural fact (a length, a discriminant, float
    /// bits) into the shape hash. Any change blocks jumps.
    #[inline]
    pub fn shape(&mut self, v: u64) {
        if matches!(self.mode, Mode::Digest) {
            self.shape = fnv_mix(self.shape, v);
        }
    }

    /// Mixes a byte string into the shape hash.
    #[inline]
    pub fn shape_bytes(&mut self, bytes: &[u8]) {
        if matches!(self.mode, Mode::Digest) {
            let mut h = fnv_mix(self.shape, bytes.len() as u64);
            let mut chunks = bytes.chunks_exact(8);
            for c in &mut chunks {
                h = fnv_mix(h, u64::from_le_bytes(c.try_into().expect("chunk of 8")));
            }
            let mut tail = 0u64;
            for &b in chunks.remainder() {
                tail = (tail << 8) | b as u64;
            }
            h = fnv_mix(h, tail);
            self.shape = h;
        }
    }

    /// Consumes a digest-mode probe, yielding the snapshot.
    ///
    /// # Panics
    ///
    /// Panics on an advance-mode probe.
    pub fn finish(self) -> Snapshot {
        assert!(
            matches!(self.mode, Mode::Digest),
            "finish() is only meaningful after a digest walk"
        );
        Snapshot {
            nums: self.nums,
            caps: self.caps,
            shape: self.shape,
        }
    }
}

/// The digest of one probe walk over the full simulation state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    nums: Vec<u64>,
    caps: Vec<Cap>,
    shape: u64,
}

impl Snapshot {
    /// Number of extrapolatable coordinates the walk visited (a size
    /// diagnostic for tuning digest cost).
    pub fn coords(&self) -> usize {
        self.nums.len()
    }
}

/// Counters describing what the coalescer did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// State digests taken.
    pub digests: u64,
    /// Jumps performed.
    pub jumps: u64,
    /// Periods skipped analytically across all jumps.
    pub periods_skipped: u64,
    /// Events those skipped periods would have dispatched.
    pub events_skipped: u64,
}

/// The plan for one jump: replay `deltas` onto the state `periods`
/// times (via [`StateProbe::advance`]).
#[derive(Debug, Clone)]
pub struct JumpPlan {
    /// Per-coordinate per-period deltas, in probe walk order.
    pub deltas: Vec<i64>,
    /// Number of whole periods to skip.
    pub periods: u64,
}

/// Detects periodic phases from a stream of event keys and state
/// snapshots, and plans affine jumps across them.
#[derive(Debug)]
pub struct Coalescer {
    anchor: Option<u64>,
    events_since_cut: u64,
    last_period_len: u64,
    prev: Option<Snapshot>,
    delta: Vec<i64>,
    matches: u32,
    confirmed: Option<Vec<i64>>,
    warm_missed: bool,
    fails: u32,
    skip: u64,
    barren: u32,
    stats: CoalesceStats,
}

impl Default for Coalescer {
    fn default() -> Self {
        Coalescer::new()
    }
}

impl Coalescer {
    /// Creates an idle detector.
    pub fn new() -> Self {
        Coalescer {
            anchor: None,
            events_since_cut: 0,
            last_period_len: 0,
            prev: None,
            delta: Vec::new(),
            matches: 0,
            confirmed: None,
            warm_missed: false,
            fails: 0,
            skip: 0,
            barren: 0,
            stats: CoalesceStats::default(),
        }
    }

    /// Counters describing the coalescer's activity so far.
    pub fn stats(&self) -> CoalesceStats {
        self.stats
    }

    fn reset_chain(&mut self) {
        self.prev = None;
        self.matches = 0;
        self.confirmed = None;
        self.warm_missed = false;
    }

    fn back_off(&mut self) {
        self.fails = (self.fails + 1).min(8);
        self.skip = (1u64 << (2 * self.fails)).min(MAX_SKIP);
        self.barren = 0;
    }

    /// Reports the key of the event about to fire. Returns `true` when
    /// this instant is a cut worth digesting (the driver should then
    /// digest the state and call [`Coalescer::observe`]).
    pub fn note_event(&mut self, key: u64) -> bool {
        self.events_since_cut += 1;
        match self.anchor {
            None => {
                self.anchor = Some(key);
                self.events_since_cut = 0;
                false
            }
            Some(a) if a == key => {
                let len = self.events_since_cut;
                self.events_since_cut = 0;
                let stable = len == self.last_period_len && len > 0;
                self.last_period_len = len;
                if !stable {
                    // An irregular period can be the expected wrap of a
                    // warm phase; give the warm delta one chance to
                    // re-match, otherwise restart cold.
                    if self.confirmed.is_some() && !self.warm_missed {
                        self.warm_missed = true;
                        self.prev = None;
                    } else {
                        self.reset_chain();
                    }
                    return false;
                }
                if self.skip > 0 {
                    self.skip -= 1;
                    return false;
                }
                true
            }
            Some(_) => {
                if self.events_since_cut > REANCHOR_AFTER {
                    self.anchor = Some(key);
                    self.events_since_cut = 0;
                    self.last_period_len = 0;
                    self.reset_chain();
                    self.fails = 0;
                }
                false
            }
        }
    }

    fn comparable(a: &Snapshot, b: &Snapshot) -> bool {
        a.shape == b.shape && a.nums.len() == b.nums.len() && a.caps == b.caps
    }

    fn deltas_of(prev: &Snapshot, snap: &Snapshot) -> Vec<i64> {
        prev.nums
            .iter()
            .zip(&snap.nums)
            .map(|(&a, &b)| b.wrapping_sub(a) as i64)
            .collect()
    }

    /// Whether the per-coordinate deltas between two comparable
    /// snapshots equal `expected`, without materializing them.
    fn deltas_match(prev: &Snapshot, snap: &Snapshot, expected: &[i64]) -> bool {
        prev.nums
            .iter()
            .zip(&snap.nums)
            .zip(expected)
            .all(|((&a, &b), &e)| b.wrapping_sub(a) as i64 == e)
    }

    /// Maximum sound jump from `snap` under `deltas`, or `None` when no
    /// finite cap exists or the caps leave no room.
    fn plan_periods(snap: &Snapshot, deltas: &[i64]) -> Option<u64> {
        let mut cap: Option<u64> = None;
        let mut tighten = |c: u64| {
            cap = Some(cap.map_or(c, |old: u64| old.min(c)));
        };
        for (i, &d) in deltas.iter().enumerate() {
            if d < 0 {
                // Stay strictly positive: x - P*|d| >= 1 would withhold
                // valid terminal states; x / |d| then the global reserve
                // keeps us two periods clear of zero anyway.
                tighten(snap.nums[i] / d.unsigned_abs());
            }
        }
        for c in &snap.caps {
            if c.bound == u64::MAX {
                continue;
            }
            let d = deltas[c.coord];
            let x = snap.nums[c.coord];
            if d > 0 {
                if x >= c.bound {
                    return None;
                }
                tighten((c.bound - 1 - x) / d as u64);
            }
        }
        let p = cap?.saturating_sub(RESERVE_PERIODS).min(MAX_JUMP);
        (p >= 1).then_some(p)
    }

    /// Feeds the snapshot digested at a cut. Returns a [`JumpPlan`] when
    /// the phase is confirmed periodic and has room to jump; the driver
    /// must then apply the plan and call [`Coalescer::after_jump`].
    pub fn observe(&mut self, snap: Snapshot) -> Option<JumpPlan> {
        self.stats.digests += 1;
        let plan = self.observe_inner(snap);
        if plan.is_none() {
            self.barren += 1;
            if self.barren >= BARREN_LIMIT {
                self.back_off();
            }
        }
        plan
    }

    fn observe_inner(&mut self, snap: Snapshot) -> Option<JumpPlan> {
        let Some(prev) = self.prev.take() else {
            self.prev = Some(snap);
            return None;
        };
        let comparable = Self::comparable(&prev, &snap);

        if let Some(conf) = self.confirmed.take() {
            if comparable && Self::deltas_match(&prev, &snap, &conf) {
                self.confirmed = Some(conf);
                self.prev = Some(snap);
                let snap = self.prev.as_ref().expect("just stored");
                let conf = self.confirmed.as_ref().expect("just stored");
                self.warm_missed = false;
                let periods = Self::plan_periods(snap, conf)?;
                return Some(JumpPlan {
                    deltas: conf.clone(),
                    periods,
                });
            }
            // One anomalous period (a buffer wrap, a boundary element)
            // is tolerated; two demote the phase.
            if self.warm_missed {
                self.warm_missed = false;
                self.matches = 0;
                self.back_off();
            } else {
                self.confirmed = Some(conf);
                self.warm_missed = true;
                if comparable {
                    self.delta = Self::deltas_of(&prev, &snap);
                    self.matches = 1;
                } else {
                    self.matches = 0;
                }
            }
            self.prev = Some(snap);
            return None;
        }

        if comparable {
            if self.matches > 0 && Self::deltas_match(&prev, &snap, &self.delta) {
                self.matches += 1;
            } else {
                self.delta = Self::deltas_of(&prev, &snap);
                self.matches = 1;
            }
            self.prev = Some(snap);
            if self.matches >= CONFIRM_MATCHES {
                let snap = self.prev.as_ref().expect("just stored");
                self.confirmed = Some(self.delta.clone());
                let periods = Self::plan_periods(snap, &self.delta)?;
                return Some(JumpPlan {
                    deltas: self.delta.clone(),
                    periods,
                });
            }
            None
        } else {
            self.matches = 0;
            self.prev = Some(snap);
            None
        }
    }

    /// Records a performed jump of `periods` periods (each
    /// `events_per_period` events long), and extrapolates the stored
    /// snapshot so the next cut compares against the post-jump state.
    pub fn after_jump(&mut self, plan: &JumpPlan) {
        let prev = self
            .prev
            .as_mut()
            .expect("after_jump without a preceding observe");
        for (x, &d) in prev.nums.iter_mut().zip(&plan.deltas) {
            *x = StateProbe::apply(*x, d, plan.periods);
        }
        self.fails = 0;
        // The jump deliberately stops RESERVE_PERIODS short of the
        // tightest cap, so the next few cuts provably have no room:
        // don't pay for digesting them.
        self.skip = RESERVE_PERIODS;
        self.barren = 0;
        self.warm_missed = false;
        self.stats.jumps += 1;
        self.stats.periods_skipped += plan.periods;
        self.stats.events_skipped += plan.periods * self.last_period_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_pair(xs: &[(u64, Option<u64>)], shape: u64) -> Snapshot {
        let mut p = StateProbe::digest();
        for &(v, bound) in xs {
            let mut v = v;
            match bound {
                Some(b) => p.bounded(&mut v, b),
                None => p.num(&mut v),
            }
        }
        p.shape(shape);
        p.finish()
    }

    #[test]
    fn probe_roundtrips_numbers_and_times() {
        let mut a = 10u64;
        let mut t = SimTime::from_micros(3);
        let mut d = SimDur::from_nanos(7);
        let mut n = -5i64;
        let mut p = StateProbe::digest();
        p.num(&mut a);
        p.time(&mut t);
        p.dur(&mut d);
        p.num_i64(&mut n);
        let snap = p.finish();

        let deltas = vec![2i64, 1000, -1, -1];
        let mut adv = StateProbe::advance(&deltas, 4);
        adv.num(&mut a);
        adv.time(&mut t);
        adv.dur(&mut d);
        adv.num_i64(&mut n);
        assert_eq!(a, 18);
        assert_eq!(t, SimTime::from_micros(7));
        assert_eq!(d, SimDur::from_nanos(3));
        assert_eq!(n, -9);
        drop(snap);
    }

    #[test]
    fn shape_changes_block_comparison() {
        let a = digest_pair(&[(5, None)], 1);
        let b = digest_pair(&[(6, None)], 2);
        assert!(!Coalescer::comparable(&a, &b));
    }

    #[test]
    fn negative_delta_caps_the_jump() {
        let snap = digest_pair(&[(100, None), (7, None)], 0);
        let p = Coalescer::plan_periods(&snap, &[-10, 1]).expect("capped jump");
        // 100 / 10 = 10 periods, minus the reserve of 2.
        assert_eq!(p, 8);
    }

    #[test]
    fn bounded_coordinate_caps_the_jump() {
        let snap = digest_pair(&[(990, Some(1000)), (5, None)], 0);
        let p = Coalescer::plan_periods(&snap, &[3, -1]).expect("capped jump");
        // fill: (999 - 990) / 3 = 3; depletion: 5 / 1 = 5; min 3 - 2 = 1.
        assert_eq!(p, 1);
    }

    #[test]
    fn unbounded_jump_is_refused() {
        let snap = digest_pair(&[(5, None)], 0);
        assert_eq!(Coalescer::plan_periods(&snap, &[1]), None);
        assert_eq!(Coalescer::plan_periods(&snap, &[0]), None);
    }

    #[test]
    fn detector_confirms_then_jumps() {
        let mut co = Coalescer::new();
        // Key 7 fires every event: period length 1.
        assert!(!co.note_event(7)); // anchors
        let mut x = 1_000_000u64;
        let mut t = 0u64;
        let mut jumped_at = None;
        for step in 0..10 {
            assert!(co.note_event(7) || step == 0, "stable cuts digest");
            let snap = digest_pair(&[(x, None), (t, None)], 42);
            if let Some(plan) = co.observe(snap) {
                assert_eq!(plan.deltas, vec![-3, 50]);
                x = x.wrapping_add((-3i64 as u64).wrapping_mul(plan.periods));
                t += 50 * plan.periods;
                co.after_jump(&plan);
                jumped_at = Some((step, plan.periods));
                break;
            }
            x -= 3;
            t += 50;
        }
        let (step, periods) = jumped_at.expect("periodic phase must lock");
        // Snapshots at steps 0..=3 give three equal deltas.
        assert_eq!(step, 3);
        assert!(periods > 300_000, "jump should clear most of the phase");
        // The jump leaves only the reserve: the depleted counter now
        // blocks further jumps until something refreshes it.
        assert!(x <= 3 * (RESERVE_PERIODS + 1), "landed inside the reserve");
        // The reserve cuts provably have no room, so they are skipped
        // without digesting at all.
        for _ in 0..RESERVE_PERIODS {
            assert!(!co.note_event(7), "reserve cut must not digest");
            t += 50;
        }
        // A wrap refreshes the counter. The delta across the skipped
        // span mismatches once (anomalous, tolerated), then one
        // matching delta re-jumps warm — no 3-match re-confirm.
        assert!(co.note_event(7));
        assert!(co
            .observe(digest_pair(&[(500_000, None), (t + 50, None)], 42))
            .is_none());
        assert!(co.note_event(7));
        let snap = digest_pair(&[(500_000 - 3, None), (t + 100, None)], 42);
        assert!(co.observe(snap).is_some(), "warm phase re-jumps on match");
        assert_eq!(co.stats().jumps, 1, "after_jump not called for the plan");
    }

    #[test]
    fn warm_phase_tolerates_one_wrap_then_rejumps() {
        let mut co = Coalescer::new();
        co.note_event(1);
        let snap = |x: u64, shape: u64| digest_pair(&[(x, None), (1000, Some(2000))], shape);
        // Build a confirmed phase: x depletes by 1 per period.
        let mut x = 500u64;
        loop {
            co.note_event(1);
            if let Some(plan) = co.observe(snap(x, 9)) {
                assert_eq!(plan.deltas, vec![-1, 0]);
                co.after_jump(&plan);
                x -= plan.periods;
                break;
            }
            x -= 1;
        }
        let _ = x;
        // The post-jump reserve cuts are skipped without digesting.
        for _ in 0..RESERVE_PERIODS {
            assert!(!co.note_event(1), "reserve cut must not digest");
        }
        // A wrap refreshes the counter with a different shape: one
        // anomalous period is tolerated...
        co.note_event(1);
        assert!(co.observe(snap(600, 8)).is_none());
        // ...and a matching delta right after re-jumps immediately.
        co.note_event(1);
        let plan = co.observe(snap(599, 8)).expect("warm re-lock after wrap");
        co.after_jump(&plan);
        let x = 599 - plan.periods;
        for _ in 0..RESERVE_PERIODS {
            assert!(!co.note_event(1), "reserve cut must not digest");
        }
        // Two anomalous periods in a row demote the phase to cold.
        co.note_event(1);
        assert!(co.observe(snap(x, 7)).is_none(), "first miss tolerated");
        co.note_event(1);
        assert!(co.observe(snap(x - 1, 6)).is_none(), "second miss demotes");
        co.note_event(1);
        assert!(co.observe(snap(x - 2, 6)).is_none(), "cold: first delta");
        assert_eq!(co.stats().jumps, 2);
    }

    #[test]
    fn irregular_periods_do_not_digest() {
        let mut co = Coalescer::new();
        co.note_event(5); // anchor
        co.note_event(9);
        assert!(!co.note_event(5), "period length 2, previous was 0");
        assert!(!co.note_event(5), "period length 1 != 2");
        assert!(co.note_event(5), "two consecutive length-1 periods");
    }

    #[test]
    fn reanchors_when_the_anchor_disappears() {
        let mut co = Coalescer::new();
        co.note_event(1);
        for _ in 0..=REANCHOR_AFTER {
            assert!(!co.note_event(2));
        }
        // The next occurrence of key 2 is now a cut candidate.
        assert!(!co.note_event(2), "first period after re-anchor");
        assert!(co.note_event(2), "stable period after re-anchor");
    }
}
