//! Queueing primitives: FIFO servers with analytic busy-time accounting.
//!
//! A [`FifoServer`] models a serially-shared resource (a network link, a
//! NIC, a communication co-processor). Instead of simulating a token per
//! byte, the server keeps a `busy_until` horizon: a job arriving at time
//! `t` with service demand `d` starts at `max(t, busy_until)` and
//! completes `d` later. Tandem chains of such servers reproduce pipeline
//! throughput (the slowest stage dominates) and sharing (interleaved flows
//! split capacity) without per-packet events.
//!
//! [`SwitchingServer`] extends the FIFO server with a per-source switch
//! penalty; it models the BlueGene communication co-processor, which the
//! paper observes pays a cost each time it alternates between receiving
//! from different source nodes (§3.1: merge needs much larger buffers than
//! point-to-point).

use crate::time::{SimDur, SimTime};

/// A work-conserving FIFO resource.
///
/// ```
/// use scsq_sim::{FifoServer, SimDur, SimTime};
/// let mut link = FifoServer::new();
/// // Two jobs arrive back-to-back at t=0; the second queues.
/// let first = link.serve(SimTime::ZERO, SimDur::from_micros(10));
/// let second = link.serve(SimTime::ZERO, SimDur::from_micros(10));
/// assert_eq!(first.finish, SimTime::from_micros(10));
/// assert_eq!(second.start, SimTime::from_micros(10));
/// assert_eq!(second.finish, SimTime::from_micros(20));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FifoServer {
    busy_until: SimTime,
    busy_total: SimDur,
    jobs: u64,
}

/// When a job held a server: `start..finish`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (arrival or later if the server was busy).
    pub start: SimTime,
    /// When service completed.
    pub finish: SimTime,
}

impl Grant {
    /// How long the job waited in queue before service began.
    pub fn queueing_delay(&self, arrival: SimTime) -> SimDur {
        self.start.since(arrival)
    }
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        FifoServer::default()
    }

    /// Admits a job arriving at `arrival` needing `service` time.
    /// Returns when the job started and finished.
    pub fn serve(&mut self, arrival: SimTime, service: SimDur) -> Grant {
        let start = arrival.max(self.busy_until);
        let finish = start + service;
        self.busy_until = finish;
        self.busy_total += service;
        self.jobs += 1;
        Grant { start, finish }
    }

    /// The earliest instant a new arrival could begin service.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn busy_total(&self) -> SimDur {
        self.busy_total
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over the window `[SimTime::ZERO, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        self.busy_total.as_secs_f64() / horizon.as_secs_f64()
    }

    /// Resets the server to idle, clearing statistics.
    pub fn reset(&mut self) {
        *self = FifoServer::default();
    }

    /// Walks the server's state through a coalescing probe: the busy
    /// horizon and all counters advance affinely during steady trains.
    ///
    /// A never-used server contributes a single shape bit instead of
    /// three coordinates: most servers of a large cluster are idle in
    /// any given query, and the probe runs on every coalescing digest.
    /// The bit keeps digest and advance walks aligned — a server waking
    /// up changes the walk's structure, which blocks the jump.
    pub fn probe(&mut self, p: &mut crate::coalesce::StateProbe<'_>) {
        let untouched =
            self.jobs == 0 && self.busy_until == SimTime::ZERO && self.busy_total == SimDur::ZERO;
        p.shape(untouched as u64);
        if !untouched {
            p.time(&mut self.busy_until);
            p.dur(&mut self.busy_total);
            p.num(&mut self.jobs);
        }
    }
}

/// A FIFO server that charges a retargeting penalty proportional to how
/// many distinct sources are concurrently streaming through it.
///
/// This models the single-threaded BlueGene communication co-processor:
/// the paper explains the poor small-buffer merge bandwidth by the
/// co-processor "switching between receiving messages from a and b",
/// where "less frequent switching improves communication" (§3.1). With
/// `k` sources active, consecutive messages in arrival order alternate
/// with probability `(k-1)/k`, so each job is charged that expected
/// fraction of the switch cost. The charge is *order-independent*: it
/// depends on which flows are concurrently active (seen within
/// [`SwitchingServer::ACTIVITY_WINDOW`]), not on the incidental
/// interleaving of bookkeeping calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwitchingServer {
    inner: FifoServer,
    switch_cost: SimDur,
    /// Last time each source was seen, sorted by source id. A server
    /// only ever sees the handful of flows that a query routes through
    /// it, so a sorted vec beats a hash map on every per-event call (no
    /// hashing, no bucket scan on expiry) and hands the probe its
    /// deterministic visit order for free.
    activity: Vec<(u64, SimTime)>,
    penalty_total: SimDur,
}

impl SwitchingServer {
    /// How long a source counts as "concurrently active" after its last
    /// job. Long enough to span the inter-arrival gap of even 1 MB
    /// stream buffers.
    pub const ACTIVITY_WINDOW: SimDur = SimDur::from_millis(50);

    /// Creates an idle server with the given per-switch penalty.
    pub fn new(switch_cost: SimDur) -> Self {
        SwitchingServer {
            inner: FifoServer::new(),
            switch_cost,
            activity: Vec::new(),
            penalty_total: SimDur::ZERO,
        }
    }

    /// Admits a job from `source`, charging the expected switch penalty
    /// for the current number of concurrently active sources.
    pub fn serve_from(&mut self, source: u64, arrival: SimTime, service: SimDur) -> Grant {
        let cost = self.switch_cost;
        self.serve_from_with_cost(source, arrival, service, cost)
    }

    /// Like [`SwitchingServer::serve_from`], but with a per-job switch
    /// cost (used when jobs of different kinds share one server and pay
    /// different retargeting penalties, e.g. TCP socket switches vs MPI
    /// flow switches on a compute node's CPU).
    pub fn serve_from_with_cost(
        &mut self,
        source: u64,
        arrival: SimTime,
        service: SimDur,
        switch_cost: SimDur,
    ) -> Grant {
        // Fast path: a steady single-source stream — the overwhelmingly
        // common case (every buffer period of a point-to-point transfer
        // lands here). One active source means a zero penalty term, and
        // expiry plus the out-of-order rule reduce to keeping the newer
        // timestamp, so the bookkeeping is a compare and a store.
        if let [(s, last)] = self.activity.as_mut_slice() {
            if *s == source {
                if arrival > *last {
                    *last = arrival;
                }
                return self.inner.serve(arrival, service);
            }
        }
        // Expire sources not seen within the window.
        self.activity
            .retain(|&(_, last)| last + Self::ACTIVITY_WINDOW >= arrival);
        match self.activity.binary_search_by_key(&source, |&(s, _)| s) {
            // Keep the latest timestamp (out-of-order bookkeeping calls).
            Ok(i) => {
                if arrival > self.activity[i].1 {
                    self.activity[i].1 = arrival;
                }
            }
            Err(i) => self.activity.insert(i, (source, arrival)),
        }
        let active = self.activity.len().max(1);
        let penalty = switch_cost * ((active - 1) as f64 / active as f64);
        self.penalty_total += penalty;
        self.inner.serve(arrival, service + penalty)
    }

    /// Total switching penalty charged so far.
    pub fn penalty_total(&self) -> SimDur {
        self.penalty_total
    }

    /// Number of sources currently counted as active.
    pub fn active_sources(&self) -> usize {
        self.activity.len()
    }

    /// The earliest instant a new arrival could begin service.
    pub fn busy_until(&self) -> SimTime {
        self.inner.busy_until()
    }

    /// Total busy time accumulated.
    pub fn busy_total(&self) -> SimDur {
        self.inner.busy_total()
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.inner.jobs()
    }

    /// Resets the server to idle, clearing statistics and source memory.
    pub fn reset(&mut self) {
        let cost = self.switch_cost;
        *self = SwitchingServer::new(cost);
    }

    /// Walks the server's state through a coalescing probe.
    ///
    /// The activity list is visited in sorted key order (its storage
    /// order). Each entry's age relative to `now` is guarded: an idle
    /// source expiring out of the window changes the switch penalty, so
    /// no jump may cross that expiry. Entries already past the window
    /// can only be retained out (age never shrinks while a source is
    /// idle), so they carry no upper bound.
    pub fn probe(&mut self, p: &mut crate::coalesce::StateProbe<'_>, now: SimTime) {
        self.inner.probe(p);
        if self.penalty_total == SimDur::ZERO && self.activity.is_empty() {
            p.shape(u64::MAX);
            return;
        }
        p.dur(&mut self.penalty_total);
        p.shape(self.activity.len() as u64);
        let window = Self::ACTIVITY_WINDOW.as_nanos();
        for (k, last) in &mut self.activity {
            p.shape(*k);
            let age = now.as_nanos().saturating_sub(last.as_nanos());
            p.guard(age, if age < window { window } else { u64::MAX });
            p.time(last);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = FifoServer::new();
        let g = s.serve(SimTime::from_micros(5), SimDur::from_micros(3));
        assert_eq!(g.start, SimTime::from_micros(5));
        assert_eq!(g.finish, SimTime::from_micros(8));
        assert_eq!(g.queueing_delay(SimTime::from_micros(5)), SimDur::ZERO);
    }

    #[test]
    fn busy_server_queues_jobs() {
        let mut s = FifoServer::new();
        s.serve(SimTime::ZERO, SimDur::from_micros(10));
        let g = s.serve(SimTime::from_micros(2), SimDur::from_micros(1));
        assert_eq!(g.start, SimTime::from_micros(10));
        assert_eq!(
            g.queueing_delay(SimTime::from_micros(2)),
            SimDur::from_micros(8)
        );
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut s = FifoServer::new();
        s.serve(SimTime::ZERO, SimDur::from_micros(1));
        let g = s.serve(SimTime::from_micros(100), SimDur::from_micros(1));
        assert_eq!(g.start, SimTime::from_micros(100));
        assert_eq!(s.busy_total(), SimDur::from_micros(2));
        assert_eq!(s.jobs(), 2);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut s = FifoServer::new();
        s.serve(SimTime::ZERO, SimDur::from_micros(25));
        let u = s.utilization(SimTime::from_micros(100));
        assert!((u - 0.25).abs() < 1e-9);
    }

    #[test]
    fn interleaved_flows_share_capacity() {
        // Two flows pushing alternate jobs through one server each get
        // half the throughput.
        let mut s = FifoServer::new();
        let mut finishes = Vec::new();
        for i in 0..10 {
            let arrival = SimTime::ZERO;
            let g = s.serve(arrival, SimDur::from_micros(10));
            finishes.push((i % 2, g.finish));
        }
        // Flow 0's last job completes at 90us, flow 1's at 100us: each
        // flow got 5 jobs through in ~100us instead of 50us.
        assert_eq!(finishes[8].1, SimTime::from_micros(90));
        assert_eq!(finishes[9].1, SimTime::from_micros(100));
    }

    #[test]
    fn switching_server_penalizes_concurrent_sources() {
        let mut s = SwitchingServer::new(SimDur::from_micros(20));
        // Two concurrent sources: each job (after the first) pays the
        // expected alternation fraction (k-1)/k = 1/2.
        for i in 0..4u64 {
            s.serve_from(i % 2, SimTime::ZERO, SimDur::from_micros(1));
        }
        assert_eq!(s.active_sources(), 2);
        // Job 1: 1 active source, no penalty. Jobs 2-4: 2 active, 10us
        // each. Total busy = 4us service + 30us penalty.
        assert_eq!(s.busy_until(), SimTime::from_micros(34));
        assert_eq!(s.penalty_total(), SimDur::from_micros(30));

        // A single source never pays, regardless of job count.
        let mut s2 = SwitchingServer::new(SimDur::from_micros(20));
        for _ in 0..4u64 {
            s2.serve_from(7, SimTime::ZERO, SimDur::from_micros(1));
        }
        assert_eq!(s2.penalty_total(), SimDur::ZERO);
        assert_eq!(s2.busy_until(), SimTime::from_micros(4));
    }

    #[test]
    fn switching_penalty_is_call_order_independent() {
        // Batched call order charges the same total penalty as strict
        // alternation — the penalty depends on concurrency, not on the
        // incidental interleaving of bookkeeping calls.
        let mut alternating = SwitchingServer::new(SimDur::from_micros(20));
        for i in 0..8u64 {
            alternating.serve_from(i % 2, SimTime::ZERO, SimDur::from_micros(1));
        }
        let mut batched = SwitchingServer::new(SimDur::from_micros(20));
        // Source 0 appears once, then source 1 floods, then 0 again.
        let order = [0u64, 1, 1, 1, 0, 0, 0, 1];
        for &src in &order {
            batched.serve_from(src, SimTime::ZERO, SimDur::from_micros(1));
        }
        assert_eq!(alternating.penalty_total(), batched.penalty_total());
    }

    #[test]
    fn idle_sources_expire_from_the_activity_window() {
        let mut s = SwitchingServer::new(SimDur::from_micros(20));
        s.serve_from(1, SimTime::ZERO, SimDur::from_micros(1));
        s.serve_from(2, SimTime::ZERO, SimDur::from_micros(1));
        assert_eq!(s.active_sources(), 2);
        // Much later, only the new arrival is active: no penalty.
        let later = SimTime::ZERO + SwitchingServer::ACTIVITY_WINDOW * 3;
        let before = s.penalty_total();
        s.serve_from(3, later, SimDur::from_micros(1));
        assert_eq!(s.active_sources(), 1);
        assert_eq!(s.penalty_total(), before);
    }

    #[test]
    fn reset_returns_to_idle() {
        let mut s = FifoServer::new();
        s.serve(SimTime::ZERO, SimDur::from_secs(1));
        s.reset();
        assert_eq!(s.busy_until(), SimTime::ZERO);
        assert_eq!(s.jobs(), 0);
    }
}
