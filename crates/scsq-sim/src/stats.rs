//! Measurement statistics: online mean/variance and labeled series.
//!
//! The paper performs each experiment five times "to achieve low variance
//! in the measurements"; [`RunningStats`] implements Welford's online
//! algorithm so harness code can report mean and standard deviation, and
//! [`Series`] collects (x, y) points for figure regeneration.

use std::fmt;

/// Online mean / variance / extrema accumulator (Welford's algorithm).
///
/// ```
/// use scsq_sim::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; zero for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n); zero for fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n-1); zero for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4}",
            self.n,
            self.mean(),
            self.sample_std_dev()
        )
    }
}

/// A labeled series of (x, y) points — one plotted line of a figure.
///
/// ```
/// use scsq_sim::Series;
/// let mut s = Series::new("double buffering");
/// s.push(1000.0, 158.7);
/// assert_eq!(s.points().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
    /// Per-point sample standard deviation over the repetitions that
    /// produced the y value (zero when unrecorded or from one rep).
    devs: Vec<f64>,
}

impl Series {
    /// Creates an empty series with a display label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
            devs: Vec::new(),
        }
    }

    /// The display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point with no recorded spread.
    pub fn push(&mut self, x: f64, y: f64) {
        self.push_with_dev(x, y, 0.0);
    }

    /// Appends a point together with the sample standard deviation of
    /// the repetitions behind it.
    pub fn push_with_dev(&mut self, x: f64, y: f64, sd: f64) {
        self.points.push((x, y));
        self.devs.push(sd);
    }

    /// The collected points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The per-point sample standard deviations, parallel to
    /// [`Series::points`].
    pub fn devs(&self) -> &[f64] {
        &self.devs
    }

    /// The y value at a given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// The recorded standard deviation at a given x, if present.
    pub fn dev_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .position(|(px, _)| *px == x)
            .map(|i| self.devs[i])
    }

    /// The (x, y) pair with the largest y; `None` when empty.
    pub fn peak(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Renders the series as CSV rows `label,x,y,sd`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for ((x, y), sd) in self.points.iter().zip(&self.devs) {
            out.push_str(&format!("{},{},{},{}\n", self.label, x, y, sd));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_benign() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (1..=100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn series_peak_and_lookup() {
        let mut s = Series::new("q5");
        s.push(1.0, 350.0);
        s.push(4.0, 920.0);
        s.push(5.0, 700.0);
        assert_eq!(s.peak(), Some((4.0, 920.0)));
        assert_eq!(s.y_at(5.0), Some(700.0));
        assert_eq!(s.y_at(9.0), None);
    }

    #[test]
    fn series_csv_rendering() {
        let mut s = Series::new("p2p");
        s.push(1000.0, 100.0);
        s.push_with_dev(2000.0, 90.0, 1.5);
        assert_eq!(s.to_csv(), "p2p,1000,100,0\np2p,2000,90,1.5\n");
        assert_eq!(s.dev_at(2000.0), Some(1.5));
        assert_eq!(s.dev_at(1000.0), Some(0.0));
    }
}
