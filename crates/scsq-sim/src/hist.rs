//! Log-bucketed latency histograms.
//!
//! [`LatencyHistogram`] is the fixed-size, allocation-free distribution
//! used by the observability layer to summarise ingress→egress element
//! latencies in simulated time. Buckets are powers of two in
//! nanoseconds, so recording is a couple of integer instructions and
//! the whole histogram is `Copy`. Histograms merge bucket-wise, which
//! is order-independent: merging per-run histograms from a parallel
//! sweep yields the same aggregate regardless of completion order, so
//! deterministic pipelines stay deterministic.

/// Number of power-of-two buckets. Bucket 0 holds exact zeros; bucket
/// `i` (for `1 <= i < 63`) holds values in `[2^(i-1), 2^i)`; bucket 63
/// holds everything from `2^62` up.
pub const LATENCY_BUCKETS: usize = 64;

/// A fixed-size log₂-bucketed histogram of nanosecond values.
///
/// ```
/// use scsq_sim::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for v in [100, 200, 400, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 800);
/// assert!(h.quantile(0.5) >= 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    const fn bucket_index(nanos: u64) -> usize {
        if nanos == 0 {
            0
        } else {
            let idx = 64 - nanos.leading_zeros() as usize;
            if idx > 63 {
                63
            } else {
                idx
            }
        }
    }

    /// The inclusive upper bound of bucket `i` (the value reported for
    /// quantiles landing in that bucket), clamped to the observed max.
    fn bucket_upper(&self, i: usize) -> u64 {
        let hi = if i == 0 {
            0
        } else if i >= 63 {
            self.max
        } else {
            (1u64 << i) - 1
        };
        hi.min(self.max)
    }

    /// Records one value.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        if nanos > self.max {
            self.max = nanos;
        }
    }

    /// Merges another histogram into this one (bucket-wise addition;
    /// order-independent).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of recorded values.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub const fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the rank-`ceil(q·count)` sample, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    ///
    /// The result is a conservative (upper-bound) estimate with at most
    /// one power of two of error — exactly reproducible across runs and
    /// executor tiers because it depends only on the bucket counts.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_upper(i);
            }
        }
        self.max
    }

    /// The raw bucket counts (for probing and serialisation).
    pub const fn bucket_counts(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Walks the histogram through a coalescing state probe. In a
    /// steady phase every bucket count, the total and the sum advance
    /// by a constant per period (recorded latencies repeat), so they
    /// extrapolate; a drifting max simply blocks the jump via a delta
    /// mismatch.
    pub fn probe(&mut self, p: &mut crate::coalesce::StateProbe<'_>) {
        for b in self.buckets.iter_mut() {
            p.num(b);
        }
        p.num(&mut self.count);
        p.num(&mut self.sum);
        p.num(&mut self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(1023), 10);
        assert_eq!(LatencyHistogram::bucket_index(1024), 11);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        // p50 of 1..=1000 is 500; the bucket upper bound for 500 is 511.
        assert_eq!(h.quantile(0.5), 511);
        // p99 sample is 990; bucket upper bound is 1023, clamped to max.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(0.0), h.quantile(0.001));
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [5u64, 80, 3_000, 12] {
            a.record(v);
        }
        for v in [900u64, 2, 2, 70_000] {
            b.record(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 8);
        assert_eq!(ab.max(), 70_000);
        assert_eq!(ab.sum(), a.sum() + b.sum());
    }

    #[test]
    fn quantile_upper_bound_never_exceeds_max() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.record(6);
        // Both live in bucket [4, 8); upper bound 7 clamps to max 6.
        assert_eq!(h.quantile(0.5), 6);
        assert_eq!(h.quantile(1.0), 6);
    }
}
