//! Simulation time: instants ([`SimTime`]) and durations ([`SimDur`]).
//!
//! Time is kept in integer nanoseconds so that event ordering is exact and
//! runs are reproducible; floating point only appears at the measurement
//! boundary (converting to seconds for bandwidth computation).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since the start of
/// the run.
///
/// ```
/// use scsq_sim::{SimTime, SimDur};
/// let t = SimTime::from_micros(3) + SimDur::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// ```
/// use scsq_sim::SimDur;
/// assert_eq!(SimDur::from_micros(2) * 3, SimDur::from_nanos(6_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after the start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after the start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after the start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDur {
        assert!(
            self >= earlier,
            "SimTime::since: {earlier:?} is later than {self:?}"
        );
        SimDur(self.0 - earlier.0)
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDur {
    /// The zero-length duration.
    pub const ZERO: SimDur = SimDur(0);

    /// A duration of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }

    /// A duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDur(us * 1_000)
    }

    /// A duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDur(ms * 1_000_000)
    }

    /// A duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDur(s * 1_000_000_000)
    }

    /// A duration of `s` seconds, rounded to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDur((s * 1e9).round() as u64)
    }

    /// The length of this duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The length of this duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time to move `bytes` bytes through a pipe of `bytes_per_sec`
    /// capacity. This is the workhorse conversion for all link models.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0,
            "bandwidth must be positive: {bytes_per_sec}"
        );
        SimDur::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Saturating subtraction; clamps at zero.
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}

impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0 * rhs)
    }
}

impl Mul<f64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: f64) -> SimDur {
        assert!(rhs.is_finite() && rhs >= 0.0, "invalid scale factor: {rhs}");
        SimDur((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        iter.fold(SimDur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDur::from_secs(2), SimDur::from_millis(2_000));
    }

    #[test]
    fn for_bytes_matches_manual_computation() {
        // 1000 bytes at 1 GB/s is 1 microsecond.
        assert_eq!(SimDur::for_bytes(1_000, 1e9), SimDur::from_micros(1));
        // 3 MB at 125 MB/s (1 Gbps) is 24 ms.
        assert_eq!(SimDur::for_bytes(3_000_000, 125e6), SimDur::from_millis(24));
    }

    #[test]
    fn since_computes_elapsed() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(25);
        assert_eq!(b.since(a), SimDur::from_micros(15));
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn since_panics_on_negative_elapsed() {
        SimTime::from_micros(1).since(SimTime::from_micros(2));
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(SimDur::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDur::from_micros(5).to_string(), "5.00us");
        assert_eq!(SimDur::from_millis(5).to_string(), "5.00ms");
        assert_eq!(SimDur::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            SimDur::from_nanos(5).saturating_sub(SimDur::from_nanos(10)),
            SimDur::ZERO
        );
    }
}
