//! Deterministic pseudo-random numbers for the simulator.
//!
//! All stochastic model inputs (jitter, the paper's five-repetition
//! protocol) flow through [`SplitMix64`], a tiny, well-mixed generator
//! with a 64-bit state. Seeding is explicit everywhere so experiment runs
//! are exactly reproducible.

/// SplitMix64 pseudo-random number generator (Steele, Lea & Flood 2014).
///
/// ```
/// use scsq_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The current internal state — lets callers fingerprint the
    /// generator (e.g. a coalescing probe treating it as opaque shape).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of a double.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (slightly biased for huge
        // bounds, irrelevant for simulation jitter).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A multiplicative jitter factor in `[1 - amp, 1 + amp]`.
    ///
    /// Used to reproduce the paper's run-to-run variance across its five
    /// repetitions.
    ///
    /// # Panics
    ///
    /// Panics if `amp` is not in `[0, 1)`.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        assert!((0.0..1.0).contains(&amp), "amplitude must be in [0,1)");
        1.0 + amp * (2.0 * self.next_f64() - 1.0)
    }

    /// Derives an independent generator for a labeled subsystem.
    pub fn fork(&mut self, label: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ label.rotate_left(17))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let j = r.jitter(0.05);
            assert!((0.95..=1.05).contains(&j));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = SplitMix64::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn forked_generators_are_independent_streams() {
        let mut root = SplitMix64::new(1234);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
