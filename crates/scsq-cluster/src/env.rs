//! The live hardware environment: networks, CPUs, I/O nodes, CNDBs.
//!
//! [`Environment`] owns one instance of every contended resource in the
//! paper's Figure 1 dataflow and exposes the timing primitives the stream
//! carriers ([`scsq_transport`](../scsq_transport/index.html)) compose:
//! marshal/demarshal CPU time, torus MPI transmission, and the
//! cross-cluster TCP path (Ethernet → I/O node → tree network).
//!
//! The I/O-node forwarding step implements the two coordination penalties
//! calibrated in [`HardwareSpec`]: a per-I/O-node stream-count factor and
//! a global external-host factor. Inbound flows must be registered via
//! [`Environment::register_inbound`] so these counts are known.

use crate::cndb::{AllocSeq, Cndb, CndbError};
use crate::ids::{ClusterName, NodeId, NodeKind};
use crate::specs::HardwareSpec;
use scsq_net::torus::TransmitOutcome;
use scsq_net::{Ethernet, FlowId, TorusDims, TorusNet, TreeNet};
use scsq_sim::{FifoServer, SimDur, SimTime, SplitMix64, SwitchingServer};
use std::collections::HashMap;

/// Which stream carrier a buffer traveled on; the receiving compute
/// node's de-marshal cost depends on it (torus DMA vs CIOD-proxied TCP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CarrierClass {
    /// MPI over the torus (intra-BlueGene).
    Mpi,
    /// TCP between clusters.
    Tcp,
}

/// Timeline of a cross-cluster (TCP) segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpOutcome {
    /// When the sending NIC released the segment (send buffer reusable).
    pub sent: SimTime,
    /// When the segment was fully delivered at the receiving node
    /// (before de-marshaling).
    pub delivered: SimTime,
}

/// The heterogeneous hardware environment of the paper's Figure 1.
#[derive(Debug)]
pub struct Environment {
    spec: HardwareSpec,
    torus: TorusNet,
    tree: TreeNet,
    ether: Ethernet,
    /// Marshal CPU per BlueGene compute node (the "compute" core).
    cn_tx: Vec<FifoServer>,
    /// De-marshal CPU per BlueGene compute node, with per-flow switch
    /// penalty (single-threaded CNK alternating between input streams).
    cn_rx: Vec<SwitchingServer>,
    /// Marshal CPU per Linux node (front-end then back-end, see
    /// `linux_slot`).
    linux_tx: Vec<FifoServer>,
    /// De-marshal CPU per Linux node.
    linux_rx: Vec<FifoServer>,
    /// Forwarding processor of each I/O node (CIOD).
    io_forward: Vec<FifoServer>,
    /// CNDB per cluster.
    cndbs: HashMap<ClusterName, Cndb>,
    /// Registered inbound flows: flow → (external ether host, pset).
    inbound: HashMap<FlowId, (usize, usize)>,
    /// Inbound flow count per I/O node (indexed by pset).
    io_streams: Vec<usize>,
    /// Refcount of inbound flows per external host.
    host_flows: HashMap<usize, usize>,
    /// BlueGene rank → pset: the tree next-hop table (which I/O node
    /// carries a compute node's inter-cluster traffic), precomputed at
    /// construction so the per-message path does no spec arithmetic.
    pset_of_rank: Vec<usize>,
    /// pset → Ethernet host of its I/O node (the Ethernet next-hop
    /// table).
    io_host_of_pset: Vec<usize>,
    /// Multiplicative service-time jitter amplitude for every CPU-side
    /// service (generate, marshal, compute, de-marshal); 0 = exact.
    service_jitter: f64,
    /// Deterministic factor stream for the jitter draws.
    jitter_rng: SplitMix64,
    /// Number of factors drawn from `jitter_rng` since construction or
    /// the last [`Environment::set_service_jitter`]. Part of the
    /// determinism contract: every executor tier must consume the same
    /// stream positions, and this counter is how tests and perfstat
    /// verify it. Derived from the RNG state, so never probed.
    jitter_draws: u64,
    /// One-entry service memo for the marshal path (streams send runs of
    /// equal-sized buffers, so the division in `SimDur::for_bytes`
    /// almost always repeats verbatim).
    marshal_memo: SvcMemo,
    /// One-entry service memo for the de-marshal path.
    demarshal_memo: SvcMemo,
}

/// A one-entry `(bytes, rate) → SimDur::for_bytes(bytes, rate)` memo.
/// Pure derived data: never probed, never observable — a hit returns
/// exactly what the recomputation would.
#[derive(Debug, Clone, Copy, Default)]
struct SvcMemo {
    bytes: u64,
    rate: f64,
    service: SimDur,
}

impl SvcMemo {
    fn get(&mut self, bytes: u64, rate: f64) -> SimDur {
        if self.bytes != bytes || self.rate != rate {
            *self = SvcMemo {
                bytes,
                rate,
                service: SimDur::for_bytes(bytes, rate),
            };
        }
        self.service
    }
}

/// Seed of the service-jitter factor stream. Fixed so two runs with the
/// same options see the same jitter sequence (reproducibility), distinct
/// from the hardware-jitter seeds used by the bench harness.
const JITTER_SEED: u64 = 0x5c5a_917e_0b5e_ed01;

impl Environment {
    /// Builds an idle environment from a hardware specification.
    pub fn new(spec: HardwareSpec) -> Self {
        let dims = TorusDims::new(spec.torus_x, spec.torus_y, spec.torus_z);
        let cn_count = spec.bg_compute_nodes();
        let psets = spec.psets();
        let linux_count = spec.front_end_nodes + spec.back_end_nodes;
        // Ethernet host layout: [front-end | back-end | I/O nodes].
        let ether_hosts = linux_count + psets;

        let bg_kinds = (0..cn_count)
            .map(|rank| NodeKind::BgCompute {
                pset: spec.pset_of(rank),
            })
            .collect();
        let fe_kinds = (0..spec.front_end_nodes)
            .map(|i| NodeKind::Linux { ether_host: i })
            .collect();
        let be_kinds = (0..spec.back_end_nodes)
            .map(|i| NodeKind::Linux {
                ether_host: spec.front_end_nodes + i,
            })
            .collect();

        let mut cndbs = HashMap::new();
        cndbs.insert(
            ClusterName::BlueGene,
            Cndb::new(ClusterName::BlueGene, bg_kinds, psets, spec.pset_size),
        );
        cndbs.insert(
            ClusterName::FrontEnd,
            Cndb::new(ClusterName::FrontEnd, fe_kinds, 0, 0),
        );
        cndbs.insert(
            ClusterName::BackEnd,
            Cndb::new(ClusterName::BackEnd, be_kinds, 0, 0),
        );

        Environment {
            torus: TorusNet::new(dims, spec.torus.clone()),
            tree: TreeNet::new(psets, spec.tree.clone()),
            ether: Ethernet::new(ether_hosts, spec.ether.clone()),
            cn_tx: vec![FifoServer::new(); cn_count],
            cn_rx: (0..cn_count)
                .map(|_| SwitchingServer::new(spec.cn_recv_switch))
                .collect(),
            linux_tx: vec![FifoServer::new(); linux_count],
            linux_rx: vec![FifoServer::new(); linux_count],
            io_forward: vec![FifoServer::new(); psets],
            cndbs,
            inbound: HashMap::new(),
            io_streams: vec![0; psets],
            host_flows: HashMap::new(),
            pset_of_rank: (0..cn_count).map(|rank| spec.pset_of(rank)).collect(),
            io_host_of_pset: (0..psets).map(|p| linux_count + p).collect(),
            service_jitter: 0.0,
            jitter_rng: SplitMix64::new(JITTER_SEED),
            jitter_draws: 0,
            marshal_memo: SvcMemo::default(),
            demarshal_memo: SvcMemo::default(),
            spec,
        }
    }

    /// Enables multiplicative service-time jitter of amplitude `amp` on
    /// every CPU-side service, resetting the factor stream so equal
    /// options give bit-identical runs. Jitter makes every buffer
    /// period unique: each marshal/de-marshal draws a factor, the RNG
    /// state is opaque shape in [`Environment::probe`], and so
    /// train-coalescing provably cannot fire.
    pub fn set_service_jitter(&mut self, amp: f64) {
        assert!((0.0..1.0).contains(&amp), "amplitude must be in [0,1)");
        self.service_jitter = amp;
        self.jitter_rng = SplitMix64::new(JITTER_SEED);
        self.jitter_draws = 0;
    }

    /// The next service-scale factor (exactly 1.0 with jitter off — the
    /// scaling fast paths compare against it).
    fn jitter_factor(&mut self) -> f64 {
        if self.service_jitter > 0.0 {
            self.jitter_draws += 1;
            self.jitter_rng.jitter(self.service_jitter)
        } else {
            1.0
        }
    }

    /// Factors drawn from the jitter stream so far (0 with jitter off).
    /// Equal counts across executor tiers certify that bulk charging
    /// consumed exactly the per-element stream positions.
    pub fn jitter_draws(&self) -> u64 {
        self.jitter_draws
    }

    /// The standard LOFAR configuration ([`HardwareSpec::lofar`]).
    pub fn lofar() -> Self {
        Environment::new(HardwareSpec::lofar())
    }

    /// The hardware specification in effect.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// The CNDB of `cluster`.
    pub fn cndb(&self, cluster: ClusterName) -> &Cndb {
        &self.cndbs[&cluster]
    }

    /// Mutable CNDB access (node selection allocates).
    pub fn cndb_mut(&mut self, cluster: ClusterName) -> &mut Cndb {
        self.cndbs.get_mut(&cluster).expect("cluster exists")
    }

    /// Selects and allocates a node in `cluster` per the allocation
    /// sequence, returning its [`NodeId`].
    ///
    /// # Errors
    ///
    /// Propagates [`CndbError`] when the sequence has no available node.
    pub fn place(&mut self, cluster: ClusterName, seq: &AllocSeq) -> Result<NodeId, CndbError> {
        let index = self.cndb_mut(cluster).select(seq)?;
        Ok(NodeId::new(cluster, index))
    }

    /// The Ethernet host index of a node, if it has a NIC (Linux nodes
    /// do; BlueGene compute nodes do not — they reach Ethernet through
    /// their pset's I/O node).
    pub fn ether_host_of(&self, node: NodeId) -> Option<usize> {
        match node.cluster {
            ClusterName::FrontEnd => Some(node.index),
            ClusterName::BackEnd => Some(self.spec.front_end_nodes + node.index),
            ClusterName::BlueGene => None,
        }
    }

    /// The Ethernet host index of pset `pset`'s I/O node.
    pub fn io_host(&self, pset: usize) -> usize {
        self.io_host_of_pset[pset]
    }

    /// The pset of a BlueGene compute node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a BlueGene node.
    pub fn pset_of(&self, node: NodeId) -> usize {
        assert_eq!(
            node.cluster,
            ClusterName::BlueGene,
            "pset_of called on {node}"
        );
        self.pset_of_rank[node.index]
    }

    // ----- CPU primitives ---------------------------------------------

    /// Charges element-generation CPU time on `node` for `bytes` of
    /// output ready at `ready`; returns when generation completes.
    pub fn generate(&mut self, node: NodeId, bytes: u64, ready: SimTime) -> SimTime {
        let factor = self.jitter_factor();
        self.generate_scaled(node, bytes, ready, factor)
    }

    /// Like [`Environment::generate`], with the service time multiplied
    /// by `factor` — the hook for jittered-service-time workloads (a
    /// factor drawn per element from an RNG makes the production schedule
    /// aperiodic, which provably defeats train coalescing).
    pub fn generate_scaled(
        &mut self,
        node: NodeId,
        bytes: u64,
        ready: SimTime,
        factor: f64,
    ) -> SimTime {
        let (server, rate) = self.tx_server(node, true);
        let service = SimDur::for_bytes(bytes, rate);
        let service = if factor == 1.0 {
            service
        } else {
            service * factor
        };
        server.serve(ready, service).finish
    }

    /// Charges marshaling CPU time (§2.3 step ii) on `node`.
    pub fn marshal(&mut self, node: NodeId, bytes: u64, ready: SimTime) -> SimTime {
        let factor = self.jitter_factor();
        let mut memo = self.marshal_memo;
        let (server, rate) = self.tx_server(node, false);
        let service = memo.get(bytes, rate);
        let service = if factor == 1.0 {
            service
        } else {
            service * factor
        };
        let finish = server.serve(ready, service).finish;
        self.marshal_memo = memo;
        finish
    }

    /// Charges general stream-operator compute time on `node`'s compute
    /// CPU, expressed as `bytes_equiv` bytes of memory traffic (used for
    /// `fft` and other expensive functions in SQEPs).
    pub fn compute(&mut self, node: NodeId, bytes_equiv: u64, ready: SimTime) -> SimTime {
        if bytes_equiv == 0 {
            return ready;
        }
        let factor = self.jitter_factor();
        self.compute_scaled(node, bytes_equiv, ready, factor)
    }

    /// Like [`Environment::compute`], with the service time multiplied
    /// by `factor` — the per-element-processing counterpart of
    /// [`Environment::generate_scaled`] for jittered-service-time
    /// workloads.
    pub fn compute_scaled(
        &mut self,
        node: NodeId,
        bytes_equiv: u64,
        ready: SimTime,
        factor: f64,
    ) -> SimTime {
        if bytes_equiv == 0 {
            return ready;
        }
        let (server, rate) = self.tx_server(node, false);
        let service = SimDur::for_bytes(bytes_equiv, rate);
        let service = if factor == 1.0 {
            service
        } else {
            service * factor
        };
        server.serve(ready, service).finish
    }

    /// Bulk form of [`Environment::compute`]: charges `count` elements
    /// of `bytes_equiv` compute each, all ready at `ready`, in a single
    /// FIFO serve of the summed service time. Because every element of a
    /// delivered batch shares one arrival time, N back-to-back serves
    /// and one serve of the sum produce the same finish time, busy-until
    /// and busy-total — so this is observably identical to the
    /// per-element loop while doing one queue transaction. It draws
    /// exactly `count` jitter factors (the same stream positions the
    /// scalar path consumes) and rounds each element's service
    /// individually before summing, keeping jittered runs byte-identical
    /// across tiers. `bytes_equiv == 0` returns `ready` without drawing,
    /// matching the per-element fast path.
    pub fn compute_bulk(
        &mut self,
        node: NodeId,
        bytes_equiv: u64,
        count: u64,
        ready: SimTime,
    ) -> SimTime {
        if bytes_equiv == 0 || count == 0 {
            return ready;
        }
        // The non-generating tx rate, same selection as `tx_server`.
        let rate = match node.cluster {
            ClusterName::BlueGene => self.spec.cn_marshal.bytes_per_sec(),
            _ => self.spec.linux_marshal.bytes_per_sec(),
        };
        let base = SimDur::for_bytes(bytes_equiv, rate);
        let total = if self.service_jitter == 0.0 {
            // No draws with jitter off, exactly like `count` scalar calls.
            base * count
        } else {
            let mut total = SimDur::ZERO;
            for _ in 0..count {
                let factor = self.jitter_factor();
                total += if factor == 1.0 { base } else { base * factor };
            }
            total
        };
        let (server, _) = self.tx_server(node, false);
        server.serve(ready, total).finish
    }

    /// Per-element form of [`Environment::compute_bulk`] that reports
    /// each element's individual finish time into `out` (cleared first).
    /// Call-for-call identical to `count` successive
    /// [`Environment::compute`] calls at the same `ready` — same serve
    /// sequence, same jitter-draw positions — so a relay that forwards
    /// each survivor at its own compute-finish time stays byte-identical
    /// to the scalar walk while resolving the service rate once.
    /// `bytes_equiv == 0` fills `out` with `ready` without drawing,
    /// matching the per-element fast path.
    pub fn compute_each(
        &mut self,
        node: NodeId,
        bytes_equiv: u64,
        count: u64,
        ready: SimTime,
        out: &mut Vec<SimTime>,
    ) {
        out.clear();
        if bytes_equiv == 0 {
            out.resize(count as usize, ready);
            return;
        }
        let rate = match node.cluster {
            ClusterName::BlueGene => self.spec.cn_marshal.bytes_per_sec(),
            _ => self.spec.linux_marshal.bytes_per_sec(),
        };
        let base = SimDur::for_bytes(bytes_equiv, rate);
        for _ in 0..count {
            let factor = self.jitter_factor();
            let service = if factor == 1.0 { base } else { base * factor };
            let (server, _) = self.tx_server(node, false);
            out.push(server.serve(ready, service).finish);
        }
    }

    /// Charges de-marshaling CPU time (§2.3 step v) on `node` for a
    /// buffer of `flow` received over `carrier`; BlueGene compute nodes
    /// pay a switch penalty when alternating between flows, and TCP
    /// buffers cost far more per byte than MPI ones (CIOD-proxied socket
    /// reads vs torus DMA).
    pub fn demarshal(
        &mut self,
        node: NodeId,
        flow: FlowId,
        bytes: u64,
        ready: SimTime,
        carrier: CarrierClass,
    ) -> SimTime {
        match node.cluster {
            ClusterName::BlueGene => {
                let (rate, switch) = match carrier {
                    // Torus DMA: alternation is penalized at the
                    // co-processor, not on the compute CPU.
                    CarrierClass::Mpi => (self.spec.cn_demarshal_mpi.bytes_per_sec(), SimDur::ZERO),
                    CarrierClass::Tcp => (
                        self.spec.cn_demarshal_tcp.bytes_per_sec(),
                        self.spec.cn_recv_switch,
                    ),
                };
                let factor = self.jitter_factor();
                let service = self.demarshal_memo.get(bytes, rate);
                let service = if factor == 1.0 {
                    service
                } else {
                    service * factor
                };
                self.cn_rx[node.index]
                    .serve_from_with_cost(flow.0, ready, service, switch)
                    .finish
            }
            _ => {
                let factor = self.jitter_factor();
                let slot = self.linux_slot(node);
                let service = self
                    .demarshal_memo
                    .get(bytes, self.spec.linux_demarshal.bytes_per_sec());
                let service = if factor == 1.0 {
                    service
                } else {
                    service * factor
                };
                self.linux_rx[slot].serve(ready, service).finish
            }
        }
    }

    fn tx_server(&mut self, node: NodeId, generating: bool) -> (&mut FifoServer, f64) {
        match node.cluster {
            ClusterName::BlueGene => {
                let rate = if generating {
                    self.spec.cn_generate.bytes_per_sec()
                } else {
                    self.spec.cn_marshal.bytes_per_sec()
                };
                (&mut self.cn_tx[node.index], rate)
            }
            _ => {
                let rate = if generating {
                    self.spec.linux_generate.bytes_per_sec()
                } else {
                    self.spec.linux_marshal.bytes_per_sec()
                };
                let slot = self.linux_slot(node);
                (&mut self.linux_tx[slot], rate)
            }
        }
    }

    fn linux_slot(&self, node: NodeId) -> usize {
        match node.cluster {
            ClusterName::FrontEnd => node.index,
            ClusterName::BackEnd => self.spec.front_end_nodes + node.index,
            ClusterName::BlueGene => unreachable!("BlueGene nodes have no Linux CPU slot"),
        }
    }

    // ----- network primitives -----------------------------------------

    /// Transmits an MPI buffer between two BlueGene compute nodes over
    /// the torus.
    ///
    /// # Panics
    ///
    /// Panics if either node is not a BlueGene compute node.
    pub fn mpi_transmit(
        &mut self,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        ready: SimTime,
    ) -> TransmitOutcome {
        assert_eq!(src.cluster, ClusterName::BlueGene, "MPI src must be bg");
        assert_eq!(dst.cluster, ClusterName::BlueGene, "MPI dst must be bg");
        self.torus
            .transmit(flow, src.index, dst.index, bytes, ready)
    }

    /// Transmits a TCP segment between clusters. Supported paths:
    /// Linux → Linux (Ethernet), Linux → BlueGene compute node (Ethernet
    /// → I/O node → tree), and BlueGene compute node → Linux (tree → I/O
    /// node → Ethernet).
    ///
    /// # Panics
    ///
    /// Panics on a BlueGene → BlueGene pair (those streams use MPI; §2.3:
    /// "MPI is always used inside the BlueGene ... TCP is always used
    /// when communicating between clusters").
    pub fn tcp_transmit(
        &mut self,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        ready: SimTime,
    ) -> TcpOutcome {
        match (src.cluster, dst.cluster) {
            (ClusterName::BlueGene, ClusterName::BlueGene) => {
                panic!("intra-BlueGene streams must use the MPI carrier")
            }
            (_, ClusterName::BlueGene) => {
                // Inbound: sender NIC → switch → I/O node NIC → CIOD
                // forward → tree network → compute node.
                let src_host = self.ether_host_of(src).expect("linux sender has a NIC");
                let pset = self.pset_of(dst);
                let io = self.io_host(pset);
                let e = self.ether.transmit(flow, src_host, io, bytes, ready);
                let fwd = self.io_forward_serve(pset, bytes, e.delivered);
                let delivered = self.tree.transfer(flow, pset, bytes, fwd);
                TcpOutcome {
                    sent: e.sent,
                    delivered,
                }
            }
            (ClusterName::BlueGene, _) => {
                // Outbound: compute node → tree → CIOD → Ethernet.
                let pset = self.pset_of(src);
                let io = self.io_host(pset);
                let dst_host = self.ether_host_of(dst).expect("linux receiver has a NIC");
                let t = self.tree.transfer(flow, pset, bytes, ready);
                let fwd = self.io_forward_serve(pset, bytes, t);
                let e = self.ether.transmit(flow, io, dst_host, bytes, fwd);
                TcpOutcome {
                    sent: t,
                    delivered: e.delivered,
                }
            }
            _ => {
                let src_host = self.ether_host_of(src).expect("linux sender");
                let dst_host = self.ether_host_of(dst).expect("linux receiver");
                if src_host == dst_host {
                    // Loopback between co-located RPs: a kernel memory
                    // copy, no NIC involved.
                    let done = ready + SimDur::from_micros(10) + SimDur::for_bytes(bytes, 2e9);
                    return TcpOutcome {
                        sent: done,
                        delivered: done,
                    };
                }
                let e = self.ether.transmit(flow, src_host, dst_host, bytes, ready);
                TcpOutcome {
                    sent: e.sent,
                    delivered: e.delivered,
                }
            }
        }
    }

    /// Transmits a UDP datagram between clusters. Same path as
    /// [`Environment::tcp_transmit`], but with no flow control: when the
    /// I/O node's forwarding backlog exceeds
    /// [`HardwareSpec::udp_drop_backlog`], the datagram is dropped.
    ///
    /// Returns when the sending NIC released the datagram, and the
    /// delivery time — `None` if it was dropped.
    ///
    /// # Panics
    ///
    /// Panics on a BlueGene → BlueGene pair (intra-BlueGene streams use
    /// MPI).
    pub fn udp_transmit(
        &mut self,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        ready: SimTime,
    ) -> (SimTime, Option<SimTime>) {
        match (src.cluster, dst.cluster) {
            (ClusterName::BlueGene, ClusterName::BlueGene) => {
                panic!("intra-BlueGene streams must use the MPI carrier")
            }
            (_, ClusterName::BlueGene) => {
                let src_host = self.ether_host_of(src).expect("linux sender has a NIC");
                let pset = self.pset_of(dst);
                let io = self.io_host(pset);
                let e = self.ether.transmit(flow, src_host, io, bytes, ready);
                // Bounded forwarder buffer: datagrams arriving into a
                // deep backlog are dropped.
                let backlog_clears = self.io_forward[pset].busy_until();
                if backlog_clears > e.delivered
                    && backlog_clears.since(e.delivered) > self.spec.udp_drop_backlog
                {
                    return (e.sent, None);
                }
                let fwd = self.io_forward_serve(pset, bytes, e.delivered);
                let delivered = self.tree.transfer(flow, pset, bytes, fwd);
                (e.sent, Some(delivered))
            }
            _ => {
                // Paths not involving the I/O nodes behave like TCP
                // minus the flow control (the switch is non-blocking).
                let out = self.tcp_transmit(flow, src, dst, bytes, ready);
                (out.sent, Some(out.delivered))
            }
        }
    }

    fn io_forward_serve(&mut self, pset: usize, bytes: u64, ready: SimTime) -> SimTime {
        let streams = self.io_streams[pset].max(1);
        let hosts = self.host_flows.len().max(1);
        let factor = self.spec.io_stream_factor(streams) * self.spec.io_host_factor(hosts);
        let base = SimDur::for_bytes(bytes, self.spec.io_forward.bytes_per_sec());
        self.io_forward[pset].serve(ready, base * factor).finish
    }

    // ----- inbound flow registration ----------------------------------

    /// Registers an inbound stream (external host → BlueGene) so the
    /// I/O-node coordination penalties see it. Channels crossing into the
    /// BlueGene must call this before their first segment.
    ///
    /// # Panics
    ///
    /// Panics if the flow is already registered.
    pub fn register_inbound(&mut self, flow: FlowId, ext_host: usize, pset: usize) {
        let prev = self.inbound.insert(flow, (ext_host, pset));
        assert!(prev.is_none(), "flow {flow:?} registered twice");
        self.io_streams[pset] += 1;
        *self.host_flows.entry(ext_host).or_insert(0) += 1;
    }

    /// Unregisters an inbound stream (stream end / RP termination).
    /// Unknown flows are ignored (idempotent teardown).
    pub fn unregister_inbound(&mut self, flow: FlowId) {
        if let Some((host, pset)) = self.inbound.remove(&flow) {
            self.io_streams[pset] -= 1;
            if let Some(count) = self.host_flows.get_mut(&host) {
                *count -= 1;
                if *count == 0 {
                    self.host_flows.remove(&host);
                }
            }
        }
    }

    /// Number of registered inbound flows through pset `pset`'s I/O node.
    pub fn inbound_streams(&self, pset: usize) -> usize {
        self.io_streams[pset]
    }

    /// Number of distinct external hosts currently streaming inbound.
    pub fn inbound_hosts(&self) -> usize {
        self.host_flows.len()
    }

    /// Total CPU busy time accumulated on a node (marshal/compute core
    /// plus de-marshal accounting; for Linux nodes this is the whole
    /// node, which may host several RPs).
    pub fn cpu_busy(&self, node: NodeId) -> scsq_sim::SimDur {
        match node.cluster {
            ClusterName::BlueGene => {
                self.cn_tx[node.index].busy_total() + self.cn_rx[node.index].busy_total()
            }
            _ => {
                let slot = self.linux_slot(node);
                self.linux_tx[slot].busy_total() + self.linux_rx[slot].busy_total()
            }
        }
    }

    /// Walks every contended resource through a coalescing probe.
    ///
    /// `udp_active` must be `true` while any UDP carrier is live: it adds
    /// guards on the I/O-node forwarders so a jump can never carry a
    /// backlog across the datagram-drop threshold. Below the threshold
    /// the backlog-ahead-of-now gap (an upper bound on the gap the drop
    /// test sees, since deliveries happen at or after `now`) is capped
    /// strictly below [`HardwareSpec::udp_drop_backlog`]; at or above it
    /// the gap is frozen into the shape, so a steady-drop regime only
    /// jumps when the backlog is perfectly rigid between cuts.
    pub fn probe(&mut self, p: &mut scsq_sim::StateProbe<'_>, now: SimTime, udp_active: bool) {
        // Jitter makes every period unique by construction: the factor
        // stream's state is opaque shape, so any draw between two
        // digests blocks a coalescing jump.
        p.shape(self.service_jitter.to_bits());
        if self.service_jitter > 0.0 {
            p.shape(self.jitter_rng.state());
        }
        self.torus.probe(p, now);
        self.tree.probe(p);
        self.ether.probe(p);
        for s in &mut self.cn_tx {
            s.probe(p);
        }
        for s in &mut self.cn_rx {
            s.probe(p, now);
        }
        for s in &mut self.linux_tx {
            s.probe(p);
        }
        for s in &mut self.linux_rx {
            s.probe(p);
        }
        let drop_gap = self.spec.udp_drop_backlog.as_nanos();
        for s in &mut self.io_forward {
            if udp_active {
                let gap = s.busy_until().as_nanos().saturating_sub(now.as_nanos());
                if gap < drop_gap {
                    p.guard(gap, drop_gap);
                } else {
                    p.shape(gap);
                }
            }
            s.probe(p);
        }
        // Flow registration feeds the coordination factors; it changes
        // only at stream setup/teardown, which must block jumps.
        p.shape(self.inbound.len() as u64);
        let mut flows: Vec<_> = self
            .inbound
            .iter()
            .map(|(f, &(host, pset))| (f.0, host as u64, pset as u64))
            .collect();
        flows.sort_unstable();
        for (f, host, pset) in flows {
            p.shape(f);
            p.shape(host);
            p.shape(pset);
        }
        for n in &self.io_streams {
            p.shape(*n as u64);
        }
        p.shape(self.host_flows.len() as u64);
        let mut hosts: Vec<_> = self
            .host_flows
            .iter()
            .map(|(&h, &c)| (h as u64, c as u64))
            .collect();
        hosts.sort_unstable();
        for (h, c) in hosts {
            p.shape(h);
            p.shape(c);
        }
        // Node allocation is effectively static during a run; the running
        // counts still guard against mid-run placement.
        for name in ClusterName::ALL {
            p.shape(self.cndbs[&name].total_running() as u64);
        }
    }

    /// Read access to the torus (statistics, tests).
    pub fn torus(&self) -> &TorusNet {
        &self.torus
    }

    /// Read access to the Ethernet fabric (statistics, tests).
    pub fn ether(&self) -> &Ethernet {
        &self.ether
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lofar_layout_is_consistent() {
        let env = Environment::lofar();
        assert_eq!(env.cndb(ClusterName::BlueGene).len(), 32);
        assert_eq!(env.cndb(ClusterName::BackEnd).len(), 4);
        assert_eq!(env.cndb(ClusterName::FrontEnd).len(), 2);
        // Hosts: 2 fe + 4 be + 4 io.
        assert_eq!(env.ether().hosts(), 10);
        assert_eq!(env.ether_host_of(NodeId::fe(0)), Some(0));
        assert_eq!(env.ether_host_of(NodeId::be(0)), Some(2));
        assert_eq!(env.ether_host_of(NodeId::bg(0)), None);
        assert_eq!(env.io_host(0), 6);
        assert_eq!(env.io_host(3), 9);
    }

    #[test]
    fn next_hop_tables_match_spec_arithmetic() {
        // The precomputed tree/Ethernet next-hop tables must agree with
        // the spec's defining arithmetic for every rank and pset.
        let env = Environment::lofar();
        let spec = env.spec().clone();
        for rank in 0..spec.bg_compute_nodes() {
            assert_eq!(env.pset_of(NodeId::bg(rank)), spec.pset_of(rank));
        }
        for pset in 0..spec.psets() {
            assert_eq!(
                env.io_host(pset),
                spec.front_end_nodes + spec.back_end_nodes + pset
            );
        }
    }

    #[test]
    fn placement_allocates_through_cndb() {
        let mut env = Environment::lofar();
        let a = env.place(ClusterName::BlueGene, &AllocSeq::Any).unwrap();
        let b = env.place(ClusterName::BlueGene, &AllocSeq::Any).unwrap();
        assert_eq!(a, NodeId::bg(0));
        assert_eq!(b, NodeId::bg(1));
    }

    #[test]
    fn compute_each_matches_successive_computes() {
        // The relay charges a batch with one `compute_each` call; it
        // must be call-for-call identical to n scalar `compute` calls —
        // same serve sequence, same jitter-draw positions — under
        // jitter and without.
        for amp in [0.0, 0.05] {
            let ready = SimTime::from_micros(3);
            let scalar = {
                let mut env = Environment::lofar();
                env.set_service_jitter(amp);
                (0..7)
                    .map(|_| env.compute(NodeId::bg(2), 9, ready))
                    .collect::<Vec<_>>()
            };
            let mut env = Environment::lofar();
            env.set_service_jitter(amp);
            let mut each = Vec::new();
            env.compute_each(NodeId::bg(2), 9, 7, ready, &mut each);
            assert_eq!(each, scalar, "jitter amplitude {amp}");
        }
    }

    #[test]
    fn mpi_transmit_uses_torus() {
        let mut env = Environment::lofar();
        let out = env.mpi_transmit(FlowId(1), NodeId::bg(1), NodeId::bg(0), 4096, SimTime::ZERO);
        assert!(out.delivered > SimTime::ZERO);
        assert_eq!(env.torus().messages(), 1);
    }

    #[test]
    #[should_panic(expected = "MPI src must be bg")]
    fn mpi_rejects_linux_nodes() {
        let mut env = Environment::lofar();
        env.mpi_transmit(FlowId(1), NodeId::be(0), NodeId::bg(0), 4096, SimTime::ZERO);
    }

    #[test]
    fn tcp_inbound_crosses_ether_io_tree() {
        let mut env = Environment::lofar();
        env.register_inbound(FlowId(1), 2, 0);
        let out = env.tcp_transmit(
            FlowId(1),
            NodeId::be(0),
            NodeId::bg(0),
            65_536,
            SimTime::ZERO,
        );
        assert!(out.delivered > out.sent);
        assert_eq!(env.ether().messages(), 1);
    }

    #[test]
    #[should_panic(expected = "must use the MPI carrier")]
    fn tcp_rejects_intra_bg() {
        let mut env = Environment::lofar();
        env.tcp_transmit(FlowId(1), NodeId::bg(0), NodeId::bg(1), 1024, SimTime::ZERO);
    }

    #[test]
    fn inbound_registration_counts_hosts_and_streams() {
        let mut env = Environment::lofar();
        env.register_inbound(FlowId(1), 2, 0);
        env.register_inbound(FlowId(2), 2, 0);
        env.register_inbound(FlowId(3), 3, 1);
        assert_eq!(env.inbound_streams(0), 2);
        assert_eq!(env.inbound_streams(1), 1);
        assert_eq!(env.inbound_hosts(), 2);
        env.unregister_inbound(FlowId(2));
        assert_eq!(env.inbound_streams(0), 1);
        assert_eq!(env.inbound_hosts(), 2, "host 2 still has flow 1");
        env.unregister_inbound(FlowId(1));
        assert_eq!(env.inbound_hosts(), 1, "only host 3 remains");
        env.unregister_inbound(FlowId(3));
        assert_eq!(env.inbound_hosts(), 0);
        // Idempotent teardown.
        env.unregister_inbound(FlowId(3));
        assert_eq!(env.inbound_hosts(), 0);
    }

    #[test]
    fn host_coordination_slows_io_forwarding() {
        // Same segment through the same I/O node, but with more external
        // hosts registered, takes longer — the Query 5 vs Query 6
        // mechanism.
        let mut one_host = Environment::lofar();
        one_host.register_inbound(FlowId(1), 2, 0);
        let a = one_host.tcp_transmit(
            FlowId(1),
            NodeId::be(0),
            NodeId::bg(0),
            65_536,
            SimTime::ZERO,
        );

        let mut four_hosts = Environment::lofar();
        four_hosts.register_inbound(FlowId(1), 2, 0);
        for (i, host) in [(2u64, 3usize), (3, 4), (4, 5)] {
            four_hosts.register_inbound(FlowId(i), host, (i as usize) % 4);
        }
        let b = four_hosts.tcp_transmit(
            FlowId(1),
            NodeId::be(0),
            NodeId::bg(0),
            65_536,
            SimTime::ZERO,
        );
        assert!(b.delivered > a.delivered);
    }

    #[test]
    fn stream_sharing_slows_io_forwarding() {
        let mut shared = Environment::lofar();
        shared.register_inbound(FlowId(1), 2, 0);
        shared.register_inbound(FlowId(2), 2, 0);
        let b = shared.tcp_transmit(
            FlowId(1),
            NodeId::be(0),
            NodeId::bg(0),
            65_536,
            SimTime::ZERO,
        );

        let mut single = Environment::lofar();
        single.register_inbound(FlowId(1), 2, 0);
        let a = single.tcp_transmit(
            FlowId(1),
            NodeId::be(0),
            NodeId::bg(0),
            65_536,
            SimTime::ZERO,
        );
        assert!(b.delivered > a.delivered);
    }

    #[test]
    fn demarshal_switching_penalizes_interleaved_flows_on_cn() {
        let mut env = Environment::lofar();
        let node = NodeId::bg(0);
        // Interleaved flows.
        let mut t_inter = SimTime::ZERO;
        for i in 0..6u64 {
            t_inter = env.demarshal(
                node,
                FlowId(i % 2),
                65_536,
                SimTime::ZERO,
                CarrierClass::Tcp,
            );
        }
        let mut env2 = Environment::lofar();
        let mut t_same = SimTime::ZERO;
        for _ in 0..6u64 {
            t_same = env2.demarshal(node, FlowId(1), 65_536, SimTime::ZERO, CarrierClass::Tcp);
        }
        assert!(t_inter > t_same);
        // MPI de-marshal of the same buffers is far cheaper than TCP.
        let mut env3 = Environment::lofar();
        let mut t_mpi = SimTime::ZERO;
        for _ in 0..6u64 {
            t_mpi = env3.demarshal(node, FlowId(1), 65_536, SimTime::ZERO, CarrierClass::Mpi);
        }
        assert!(t_mpi.as_nanos() < t_same.as_nanos() / 4);
    }

    #[test]
    fn generation_is_charged_on_the_right_cpu() {
        let mut env = Environment::lofar();
        let t1 = env.generate(NodeId::be(1), 3_000_000, SimTime::ZERO);
        // Second generator RP on the same node shares that node's CPU.
        let t2 = env.generate(NodeId::be(1), 3_000_000, SimTime::ZERO);
        // A generator on a different node does not.
        let t3 = env.generate(NodeId::be(2), 3_000_000, SimTime::ZERO);
        assert!(t2 > t1);
        assert_eq!(t3, t1);
    }
}
