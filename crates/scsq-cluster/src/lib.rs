#![warn(missing_docs)]
//! # scsq-cluster — the heterogeneous LOFAR hardware environment
//!
//! §2.1 of the paper describes three clusters joined in one stream
//! dataflow (its Figure 1): a Linux **front-end** cluster where users
//! interact with SCSQ, a Linux **back-end** cluster receiving and
//! pre-processing sensor streams, and a **BlueGene/L** doing the heavy
//! stream computations. This crate builds that environment:
//!
//! * [`ids`] — typed identities for clusters and nodes.
//! * [`specs`] — every calibrated hardware constant, each documented with
//!   the paper sentence that motivates it.
//! * [`cndb`] — the per-cluster *compute node database* (§2.2) holding
//!   node properties and status, with the allocation-sequence queries the
//!   paper uses (`urr`, `inPset`, `psetrr`, explicit node ids).
//! * [`mod@env`] — the live [`env::Environment`]: torus + tree + Ethernet
//!   instances, per-node CPUs, I/O-node forwarding with the coordination
//!   penalties behind the paper's Fig 15 observations.

pub mod cndb;
pub mod env;
pub mod ids;
pub mod specs;

pub use cndb::{AllocSeq, Cndb, CndbError, NodeEntry};
pub use env::{CarrierClass, Environment, TcpOutcome};
pub use ids::{ClusterName, NodeId, NodeKind};
pub use specs::HardwareSpec;
