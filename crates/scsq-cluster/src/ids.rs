//! Typed identities for clusters and compute nodes.

use std::fmt;
use std::str::FromStr;

/// One of the three clusters of the LOFAR environment (paper Fig 1).
///
/// SCSQL refers to clusters by the short names used in the paper's
/// queries: `'fe'`, `'be'`, and `'bg'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClusterName {
    /// The Linux front-end cluster (client manager, post-processing).
    FrontEnd,
    /// The Linux back-end cluster (stream reception, pre-processing).
    BackEnd,
    /// The BlueGene (compute nodes + I/O nodes).
    BlueGene,
}

impl ClusterName {
    /// All clusters, in Fig 1 dataflow order.
    pub const ALL: [ClusterName; 3] = [
        ClusterName::FrontEnd,
        ClusterName::BackEnd,
        ClusterName::BlueGene,
    ];

    /// The short name used in SCSQL queries (`"fe"`, `"be"`, `"bg"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ClusterName::FrontEnd => "fe",
            ClusterName::BackEnd => "be",
            ClusterName::BlueGene => "bg",
        }
    }
}

/// Error returned when parsing a cluster name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseClusterError(pub String);

impl fmt::Display for ParseClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown cluster name `{}` (expected fe, be, or bg)",
            self.0
        )
    }
}

impl std::error::Error for ParseClusterError {}

impl FromStr for ClusterName {
    type Err = ParseClusterError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fe" => Ok(ClusterName::FrontEnd),
            "be" => Ok(ClusterName::BackEnd),
            "bg" => Ok(ClusterName::BlueGene),
            other => Err(ParseClusterError(other.to_string())),
        }
    }
}

impl fmt::Display for ClusterName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A node within a specific cluster. `index` is the node number SCSQL
/// allocation sequences use (e.g. the explicit `0` and `1` in the
/// intra-BG queries of §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// The owning cluster.
    pub cluster: ClusterName,
    /// Node number within the cluster (for BlueGene compute nodes this is
    /// the torus rank).
    pub index: usize,
}

impl NodeId {
    /// Convenience constructor.
    pub fn new(cluster: ClusterName, index: usize) -> Self {
        NodeId { cluster, index }
    }

    /// A BlueGene compute node by torus rank.
    pub fn bg(index: usize) -> Self {
        NodeId::new(ClusterName::BlueGene, index)
    }

    /// A back-end cluster node.
    pub fn be(index: usize) -> Self {
        NodeId::new(ClusterName::BackEnd, index)
    }

    /// A front-end cluster node.
    pub fn fe(index: usize) -> Self {
        NodeId::new(ClusterName::FrontEnd, index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.cluster, self.index)
    }
}

/// What kind of hardware a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// BlueGene compute node: runs the CNK, accepts exactly one RP
    /// (§2.2: "BlueGene compute nodes can execute only one process"),
    /// communicates over the torus, reached from outside through its
    /// pset's I/O node.
    BgCompute {
        /// The pset (0-based) this node belongs to.
        pset: usize,
    },
    /// BlueGene I/O node: "I/O nodes are only used for communication,
    /// and cannot be used for computations" (§2.1).
    BgIo {
        /// The pset (0-based) this I/O node serves.
        pset: usize,
        /// Host index on the Ethernet fabric.
        ether_host: usize,
    },
    /// A Linux cluster node (front-end or back-end JS20).
    Linux {
        /// Host index on the Ethernet fabric.
        ether_host: usize,
    },
}

impl NodeKind {
    /// Whether RPs may be placed on this node.
    pub fn schedulable(self) -> bool {
        !matches!(self, NodeKind::BgIo { .. })
    }

    /// Maximum concurrent RPs: one for a CNK compute node, effectively
    /// unbounded for Linux nodes.
    pub fn capacity(self) -> usize {
        match self {
            NodeKind::BgCompute { .. } => 1,
            NodeKind::BgIo { .. } => 0,
            NodeKind::Linux { .. } => usize::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_names_round_trip() {
        for c in ClusterName::ALL {
            assert_eq!(c.as_str().parse::<ClusterName>().unwrap(), c);
        }
    }

    #[test]
    fn unknown_cluster_is_an_error() {
        let err = "xy".parse::<ClusterName>().unwrap_err();
        assert!(err.to_string().contains("xy"));
    }

    #[test]
    fn node_display_is_cluster_qualified() {
        assert_eq!(NodeId::bg(3).to_string(), "bg:3");
        assert_eq!(NodeId::be(1).to_string(), "be:1");
    }

    #[test]
    fn capacities_match_cnk_semantics() {
        assert_eq!(NodeKind::BgCompute { pset: 0 }.capacity(), 1);
        assert_eq!(
            NodeKind::BgIo {
                pset: 0,
                ether_host: 0
            }
            .capacity(),
            0
        );
        assert!(NodeKind::Linux { ether_host: 0 }.capacity() > 1000);
        assert!(!NodeKind::BgIo {
            pset: 0,
            ether_host: 0
        }
        .schedulable());
    }
}
