//! Calibrated hardware constants for the LOFAR environment.
//!
//! Every constant is annotated with the paper statement that motivates
//! it. Absolute values are calibrated so the reproduction matches the
//! *shape* of the paper's three result figures (who wins, where the
//! crossovers and peaks fall), not the authors' exact testbed numbers;
//! `EXPERIMENTS.md` discusses the calibration in detail.

use scsq_net::{Bandwidth, EtherParams, TorusParams, TreeParams};
use scsq_sim::SimDur;

/// The complete constant set for one [`crate::Environment`].
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareSpec {
    /// BlueGene partition shape: X extent of the torus.
    pub torus_x: usize,
    /// BlueGene partition shape: Y extent of the torus.
    pub torus_y: usize,
    /// BlueGene partition shape: Z extent of the torus.
    pub torus_z: usize,
    /// Compute nodes per pset; §2.1: "processing sets of 8 compute nodes
    /// and one I/O node".
    pub pset_size: usize,
    /// Number of back-end Linux nodes; §5: "we have only four ... nodes
    /// in the back-end cluster".
    pub back_end_nodes: usize,
    /// Number of front-end Linux nodes.
    pub front_end_nodes: usize,

    /// Torus model constants (1.4 Gbps links, co-processor behaviour).
    pub torus: TorusParams,
    /// Tree network constants (2.8 Gbps per pset channel).
    pub tree: TreeParams,
    /// Gigabit Ethernet constants. The per-segment overhead is tuned so a
    /// single saturated NIC delivers ≈920 Mbps, the peak the paper
    /// reports for Query 5.
    pub ether: EtherParams,

    /// Rate at which a BlueGene compute node's *compute* CPU marshals
    /// objects into send buffers (the co-processor does the injection;
    /// §2.1: "one is used for computation and the other one for
    /// communication").
    pub cn_marshal: Bandwidth,
    /// Rate at which a compute node de-marshals buffers received over
    /// **MPI** (§2.3 step v): torus DMA lands data in local memory, so
    /// materialization is a fast copy.
    pub cn_demarshal_mpi: Bandwidth,
    /// Rate at which a compute node de-marshals buffers received over
    /// **TCP** through its I/O node: socket reads proxied by CIOD plus
    /// object materialization. This is the Query 1 bottleneck: a single
    /// 700 MHz PPC440 materializing a ~1 Gbps TCP stream cannot keep up.
    pub cn_demarshal_tcp: Bandwidth,
    /// Extra cost when a compute node's de-marshaler alternates between
    /// **TCP** buffers of different input flows (CIOD-proxied socket
    /// switching on the single-threaded CNK). MPI flow alternation is
    /// already penalized at the communication co-processor
    /// ([`scsq_net::TorusParams::switch_cost`]), not here.
    pub cn_recv_switch: SimDur,
    /// Rate at which a compute node generates stream elements.
    /// `gen_array` is a synthetic driver source — its arrays are not
    /// computed, so the rate is set near memory speed ("we are primarily
    /// interested in communication performance", §3).
    pub cn_generate: Bandwidth,

    /// Linux (JS20, dual PPC970 2.2 GHz) marshal rate.
    pub linux_marshal: Bandwidth,
    /// Linux de-marshal rate.
    pub linux_demarshal: Bandwidth,
    /// Linux element generation rate.
    pub linux_generate: Bandwidth,

    /// Base store-and-forward rate of an I/O node relaying external TCP
    /// traffic onto the tree network (CIOD proxying). Calibrated to the
    /// single-I/O-node plateau of Queries 3/4 (~450 Mbps).
    pub io_forward: Bandwidth,
    /// Per-additional-stream coordination coefficient at one I/O node:
    /// the forward service is scaled by `1 + c·(streams-1)^p`. This is
    /// what produces the Query 5 dip at n=5 ("compute nodes have to share
    /// I/O nodes and therefore the bandwidth decreases", §3.2 obs. 5).
    pub io_stream_coeff: f64,
    /// Exponent `p` of the stream coordination term (sub-linear so a
    /// single I/O node can still serve the many streams of Query 3).
    pub io_stream_pow: f64,
    /// Per-additional-external-host coordination coefficient, applied to
    /// every I/O node's forward service as `1 + c·(hosts-1)` where
    /// `hosts` counts distinct external machines currently streaming into
    /// the partition. Models §3.2 obs. 3/4: "coordination problems in the
    /// I/O node when communicating with many outside nodes" — why Query 1
    /// beats Query 2 and Query 5 beats Query 6.
    pub io_host_coeff: f64,

    /// TCP segment size used by the stream carrier between clusters
    /// (§3.2: "we rely on the buffering of the TCP stack").
    pub tcp_segment: u64,
    /// UDP datagram payload size (jumbo frames, as on LOFAR's links).
    /// §2.1: the I/O nodes "provide TCP or UDP".
    pub udp_segment: u64,
    /// How much backlog an I/O node tolerates before dropping UDP
    /// datagrams (no flow control: senders overrun slow forwarders).
    pub udp_drop_backlog: SimDur,
}

impl HardwareSpec {
    /// The LOFAR configuration used throughout the paper's evaluation:
    /// a 32-node BlueGene partition (4×4×2 torus, 4 psets, 4 I/O nodes —
    /// §3.2 obs. 5: "there were only four I/O nodes available on the
    /// BlueGene partition"), four back-end nodes and two front-end nodes.
    pub fn lofar() -> Self {
        HardwareSpec {
            torus_x: 4,
            torus_y: 4,
            torus_z: 2,
            pset_size: 8,
            back_end_nodes: 4,
            front_end_nodes: 2,
            torus: TorusParams::default(),
            tree: TreeParams::default(),
            ether: EtherParams {
                nic: Bandwidth::from_gbps(1.0),
                latency: SimDur::from_micros(50),
                per_msg_overhead: SimDur::from_micros(45),
            },
            cn_marshal: Bandwidth::from_mbytes_per_sec(400.0),
            cn_demarshal_mpi: Bandwidth::from_mbytes_per_sec(280.0),
            cn_demarshal_tcp: Bandwidth::from_mbps(250.0),
            cn_recv_switch: SimDur::from_micros(600),
            cn_generate: Bandwidth::from_mbytes_per_sec(4000.0),
            linux_marshal: Bandwidth::from_mbytes_per_sec(800.0),
            linux_demarshal: Bandwidth::from_mbytes_per_sec(600.0),
            linux_generate: Bandwidth::from_mbytes_per_sec(4000.0),
            io_forward: Bandwidth::from_mbps(450.0),
            io_stream_coeff: 0.5,
            io_stream_pow: 0.75,
            io_host_coeff: 0.5,
            tcp_segment: 65_536,
            udp_segment: 8_192,
            udp_drop_backlog: SimDur::from_millis(20),
        }
    }

    /// A copy of this spec with its service rates perturbed by up to
    /// ±`amp` (multiplicatively), deterministically from `seed`.
    ///
    /// The paper performs each experiment five times "to achieve low
    /// variance in the measurements"; benchmarks reproduce that protocol
    /// by running each point under several jittered specs and averaging.
    ///
    /// # Panics
    ///
    /// Panics if `amp` is not in `[0, 1)`.
    pub fn jittered(&self, seed: u64, amp: f64) -> HardwareSpec {
        use scsq_sim::SplitMix64;
        let mut rng = SplitMix64::new(seed);
        let mut spec = self.clone();
        let mut j = |b: &mut Bandwidth| {
            *b = b.scaled(rng.jitter(amp));
        };
        j(&mut spec.torus.inject);
        j(&mut spec.torus.receive);
        j(&mut spec.cn_marshal);
        j(&mut spec.cn_demarshal_mpi);
        j(&mut spec.cn_demarshal_tcp);
        j(&mut spec.linux_marshal);
        j(&mut spec.linux_demarshal);
        j(&mut spec.io_forward);
        spec
    }

    /// Number of compute nodes in the BlueGene partition.
    pub fn bg_compute_nodes(&self) -> usize {
        self.torus_x * self.torus_y * self.torus_z
    }

    /// Number of psets (and I/O nodes) in the partition.
    ///
    /// # Panics
    ///
    /// Panics if the compute-node count is not a multiple of the pset
    /// size.
    pub fn psets(&self) -> usize {
        let cn = self.bg_compute_nodes();
        assert!(
            cn.is_multiple_of(self.pset_size),
            "compute nodes ({cn}) must tile into psets of {}",
            self.pset_size
        );
        cn / self.pset_size
    }

    /// The pset of a compute node rank.
    pub fn pset_of(&self, rank: usize) -> usize {
        rank / self.pset_size
    }

    /// I/O-node coordination factor for `streams` concurrent flows
    /// through one I/O node.
    pub fn io_stream_factor(&self, streams: usize) -> f64 {
        if streams <= 1 {
            1.0
        } else {
            1.0 + self.io_stream_coeff * ((streams - 1) as f64).powf(self.io_stream_pow)
        }
    }

    /// I/O-node coordination factor for `hosts` distinct external
    /// machines streaming into the partition.
    pub fn io_host_factor(&self, hosts: usize) -> f64 {
        if hosts <= 1 {
            1.0
        } else {
            1.0 + self.io_host_coeff * (hosts - 1) as f64
        }
    }
}

impl Default for HardwareSpec {
    fn default() -> Self {
        HardwareSpec::lofar()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lofar_partition_shape() {
        let s = HardwareSpec::lofar();
        assert_eq!(s.bg_compute_nodes(), 32);
        assert_eq!(s.psets(), 4);
        assert_eq!(s.pset_of(0), 0);
        assert_eq!(s.pset_of(7), 0);
        assert_eq!(s.pset_of(8), 1);
        assert_eq!(s.pset_of(31), 3);
    }

    #[test]
    fn coordination_factors_are_monotone() {
        let s = HardwareSpec::lofar();
        assert_eq!(s.io_stream_factor(1), 1.0);
        assert_eq!(s.io_host_factor(1), 1.0);
        let mut prev = 0.0;
        for k in 1..=8 {
            let f = s.io_stream_factor(k);
            assert!(f >= prev);
            prev = f;
        }
        assert!(s.io_host_factor(4) > s.io_host_factor(2));
    }

    #[test]
    fn stream_factor_is_sublinear() {
        let s = HardwareSpec::lofar();
        // Sub-linear growth: factor(4) < 2 * factor(2) - 1 would fail for
        // linear; check the power shape directly.
        let f2 = s.io_stream_factor(2) - 1.0;
        let f5 = s.io_stream_factor(5) - 1.0;
        assert!(f5 / f2 < 4.0, "stream penalty must grow sub-linearly");
    }

    #[test]
    fn single_host_single_stream_io_rate_is_450mbps() {
        let s = HardwareSpec::lofar();
        assert!((s.io_forward.as_mbps() - 450.0).abs() < 1e-9);
    }
}
