//! The compute node database (CNDB) and node-selection algorithm.
//!
//! §2.2: "Each cluster coordinator maintains an internal compute node
//! database (CNDB) containing the properties and status of the possibly
//! thousands of compute nodes in its cluster. A node selection algorithm
//! in the cluster coordinator starts the new RP on a suitable compute
//! node by querying its CNDB. Currently, a naïve node selection algorithm
//! is used, returning the next available node."
//!
//! §2.4 adds *allocation sequences*: the user may constrain the allowed
//! nodes with a node allocation query; "the node selection algorithm will
//! choose the first available node in the allocation sequence. (In case
//! the stream contains no available node, the query will fail.)" The
//! allocation-sequence vocabulary used in the paper's experiments is
//! captured by [`AllocSeq`]: explicit node numbers, `urr(cluster)`,
//! `inPset(k)`, and `psetrr()`.

use crate::ids::{ClusterName, NodeId, NodeKind};
use std::fmt;

/// One row of the CNDB: a node's properties and status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    /// The node's identity.
    pub id: NodeId,
    /// Hardware kind (determines capacity and reachability).
    pub kind: NodeKind,
    /// Number of RPs currently running on the node.
    pub running: usize,
}

impl NodeEntry {
    /// Whether another RP may be placed here.
    pub fn available(&self) -> bool {
        self.kind.schedulable() && self.running < self.kind.capacity()
    }
}

/// An allocation sequence: the user-specified constraint on node
/// selection (§2.4), or [`AllocSeq::Any`] for the naïve default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocSeq {
    /// No constraint: the naïve algorithm returns the next available
    /// node in index order.
    Any,
    /// Explicit node numbers in preference order (e.g. the literal `0`
    /// and `1` in the intra-BG queries of §3.1).
    Explicit(Vec<usize>),
    /// `urr(cluster)`: "a stream ... of compute node identifiers where
    /// each identifier represents a new available node in the cluster in
    /// a round-robin fashion" (§3.2, Query 2). Consecutive selections
    /// advance a persistent cursor so parallel SPs land on different
    /// nodes.
    UniformRoundRobin,
    /// `inPset(k)`: "returns a stream of compute node identifiers in
    /// pset number k" (§3.2, Query 3). `k` is 0-based here; SCSQL's
    /// 1-based argument is converted by the engine.
    InPset(usize),
    /// `psetrr()`: "a stream of BlueGene compute node numbers, where each
    /// succeeding node number belongs to a new pset in a round-robin
    /// fashion" (§3.2, Query 5).
    PsetRoundRobin,
}

/// Errors from CNDB queries and node selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CndbError {
    /// The allocation sequence contained no available node; the paper
    /// specifies "the query will fail" in this case.
    NoAvailableNode {
        /// Cluster in which selection was attempted.
        cluster: ClusterName,
        /// The allocation constraint that could not be satisfied.
        seq: AllocSeq,
    },
    /// A node index referenced a row that does not exist.
    UnknownNode {
        /// Cluster searched.
        cluster: ClusterName,
        /// Offending index.
        index: usize,
    },
}

impl fmt::Display for CndbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CndbError::NoAvailableNode { cluster, seq } => write!(
                f,
                "no available node in cluster `{cluster}` for allocation sequence {seq:?}"
            ),
            CndbError::UnknownNode { cluster, index } => {
                write!(f, "node {index} does not exist in cluster `{cluster}`")
            }
        }
    }
}

impl std::error::Error for CndbError {}

/// The compute node database of one cluster coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct Cndb {
    cluster: ClusterName,
    nodes: Vec<NodeEntry>,
    rr_cursor: usize,
    pset_cursor: usize,
    psets: usize,
    pset_size: usize,
}

impl Cndb {
    /// Builds a CNDB for `cluster` whose node `i` has kind `kinds[i]`.
    /// `pset_size` partitions BlueGene compute nodes for `inPset` /
    /// `psetrr` queries; Linux clusters pass 0 psets.
    pub fn new(cluster: ClusterName, kinds: Vec<NodeKind>, psets: usize, pset_size: usize) -> Self {
        let nodes = kinds
            .into_iter()
            .enumerate()
            .map(|(index, kind)| NodeEntry {
                id: NodeId::new(cluster, index),
                kind,
                running: 0,
            })
            .collect();
        Cndb {
            cluster,
            nodes,
            rr_cursor: 0,
            pset_cursor: 0,
            psets,
            pset_size,
        }
    }

    /// The owning cluster.
    pub fn cluster(&self) -> ClusterName {
        self.cluster
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The row for node `index`.
    pub fn node(&self, index: usize) -> Result<&NodeEntry, CndbError> {
        self.nodes.get(index).ok_or(CndbError::UnknownNode {
            cluster: self.cluster,
            index,
        })
    }

    /// Iterates over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &NodeEntry> {
        self.nodes.iter()
    }

    /// Number of RPs currently running in the cluster.
    pub fn total_running(&self) -> usize {
        self.nodes.iter().map(|n| n.running).sum()
    }

    /// Selects a node satisfying `seq`, marks it allocated, and returns
    /// its index. Implements the paper's node-selection algorithm: "the
    /// first available node in the allocation sequence".
    ///
    /// # Errors
    ///
    /// [`CndbError::NoAvailableNode`] when the sequence has no available
    /// node (the paper: "the query will fail").
    pub fn select(&mut self, seq: &AllocSeq) -> Result<usize, CndbError> {
        let chosen = match seq {
            AllocSeq::Any => self.first_available(0..self.nodes.len()),
            AllocSeq::Explicit(order) => order
                .iter()
                .copied()
                .find(|&i| self.nodes.get(i).is_some_and(NodeEntry::available)),
            AllocSeq::UniformRoundRobin => {
                let n = self.nodes.len();
                let found = (0..n)
                    .map(|k| (self.rr_cursor + k) % n)
                    .find(|&i| self.nodes[i].available());
                if let Some(i) = found {
                    self.rr_cursor = (i + 1) % n;
                }
                found
            }
            AllocSeq::InPset(pset) => {
                let lo = pset * self.pset_size;
                let hi = ((pset + 1) * self.pset_size).min(self.nodes.len());
                self.first_available(lo..hi)
            }
            AllocSeq::PsetRoundRobin => {
                let mut found = None;
                for k in 0..self.psets.max(1) {
                    let pset = (self.pset_cursor + k) % self.psets.max(1);
                    let lo = pset * self.pset_size;
                    let hi = ((pset + 1) * self.pset_size).min(self.nodes.len());
                    if let Some(i) = self.first_available(lo..hi) {
                        self.pset_cursor = (pset + 1) % self.psets.max(1);
                        found = Some(i);
                        break;
                    }
                }
                found
            }
        };
        let index = chosen.ok_or_else(|| CndbError::NoAvailableNode {
            cluster: self.cluster,
            seq: seq.clone(),
        })?;
        self.nodes[index].running += 1;
        Ok(index)
    }

    /// Releases one RP slot on node `index` (RP termination, §2.2).
    ///
    /// # Panics
    ///
    /// Panics if the node has no running RP (double release is a runtime
    /// accounting bug).
    pub fn release(&mut self, index: usize) {
        let entry = &mut self.nodes[index];
        assert!(entry.running > 0, "release of idle node {}", entry.id);
        entry.running -= 1;
    }

    fn first_available(&self, range: std::ops::Range<usize>) -> Option<usize> {
        range.into_iter().find(|&i| self.nodes[i].available())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bg_cndb() -> Cndb {
        // 16 compute nodes, psets of 4 → 4 psets.
        let kinds = (0..16)
            .map(|i| NodeKind::BgCompute { pset: i / 4 })
            .collect();
        Cndb::new(ClusterName::BlueGene, kinds, 4, 4)
    }

    fn be_cndb() -> Cndb {
        let kinds = (0..4).map(|i| NodeKind::Linux { ether_host: i }).collect();
        Cndb::new(ClusterName::BackEnd, kinds, 0, 0)
    }

    #[test]
    fn naive_selection_returns_next_available() {
        let mut db = bg_cndb();
        assert_eq!(db.select(&AllocSeq::Any).unwrap(), 0);
        assert_eq!(db.select(&AllocSeq::Any).unwrap(), 1);
        assert_eq!(db.total_running(), 2);
    }

    #[test]
    fn explicit_sequence_takes_first_available() {
        let mut db = bg_cndb();
        assert_eq!(db.select(&AllocSeq::Explicit(vec![5])).unwrap(), 5);
        // Node 5 is now busy (CNK: one RP per node): falls through to 7.
        assert_eq!(db.select(&AllocSeq::Explicit(vec![5, 7])).unwrap(), 7);
    }

    #[test]
    fn explicit_sequence_fails_when_exhausted() {
        let mut db = bg_cndb();
        db.select(&AllocSeq::Explicit(vec![3])).unwrap();
        let err = db.select(&AllocSeq::Explicit(vec![3])).unwrap_err();
        assert!(matches!(err, CndbError::NoAvailableNode { .. }));
        assert!(err.to_string().contains("bg"));
    }

    #[test]
    fn linux_nodes_accept_many_rps() {
        let mut db = be_cndb();
        for _ in 0..100 {
            // Query 1's allocation: every generator on back-end node 1.
            assert_eq!(db.select(&AllocSeq::Explicit(vec![1])).unwrap(), 1);
        }
        assert_eq!(db.total_running(), 100);
    }

    #[test]
    fn urr_spreads_over_distinct_nodes() {
        let mut db = be_cndb();
        let picks: Vec<usize> = (0..6)
            .map(|_| db.select(&AllocSeq::UniformRoundRobin).unwrap())
            .collect();
        // Query 2 semantics: each identifier is a *new* node round-robin.
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn in_pset_confines_selection() {
        let mut db = bg_cndb();
        for expected in 4..8 {
            assert_eq!(db.select(&AllocSeq::InPset(1)).unwrap(), expected);
        }
        // Pset 1 is now full.
        assert!(db.select(&AllocSeq::InPset(1)).is_err());
    }

    #[test]
    fn psetrr_takes_one_node_per_pset() {
        let mut db = bg_cndb();
        let picks: Vec<usize> = (0..6)
            .map(|_| db.select(&AllocSeq::PsetRoundRobin).unwrap())
            .collect();
        // First four land in psets 0..3; the fifth wraps to pset 0's next
        // free node — exactly the paper's n=5 sharing situation.
        assert_eq!(picks, vec![0, 4, 8, 12, 1, 5]);
    }

    #[test]
    fn release_frees_capacity() {
        let mut db = bg_cndb();
        let i = db.select(&AllocSeq::Any).unwrap();
        db.release(i);
        assert_eq!(db.select(&AllocSeq::Explicit(vec![i])).unwrap(), i);
    }

    #[test]
    #[should_panic(expected = "release of idle node")]
    fn double_release_panics() {
        let mut db = bg_cndb();
        db.release(0);
    }

    #[test]
    fn unknown_node_lookup_is_an_error() {
        let db = bg_cndb();
        assert!(matches!(
            db.node(99),
            Err(CndbError::UnknownNode { index: 99, .. })
        ));
        assert!(db.node(3).is_ok());
    }
}
