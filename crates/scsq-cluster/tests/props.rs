//! Property-based tests for the CNDB, node selection, and the
//! environment's accounting.

use proptest::prelude::*;
use scsq_cluster::{AllocSeq, ClusterName, Cndb, Environment, HardwareSpec, NodeId, NodeKind};
use scsq_net::FlowId;
use scsq_sim::SimTime;

fn bg_cndb(nodes: usize, pset_size: usize) -> Cndb {
    let kinds = (0..nodes)
        .map(|i| NodeKind::BgCompute {
            pset: i / pset_size,
        })
        .collect();
    Cndb::new(
        ClusterName::BlueGene,
        kinds,
        nodes.div_ceil(pset_size),
        pset_size,
    )
}

fn arb_seq(nodes: usize, psets: usize) -> impl Strategy<Value = AllocSeq> {
    prop_oneof![
        Just(AllocSeq::Any),
        Just(AllocSeq::UniformRoundRobin),
        Just(AllocSeq::PsetRoundRobin),
        (0..psets).prop_map(AllocSeq::InPset),
        proptest::collection::vec(0..nodes, 1..4).prop_map(AllocSeq::Explicit),
    ]
}

proptest! {
    /// Whatever mix of allocation sequences is used, the CNDB never
    /// double-books a CNK compute node, and successful selections always
    /// return in-range indices.
    #[test]
    fn cnk_nodes_are_never_double_booked(
        seqs in proptest::collection::vec(arb_seq(16, 4), 1..40)
    ) {
        let mut db = bg_cndb(16, 4);
        let mut taken = std::collections::HashSet::new();
        for seq in &seqs {
            // Exhaustion (Err) is legal; double-booking is not.
            if let Ok(i) = db.select(seq) {
                prop_assert!(i < 16);
                prop_assert!(taken.insert(i), "node {i} allocated twice");
            }
        }
        prop_assert_eq!(db.total_running(), taken.len());
    }

    /// Selection + release is an inverse pair: after releasing
    /// everything, the CNDB is back to its initial availability.
    #[test]
    fn release_restores_availability(
        seqs in proptest::collection::vec(arb_seq(8, 4), 1..20)
    ) {
        let mut db = bg_cndb(8, 4);
        let mut allocated = Vec::new();
        for seq in &seqs {
            if let Ok(i) = db.select(seq) {
                allocated.push(i);
            }
        }
        for i in allocated {
            db.release(i);
        }
        prop_assert_eq!(db.total_running(), 0);
        // All 8 nodes selectable again.
        for expected in 0..8 {
            prop_assert_eq!(db.select(&AllocSeq::Any).expect("free"), expected);
        }
    }

    /// urr visits all nodes before repeating any (on an all-free Linux
    /// cluster).
    #[test]
    fn urr_is_fair_over_linux_nodes(n in 2usize..10, rounds in 1usize..4) {
        let kinds = (0..n).map(|i| NodeKind::Linux { ether_host: i }).collect();
        let mut db = Cndb::new(ClusterName::BackEnd, kinds, 0, 0);
        let picks: Vec<usize> = (0..n * rounds)
            .map(|_| db.select(&AllocSeq::UniformRoundRobin).expect("linux"))
            .collect();
        for chunk in picks.chunks(n) {
            let mut sorted = chunk.to_vec();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    /// psetrr assigns the first `psets` selections to pairwise different
    /// psets.
    #[test]
    fn psetrr_covers_psets_first(pset_size in 2usize..6, psets in 2usize..5) {
        let mut db = bg_cndb(pset_size * psets, pset_size);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..psets {
            let i = db.select(&AllocSeq::PsetRoundRobin).expect("free");
            prop_assert!(seen.insert(i / pset_size), "pset revisited early");
        }
    }

    /// Inbound registration counts are exact under arbitrary
    /// register/unregister interleavings.
    #[test]
    fn inbound_accounting_is_exact(ops in proptest::collection::vec((0u64..12, 0usize..4, any::<bool>()), 1..60)) {
        let mut env = Environment::lofar();
        let mut live: std::collections::HashMap<u64, (usize, usize)> = Default::default();
        for (flow, pset, register) in ops {
            let host = 2 + (flow as usize) % 4;
            if register && !live.contains_key(&flow) {
                env.register_inbound(FlowId(flow), host, pset);
                live.insert(flow, (host, pset));
            } else if !register {
                env.unregister_inbound(FlowId(flow));
                live.remove(&flow);
            }
        }
        let hosts: std::collections::HashSet<usize> =
            live.values().map(|&(h, _)| h).collect();
        prop_assert_eq!(env.inbound_hosts(), hosts.len());
        for pset in 0..4 {
            let expect = live.values().filter(|&&(_, p)| p == pset).count();
            prop_assert_eq!(env.inbound_streams(pset), expect);
        }
    }

    /// Spec jitter is bounded and deterministic.
    #[test]
    fn jittered_specs_are_bounded_and_deterministic(seed in any::<u64>()) {
        let base = HardwareSpec::lofar();
        let a = base.jittered(seed, 0.05);
        let b = base.jittered(seed, 0.05);
        prop_assert_eq!(&a, &b);
        let ratio = a.io_forward.bytes_per_sec() / base.io_forward.bytes_per_sec();
        prop_assert!((0.95..=1.05).contains(&ratio));
    }

    /// CPU charging is per-node: work on one node never delays another.
    #[test]
    fn cpu_charges_are_per_node(bytes in 1u64..10_000_000) {
        let mut env = Environment::lofar();
        let t1 = env.generate(NodeId::be(0), bytes, SimTime::ZERO);
        let t2 = env.generate(NodeId::be(1), bytes, SimTime::ZERO);
        prop_assert_eq!(t1, t2);
        // Same node serializes.
        let t3 = env.generate(NodeId::be(0), bytes, SimTime::ZERO);
        prop_assert!(t3 > t1);
    }
}
