//! A threaded client-manager service.
//!
//! In the paper, "users interact with SCSQ on a Linux front-end cluster"
//! (§2.1) — the client manager serves multiple users concurrently.
//! [`ScsqService`] reproduces that shape for embedding SCSQ in a host
//! application: one worker thread owns the [`Scsq`] system (queries on
//! one catalog must serialize anyway), and any number of caller threads
//! submit SCSQL and wait on tickets.

use crate::{QueryResult, RunOptions, Scsq, ScsqError};
use scsq_cluster::HardwareSpec;
use scsq_ql::Value;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

struct Job {
    src: String,
    bindings: Vec<(String, Value)>,
    reply: Sender<Result<QueryResult, ScsqError>>,
}

/// A pending query submitted to the service.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<QueryResult, ScsqError>>,
}

impl Ticket {
    /// Blocks until the query completes.
    ///
    /// # Errors
    ///
    /// The query's own error, or [`ScsqError::Runtime`] if the service
    /// shut down before answering.
    pub fn wait(self) -> Result<QueryResult, ScsqError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ScsqError::Runtime("service shut down".to_string())))
    }
}

/// A background SCSQ client manager accepting queries from any thread.
#[derive(Debug)]
pub struct ScsqService {
    tx: Option<Sender<Job>>,
    worker: Option<JoinHandle<()>>,
    history: Arc<Mutex<Vec<String>>>,
}

impl ScsqService {
    /// Spawns the service on the given hardware with the given options.
    pub fn spawn(spec: HardwareSpec, options: RunOptions) -> ScsqService {
        let (tx, rx) = channel::<Job>();
        let history = Arc::new(Mutex::new(Vec::new()));
        let worker_history = Arc::clone(&history);
        let worker = std::thread::spawn(move || {
            let mut scsq = Scsq::with_spec(spec);
            *scsq.options_mut() = options;
            for job in rx {
                worker_history.lock().unwrap().push(job.src.clone());
                let bindings: Vec<(&str, Value)> = job
                    .bindings
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.clone()))
                    .collect();
                let result = scsq.run_with(&job.src, &bindings);
                // A dropped ticket is fine; the result is discarded.
                let _ = job.reply.send(result);
            }
        });
        ScsqService {
            tx: Some(tx),
            worker: Some(worker),
            history,
        }
    }

    /// Spawns the service on the paper's LOFAR configuration.
    pub fn lofar() -> ScsqService {
        ScsqService::spawn(HardwareSpec::lofar(), RunOptions::default())
    }

    /// Submits a query; returns a ticket to wait on.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ScsqService::shutdown`].
    pub fn submit(&self, src: &str) -> Ticket {
        self.submit_with(src, &[])
    }

    /// Submits a query with pre-bound variables.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ScsqService::shutdown`].
    pub fn submit_with(&self, src: &str, bindings: &[(&str, Value)]) -> Ticket {
        let (reply, rx) = channel();
        let job = Job {
            src: src.to_string(),
            bindings: bindings
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            reply,
        };
        self.tx
            .as_ref()
            .expect("service is running")
            .send(job)
            .expect("worker alive while sender exists");
        Ticket { rx }
    }

    /// Convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// See [`Ticket::wait`].
    pub fn run(&self, src: &str) -> Result<QueryResult, ScsqError> {
        self.submit(src).wait()
    }

    /// The query texts executed so far, in execution order.
    pub fn history(&self) -> Vec<String> {
        self.history.lock().unwrap().clone()
    }

    /// Stops the worker after draining queued queries.
    pub fn shutdown(&mut self) {
        self.tx.take();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScsqService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: &str = "select extract(b) from sp a, sp b
                     where b=sp(streamof(count(extract(a))), 'bg', 0)
                     and a=sp(gen_array(10000,4),'bg',1);";

    #[test]
    fn submits_and_waits() {
        let svc = ScsqService::lofar();
        let r = svc.run(Q).unwrap();
        assert_eq!(r.values(), &[Value::Integer(4)]);
        assert_eq!(svc.history().len(), 1);
    }

    #[test]
    fn concurrent_submissions_all_answer() {
        let svc = Arc::new(ScsqService::lofar());
        let mut joins = Vec::new();
        for _ in 0..4 {
            let svc = Arc::clone(&svc);
            joins.push(std::thread::spawn(move || svc.run(Q).unwrap()));
        }
        for j in joins {
            let r = j.join().unwrap();
            assert_eq!(r.values(), &[Value::Integer(4)]);
        }
        assert_eq!(svc.history().len(), 4);
    }

    #[test]
    fn errors_propagate_through_tickets() {
        let svc = ScsqService::lofar();
        let err = svc.run("select nope;").unwrap_err();
        assert!(err.to_string().contains("syntax error"));
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut svc = ScsqService::lofar();
        svc.shutdown();
        svc.shutdown();
    }
}
