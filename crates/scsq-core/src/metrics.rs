//! A process-wide, low-overhead metrics hub aggregating query
//! executions.
//!
//! The paper's SCSQ measures its communication performance *with its own
//! stream queries*; this module is the host-process counterpart: every
//! benchmark harness (and any embedding application) can funnel finished
//! [`QueryResult`]s into the global [`hub`], which maintains cheap
//! atomic counters and notifies registered [`MetricsSubscriber`]s — a
//! home-grown structured-tracing seam (the workspace deliberately
//! carries no `tracing`/`serde` dependency).
//!
//! Cost discipline: the hub is **disabled by default**. While disabled,
//! [`MetricsHub::record`] is a single relaxed atomic load and an early
//! return — safe to leave in benchmark hot loops (the per-*event* hot
//! path of the simulator never touches the hub at all; recording happens
//! once per finished query). Counters use relaxed ordering: they are
//! order-independent sums and maxima, so recording from worker threads
//! (the parallel sweep executor) never perturbs run-to-run determinism
//! of the results themselves.
//!
//! ```
//! use scsq_core::prelude::*;
//!
//! # fn main() -> Result<(), ScsqError> {
//! let mut scsq = Scsq::lofar();
//! let hub = scsq_core::metrics::hub();
//! hub.reset();
//! hub.enable(true);
//! let r = scsq.run(
//!     "select extract(b) \
//!      from sp a, sp b \
//!      where b=sp(streamof(count(extract(a))), 'bg', 0) \
//!      and a=sp(gen_array(100000, 10), 'bg', 1);",
//! )?;
//! hub.record(&r);
//! assert_eq!(hub.snapshot().queries, 1);
//! assert!(hub.snapshot().bytes_delivered >= 10 * 100_000);
//! # Ok(())
//! # }
//! ```

use crate::QueryResult;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// An observer of recorded query executions (the structured-tracing
/// seam).
///
/// Subscribers run synchronously inside [`MetricsHub::record`], so keep
/// them cheap; they see the same [`QueryResult`] the caller holds.
pub trait MetricsSubscriber: Send {
    /// Called once per recorded query execution.
    fn on_query(&mut self, result: &QueryResult);
}

/// A point-in-time copy of the hub's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HubSnapshot {
    /// Query executions recorded.
    pub queries: u64,
    /// Simulator events executed, summed over recorded queries.
    pub events: u64,
    /// Payload bytes delivered across all channels of all recorded
    /// queries.
    pub bytes_delivered: u64,
    /// Result values delivered to clients.
    pub values: u64,
    /// Send buffers transmitted.
    pub buffers_sent: u64,
    /// Buffers dropped in flight (UDP loss).
    pub buffers_dropped: u64,
    /// Largest pending-event high-water mark seen in any single query —
    /// the event kernel's worst-case memory pressure.
    pub events_pending_hwm: u64,
    /// Total simulated query time, in nanoseconds.
    pub sim_time_nanos: u64,
    /// Events skipped analytically by the train coalescer.
    pub coalesce_events_skipped: u64,
    /// Served sessions opened (`scsqd` connections).
    pub sessions: u64,
    /// Statements executed by served sessions.
    pub statements: u64,
    /// Prepared-plan cache hits across served sessions.
    pub plan_cache_hits: u64,
}

impl HubSnapshot {
    /// Mean delivered bandwidth in bytes per simulated second over all
    /// recorded queries (`0.0` before anything is recorded).
    pub fn mean_bandwidth(&self) -> f64 {
        if self.sim_time_nanos == 0 {
            0.0
        } else {
            self.bytes_delivered as f64 / (self.sim_time_nanos as f64 / 1e9)
        }
    }

    /// Renders the snapshot as a JSON object (hand-formatted, like every
    /// other JSON artifact in this workspace).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"queries\": {},\n  \"events\": {},\n  \"bytes_delivered\": {},\n  \
             \"values\": {},\n  \"buffers_sent\": {},\n  \"buffers_dropped\": {},\n  \
             \"events_pending_hwm\": {},\n  \"sim_time_nanos\": {},\n  \
             \"coalesce_events_skipped\": {},\n  \"sessions\": {},\n  \"statements\": {},\n  \
             \"plan_cache_hits\": {},\n  \"mean_bandwidth\": {}\n}}\n",
            self.queries,
            self.events,
            self.bytes_delivered,
            self.values,
            self.buffers_sent,
            self.buffers_dropped,
            self.events_pending_hwm,
            self.sim_time_nanos,
            self.coalesce_events_skipped,
            self.sessions,
            self.statements,
            self.plan_cache_hits,
            self.mean_bandwidth(),
        )
    }
}

/// The process-wide metrics registry: a gate, a set of relaxed atomic
/// counters, and a subscriber list.
#[derive(Debug, Default)]
pub struct MetricsHub {
    enabled: AtomicBool,
    queries: AtomicU64,
    events: AtomicU64,
    bytes_delivered: AtomicU64,
    values: AtomicU64,
    buffers_sent: AtomicU64,
    buffers_dropped: AtomicU64,
    events_pending_hwm: AtomicU64,
    sim_time_nanos: AtomicU64,
    coalesce_events_skipped: AtomicU64,
    sessions: AtomicU64,
    statements: AtomicU64,
    plan_cache_hits: AtomicU64,
    subscribers: Mutex<Vec<Box<dyn MetricsSubscriber>>>,
}

impl std::fmt::Debug for Box<dyn MetricsSubscriber> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsSubscriber")
    }
}

impl MetricsHub {
    /// A fresh, disabled hub (for tests or private aggregation; most
    /// callers use the global [`hub`]).
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Turns recording on or off. While off, [`MetricsHub::record`] is a
    /// single atomic load.
    pub fn enable(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Folds one finished query into the counters and notifies
    /// subscribers. A no-op while the hub is disabled.
    pub fn record(&self, result: &QueryResult) {
        if !self.is_enabled() {
            return;
        }
        let stats = result.stats();
        let mut bytes = 0u64;
        let mut sent = 0u64;
        let mut dropped = 0u64;
        for c in &stats.channels {
            bytes += c.bytes;
            sent += c.buffers_sent;
            dropped += c.buffers_dropped;
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.events.fetch_add(stats.events, Ordering::Relaxed);
        self.bytes_delivered.fetch_add(bytes, Ordering::Relaxed);
        self.values
            .fetch_add(result.values().len() as u64, Ordering::Relaxed);
        self.buffers_sent.fetch_add(sent, Ordering::Relaxed);
        self.buffers_dropped.fetch_add(dropped, Ordering::Relaxed);
        self.events_pending_hwm
            .fetch_max(stats.events_pending_hwm, Ordering::Relaxed);
        self.sim_time_nanos
            .fetch_add(result.total_time().as_nanos(), Ordering::Relaxed);
        self.coalesce_events_skipped
            .fetch_add(stats.coalesce.events_skipped, Ordering::Relaxed);
        let mut subs = self.subscribers.lock().expect("metrics hub poisoned");
        for s in subs.iter_mut() {
            s.on_query(result);
        }
    }

    /// Counts a served session opening (one `scsqd` connection). A
    /// no-op while the hub is disabled, like [`MetricsHub::record`].
    pub fn record_session(&self) {
        if self.is_enabled() {
            self.sessions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one statement executed by a served session. A no-op
    /// while the hub is disabled.
    pub fn record_statement(&self) {
        if self.is_enabled() {
            self.statements.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts prepared-plan cache hits observed by the server. A no-op
    /// while the hub is disabled.
    pub fn record_plan_cache_hits(&self, hits: u64) {
        if self.is_enabled() && hits > 0 {
            self.plan_cache_hits.fetch_add(hits, Ordering::Relaxed);
        }
    }

    /// Registers a subscriber; it stays registered until
    /// [`MetricsHub::reset`].
    pub fn subscribe(&self, sub: Box<dyn MetricsSubscriber>) {
        self.subscribers
            .lock()
            .expect("metrics hub poisoned")
            .push(sub);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> HubSnapshot {
        HubSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            bytes_delivered: self.bytes_delivered.load(Ordering::Relaxed),
            values: self.values.load(Ordering::Relaxed),
            buffers_sent: self.buffers_sent.load(Ordering::Relaxed),
            buffers_dropped: self.buffers_dropped.load(Ordering::Relaxed),
            events_pending_hwm: self.events_pending_hwm.load(Ordering::Relaxed),
            sim_time_nanos: self.sim_time_nanos.load(Ordering::Relaxed),
            coalesce_events_skipped: self.coalesce_events_skipped.load(Ordering::Relaxed),
            sessions: self.sessions.load(Ordering::Relaxed),
            statements: self.statements.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter, drops all subscribers, and leaves the
    /// enable gate untouched.
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.events.store(0, Ordering::Relaxed);
        self.bytes_delivered.store(0, Ordering::Relaxed);
        self.values.store(0, Ordering::Relaxed);
        self.buffers_sent.store(0, Ordering::Relaxed);
        self.buffers_dropped.store(0, Ordering::Relaxed);
        self.events_pending_hwm.store(0, Ordering::Relaxed);
        self.sim_time_nanos.store(0, Ordering::Relaxed);
        self.coalesce_events_skipped.store(0, Ordering::Relaxed);
        self.sessions.store(0, Ordering::Relaxed);
        self.statements.store(0, Ordering::Relaxed);
        self.plan_cache_hits.store(0, Ordering::Relaxed);
        self.subscribers
            .lock()
            .expect("metrics hub poisoned")
            .clear();
    }
}

/// The process-wide hub. Disabled until someone calls
/// [`MetricsHub::enable`]; benchmark binaries enable it when invoked
/// with `--metrics out.json`.
pub fn hub() -> &'static MetricsHub {
    static HUB: OnceLock<MetricsHub> = OnceLock::new();
    HUB.get_or_init(MetricsHub::new)
}

/// Turns the whole observability layer on or off in one call: the
/// process-wide [`hub`]'s recording gate *and* the simulator's
/// flight-recorder span gate (`scsq_sim::obs`). Benchmark binaries call
/// this for `--metrics`/`--trace`; with both gates off (the default)
/// the per-event hot path pays one relaxed atomic load per gated site.
///
/// Deliberately a free function rather than a `MetricsHub` method: the
/// span gate is process-global, and flipping it from per-instance hubs
/// (as unit tests create) would let parallel tests perturb each other's
/// flight recorders.
pub fn set_observability(on: bool) {
    hub().enable(on);
    scsq_sim::obs::set_enabled(on);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scsq;

    fn run_once() -> QueryResult {
        Scsq::lofar()
            .run(
                "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(gen_array(100000,10),'bg',1);",
            )
            .unwrap()
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let hub = MetricsHub::new();
        hub.record(&run_once());
        assert_eq!(hub.snapshot(), HubSnapshot::default());
    }

    #[test]
    fn enabled_hub_accumulates_and_notifies() {
        struct Counter(std::sync::Arc<AtomicU64>);
        impl MetricsSubscriber for Counter {
            fn on_query(&mut self, _: &QueryResult) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let hub = MetricsHub::new();
        hub.enable(true);
        let seen = std::sync::Arc::new(AtomicU64::new(0));
        hub.subscribe(Box::new(Counter(seen.clone())));
        let r = run_once();
        hub.record(&r);
        hub.record(&r);
        let snap = hub.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.events, 2 * r.stats().events);
        assert_eq!(snap.events_pending_hwm, r.stats().events_pending_hwm);
        assert!(snap.bytes_delivered >= 2 * 10 * 100_009);
        assert!(snap.mean_bandwidth() > 0.0);
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        hub.reset();
        assert_eq!(hub.snapshot(), HubSnapshot::default());
        assert!(hub.is_enabled(), "reset keeps the gate");
    }

    #[test]
    fn server_counters_are_gated_and_reset() {
        let hub = MetricsHub::new();
        hub.record_session();
        hub.record_statement();
        hub.record_plan_cache_hits(3);
        assert_eq!(
            hub.snapshot(),
            HubSnapshot::default(),
            "disabled hub ignores"
        );
        hub.enable(true);
        hub.record_session();
        hub.record_statement();
        hub.record_statement();
        hub.record_plan_cache_hits(2);
        let snap = hub.snapshot();
        assert_eq!(snap.sessions, 1);
        assert_eq!(snap.statements, 2);
        assert_eq!(snap.plan_cache_hits, 2);
        let json = snap.to_json();
        assert!(json.contains("\"sessions\": 1"));
        assert!(json.contains("\"plan_cache_hits\": 2"));
        hub.reset();
        assert_eq!(hub.snapshot(), HubSnapshot::default());
    }

    #[test]
    fn snapshot_json_is_balanced() {
        let hub = MetricsHub::new();
        hub.enable(true);
        hub.record(&run_once());
        let json = hub.snapshot().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"queries\": 1"));
        assert!(json.contains("\"mean_bandwidth\""));
    }
}
