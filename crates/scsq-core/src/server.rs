//! `scsqd` — the serving front door: a long-lived SCSQL server.
//!
//! §2.1: "Users interact with SCSQ on a Linux front-end cluster" — SCSQ
//! is a *service*, not a one-shot binary. [`ScsqdServer`] is that
//! service shape: it listens on a TCP or Unix-domain socket, gives each
//! connection its own [`Session`] (private named-plan catalog, private
//! runtime options), and shares one [`SessionHub`] across all of them —
//! so two clients preparing the same query text share a single
//! compilation, which `tests/server.rs` pins via the hub's
//! `compilations` counter.
//!
//! The backend stays the deterministic simulation, so a query served
//! over the socket produces byte-identical output to the same query run
//! one-shot through the `scsql` shell — the verify script diffs the two
//! transcripts.
//!
//! Protocol framing lives in [`crate::wire`]; the full reference is
//! `docs/server.md`.

use crate::metrics;
use crate::wire::{read_frame, write_frame, Frame, FrameKind};
use scsq_cluster::HardwareSpec;
use scsq_engine::session::{Session, SessionHub, SessionReply};
use scsq_engine::{MetricsSnapshot, PlacementPolicy, RunOptions};
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// Where a server listens — also how the shutdown poke reconnects to
/// unblock the accept loop.
#[derive(Debug, Clone)]
enum Endpoint {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// Connects and immediately drops the connection, waking a blocked
    /// `accept`.
    fn poke(&self) {
        match self {
            Endpoint::Tcp(addr) => drop(TcpStream::connect(addr)),
            #[cfg(unix)]
            Endpoint::Unix(path) => drop(UnixStream::connect(path)),
        }
    }
}

/// A long-lived SCSQL server on the deterministic simulation backend.
///
/// Bind, then [`ScsqdServer::serve`]; each accepted connection runs on
/// its own thread with its own session over the shared hub. The accept
/// loop exits when any session issues `.shutdown`.
pub struct ScsqdServer {
    listener: Listener,
    endpoint: Endpoint,
    hub: Arc<SessionHub>,
    spec: HardwareSpec,
    shutdown: Arc<AtomicBool>,
}

impl ScsqdServer {
    /// Binds a TCP listener (use port 0 for an OS-assigned port, then
    /// read back [`ScsqdServer::local_addr`]). Sessions run on the
    /// paper's LOFAR hardware.
    ///
    /// # Errors
    ///
    /// Bind errors.
    pub fn bind_tcp(addr: impl ToSocketAddrs) -> io::Result<ScsqdServer> {
        let listener = TcpListener::bind(addr)?;
        let endpoint = Endpoint::Tcp(listener.local_addr()?);
        Ok(ScsqdServer::new(Listener::Tcp(listener), endpoint))
    }

    /// Binds a Unix-domain socket at `path` (removed again when the
    /// server shuts down cleanly).
    ///
    /// # Errors
    ///
    /// Bind errors (including an existing socket file).
    #[cfg(unix)]
    pub fn bind_unix(path: impl AsRef<Path>) -> io::Result<ScsqdServer> {
        let path = path.as_ref().to_path_buf();
        let listener = UnixListener::bind(&path)?;
        let endpoint = Endpoint::Unix(path.clone());
        Ok(ScsqdServer::new(Listener::Unix(listener, path), endpoint))
    }

    fn new(listener: Listener, endpoint: Endpoint) -> ScsqdServer {
        ScsqdServer {
            listener,
            endpoint,
            hub: Arc::new(SessionHub::new()),
            spec: HardwareSpec::lofar(),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The bound address, printable: `host:port` for TCP, the socket
    /// path for Unix. `scsqd` prints this as its `LISTEN` line.
    pub fn local_addr(&self) -> String {
        match &self.endpoint {
            Endpoint::Tcp(addr) => addr.to_string(),
            #[cfg(unix)]
            Endpoint::Unix(path) => path.display().to_string(),
        }
    }

    /// The hub shared by every session of this server.
    pub fn hub(&self) -> &Arc<SessionHub> {
        &self.hub
    }

    /// Replaces the hardware all sessions run on (default: LOFAR).
    pub fn set_spec(&mut self, spec: HardwareSpec) {
        self.spec = spec;
    }

    /// Accepts and serves connections until a session issues
    /// `.shutdown`. Each connection gets a thread; in-flight sessions
    /// finish their current statement, the accept loop stops taking new
    /// ones.
    ///
    /// # Errors
    ///
    /// Accept errors (per-connection I/O errors only end that session).
    pub fn serve(self) -> io::Result<()> {
        loop {
            let conn: (Box<dyn Read + Send>, Box<dyn Write + Send>) = match &self.listener {
                Listener::Tcp(l) => {
                    let (stream, _) = l.accept()?;
                    let read = stream.try_clone()?;
                    (Box::new(read), Box::new(stream))
                }
                #[cfg(unix)]
                Listener::Unix(l, _) => {
                    let (stream, _) = l.accept()?;
                    let read = stream.try_clone()?;
                    (Box::new(read), Box::new(stream))
                }
            };
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let hub = Arc::clone(&self.hub);
            let spec = self.spec.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let endpoint = self.endpoint.clone();
            thread::spawn(move || {
                let session = hub.session(spec, RunOptions::default());
                metrics::hub().record_session();
                let mut conn = Connection {
                    reader: BufReader::new(conn.0),
                    writer: conn.1,
                    session,
                    metrics_on: false,
                    shutdown,
                    endpoint,
                };
                let _ = conn.run();
            });
        }
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

struct Connection {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    session: Session,
    metrics_on: bool,
    shutdown: Arc<AtomicBool>,
    endpoint: Endpoint,
}

impl Connection {
    fn send(&mut self, kind: FrameKind, payload: &str) -> io::Result<()> {
        write_frame(&mut self.writer, kind, payload)
    }

    fn run(&mut self) -> io::Result<()> {
        self.send(
            FrameKind::Hello,
            &format!("scsqd {}", env!("CARGO_PKG_VERSION")),
        )?;
        while let Some(frame) = read_frame(&mut self.reader)? {
            match frame {
                Frame {
                    kind: FrameKind::Bye,
                    ..
                } => break,
                Frame {
                    kind: FrameKind::Stmt,
                    payload,
                } => {
                    let text = payload.trim();
                    if let Some(rest) = text.strip_prefix('.') {
                        if !self.meta(rest)? {
                            break;
                        }
                    } else {
                        self.statements(text)?;
                    }
                }
                Frame { kind, .. } => {
                    self.send(
                        FrameKind::Err,
                        &format!("unexpected {} frame from client", kind.tag()),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Executes the SCSQL in `text`, one reply stream (rows, optional
    /// metrics/profile, then `OK`/`ERR`) per statement.
    fn statements(&mut self, text: &str) -> io::Result<()> {
        let statements = match scsq_ql::parse_program(text) {
            Ok(s) => s,
            Err(e) => return self.send(FrameKind::Err, &e.to_string()),
        };
        if statements.is_empty() {
            return self.send(FrameKind::Err, "program contained no statement");
        }
        for stmt in &statements {
            let hits_before = self.session.hub().plan_cache_hits();
            let reply = self.session.execute_statement(stmt);
            metrics::hub().record_statement();
            metrics::hub()
                .record_plan_cache_hits(self.session.hub().plan_cache_hits() - hits_before);
            match reply {
                Ok(reply) => {
                    for row in reply.rows() {
                        self.send(FrameKind::Row, &row)?;
                    }
                    if let SessionReply::Result { result, profile } = &reply {
                        if self.metrics_on {
                            self.send(
                                FrameKind::Metrics,
                                &MetricsSnapshot::from_result(result).to_json(),
                            )?;
                        }
                        if let Some(profile) = profile {
                            self.send(FrameKind::Profile, &profile.render())?;
                        }
                    }
                    self.send(FrameKind::Ok, &reply.summary())?;
                }
                Err(e) => self.send(FrameKind::Err, &e.to_string())?,
            }
        }
        Ok(())
    }

    /// Handles a meta-command (already stripped of its leading `.`).
    /// Returns `false` when the connection should close (`.shutdown`).
    fn meta(&mut self, cmd: &str) -> io::Result<bool> {
        let mut parts = cmd.split_whitespace();
        match parts.next().unwrap_or_default() {
            "buffer" => match parts.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(b) if b > 0 => {
                    self.session.options_mut().mpi_buffer = b;
                    self.send(FrameKind::Ok, &format!("-- buffer {b}"))?;
                }
                _ => self.send(FrameKind::Err, "usage: .buffer <bytes>")?,
            },
            "double" => match parts.next() {
                Some(on @ ("on" | "off")) => {
                    self.session.options_mut().mpi_double = on == "on";
                    self.send(FrameKind::Ok, &format!("-- double {on}"))?;
                }
                _ => self.send(FrameKind::Err, "usage: .double on|off")?,
            },
            "policy" => match parts.next() {
                Some(p @ ("naive" | "aware")) => {
                    self.session.options_mut().placement = if p == "naive" {
                        PlacementPolicy::Naive
                    } else {
                        PlacementPolicy::TopologyAware
                    };
                    self.send(FrameKind::Ok, &format!("-- policy {p}"))?;
                }
                _ => self.send(FrameKind::Err, "usage: .policy naive|aware")?,
            },
            "metrics" => match parts.next() {
                Some(on @ ("on" | "off")) => {
                    self.metrics_on = on == "on";
                    self.send(FrameKind::Ok, &format!("-- metrics {on}"))?;
                }
                _ => self.send(FrameKind::Err, "usage: .metrics on|off")?,
            },
            "profile" => match parts.next() {
                Some(on @ ("on" | "off")) => {
                    self.session.set_profile(on == "on");
                    self.send(FrameKind::Ok, &format!("-- profile {on}"))?;
                }
                _ => self.send(FrameKind::Err, "usage: .profile on|off")?,
            },
            "explain" => {
                let query = cmd.strip_prefix("explain").unwrap_or_default().trim();
                match self.session.explain(query) {
                    Ok(text) => {
                        self.send(FrameKind::Info, &text)?;
                        self.send(FrameKind::Ok, "-- explained")?;
                    }
                    Err(e) => self.send(FrameKind::Err, &e.to_string())?,
                }
            }
            "server" => {
                let hub = self.session.hub();
                let json = format!(
                    "{{\n  \"sessions_open\": {},\n  \"sessions_opened\": {},\n  \
                     \"statements\": {},\n  \"compilations\": {},\n  \
                     \"plan_cache_hits\": {},\n  \"plan_cache_len\": {}\n}}\n",
                    hub.sessions_open(),
                    hub.sessions_opened(),
                    hub.statements(),
                    hub.compilations(),
                    hub.plan_cache_hits(),
                    hub.plan_cache_len(),
                );
                self.send(FrameKind::Info, &json)?;
                self.send(FrameKind::Ok, "-- server")?;
            }
            "shutdown" => {
                self.send(FrameKind::Ok, "-- shutting down")?;
                self.shutdown.store(true, Ordering::SeqCst);
                self.endpoint.poke();
                return Ok(false);
            }
            other => self.send(
                FrameKind::Err,
                &format!("unknown meta-command `.{other}` (see docs/server.md)"),
            )?,
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Client;

    fn start() -> (String, thread::JoinHandle<io::Result<()>>) {
        let server = ScsqdServer::bind_tcp("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let handle = thread::spawn(move || server.serve());
        (addr, handle)
    }

    const Q: &str = "select extract(b) from sp a, sp b
                     where b=sp(streamof(count(extract(a))), 'bg', 0)
                     and a=sp(gen_array(10000,4),'bg',1);";

    #[test]
    fn serves_queries_and_shuts_down() {
        let (addr, handle) = start();
        let mut c = Client::connect_tcp(&addr).expect("connect");
        assert!(c.banner().starts_with("scsqd "), "{}", c.banner());
        let frames = c.statement(Q).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].kind, FrameKind::Row);
        assert_eq!(frames[0].payload, "4");
        assert_eq!(frames[1].kind, FrameKind::Ok);
        assert!(frames[1].payload.starts_with("-- 1 value in "));
        let frames = c.statement(".shutdown").unwrap();
        assert_eq!(frames[0].payload, "-- shutting down");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn sessions_share_compilations_and_errors_stay_per_session() {
        let (addr, handle) = start();
        let mut a = Client::connect_tcp(&addr).unwrap();
        let mut b = Client::connect_tcp(&addr).unwrap();
        let fa = a.statement(&format!("prepare q as {Q}")).unwrap();
        assert_eq!(fa.last().unwrap().payload, "-- prepared q");
        let fb = b.statement(&format!("prepare q as {Q}")).unwrap();
        assert_eq!(fb.last().unwrap().payload, "-- prepared q");
        let info = a.statement(".server").unwrap();
        assert_eq!(info[0].kind, FrameKind::Info);
        assert!(
            info[0].payload.contains("\"compilations\": 1"),
            "{}",
            info[0].payload
        );
        assert!(info[0].payload.contains("\"plan_cache_hits\": 1"));
        // A bad statement errors without killing the session.
        let err = b.statement("run nope;").unwrap();
        assert_eq!(err[0].kind, FrameKind::Err);
        assert!(err[0].payload.contains("unknown prepared query"));
        let ok = b.statement("run q;").unwrap();
        assert_eq!(ok[0].payload, "4");
        b.statement(".shutdown").unwrap();
        handle.join().unwrap().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_serves_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("scsqd-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scsqd.sock");
        let server = ScsqdServer::bind_unix(&path).expect("bind unix");
        let addr = server.local_addr();
        assert_eq!(addr, path.display().to_string());
        let handle = thread::spawn(move || server.serve());
        let mut c = Client::connect_unix(&path).unwrap();
        let frames = c.statement("merge({});").unwrap();
        assert!(frames
            .last()
            .unwrap()
            .payload
            .starts_with("-- 0 values in "));
        c.statement(".shutdown").unwrap();
        handle.join().unwrap().unwrap();
        assert!(!path.exists(), "socket file removed on clean shutdown");
        let _ = std::fs::remove_dir(&dir);
    }
}
