//! The `scsqd` wire protocol: length-prefixed, newline-framed frames.
//!
//! One frame on the wire is
//!
//! ```text
//! TYPE LEN\n
//! <LEN payload bytes>\n
//! ```
//!
//! — a human-readable header (frame type tag, one space, payload byte
//! count in decimal), the payload verbatim, and a closing newline. The
//! length prefix makes payloads with embedded newlines (multi-line
//! metrics JSON, profile tables) unambiguous, while the newline framing
//! keeps transcripts readable with `nc`/`socat`.
//!
//! Frame types:
//!
//! | tag       | direction        | payload                               |
//! |-----------|------------------|---------------------------------------|
//! | `HELLO`   | server → client  | server banner (`scsqd <version>`)     |
//! | `STMT`    | client → server  | SCSQL text or a `.meta` command       |
//! | `BYE`     | client → server  | empty; close the session              |
//! | `ROW`     | server → client  | one result value / catalog row        |
//! | `OK`      | server → client  | statement done; the `-- …` summary    |
//! | `ERR`     | server → client  | error text (shell prints `error: …`)  |
//! | `INFO`    | server → client  | out-of-band text (`.server`, explain) |
//! | `METRICS` | server → client  | per-query [`MetricsSnapshot`] JSON    |
//! | `PROFILE` | server → client  | explain-analyze profile rendering     |
//!
//! Every statement's reply stream terminates with exactly one `OK` or
//! `ERR`, so a client can pipeline statements and still attribute
//! frames. See `docs/server.md` for the full protocol reference.
//!
//! [`MetricsSnapshot`]: scsq_engine::MetricsSnapshot

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

/// Upper bound on a single frame payload (16 MiB): a malformed header
/// cannot make a reader allocate unbounded memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// The frame types of the `scsqd` protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Server banner, sent once on connect.
    Hello,
    /// A statement (SCSQL text or `.meta` command) from the client.
    Stmt,
    /// Client is done; the server closes the session.
    Bye,
    /// One output row (result value or catalog entry).
    Row,
    /// Statement completed; payload is the `-- …` summary line.
    Ok,
    /// Statement failed; payload is the error text.
    Err,
    /// Out-of-band server text (`.server` stats, `.explain` output).
    Info,
    /// Per-query metrics JSON (when the session turned `.metrics on`).
    Metrics,
    /// Explain-analyze profile (when the session turned `.profile on`).
    Profile,
}

impl FrameKind {
    /// The tag written on the wire.
    pub fn tag(self) -> &'static str {
        match self {
            FrameKind::Hello => "HELLO",
            FrameKind::Stmt => "STMT",
            FrameKind::Bye => "BYE",
            FrameKind::Row => "ROW",
            FrameKind::Ok => "OK",
            FrameKind::Err => "ERR",
            FrameKind::Info => "INFO",
            FrameKind::Metrics => "METRICS",
            FrameKind::Profile => "PROFILE",
        }
    }

    /// Parses a wire tag (exact match, case-sensitive).
    pub fn from_tag(tag: &str) -> Option<FrameKind> {
        Some(match tag {
            "HELLO" => FrameKind::Hello,
            "STMT" => FrameKind::Stmt,
            "BYE" => FrameKind::Bye,
            "ROW" => FrameKind::Row,
            "OK" => FrameKind::Ok,
            "ERR" => FrameKind::Err,
            "INFO" => FrameKind::Info,
            "METRICS" => FrameKind::Metrics,
            "PROFILE" => FrameKind::Profile,
            _ => return None,
        })
    }

    /// Whether this frame terminates a statement's reply stream.
    pub fn ends_statement(self) -> bool {
        matches!(self, FrameKind::Ok | FrameKind::Err)
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub kind: FrameKind,
    /// The payload text (UTF-8; may be empty or multi-line).
    pub payload: String,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one frame and flushes.
///
/// # Errors
///
/// I/O errors from the underlying writer.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &str) -> io::Result<()> {
    writeln!(w, "{} {}", kind.tag(), payload.len())?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean end-of-stream (EOF before a
/// header byte).
///
/// # Errors
///
/// I/O errors, malformed headers, oversized or non-UTF-8 payloads, EOF
/// mid-frame.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Frame>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let header = header.trim_end_matches(['\r', '\n']);
    let (tag, len) = header
        .split_once(' ')
        .ok_or_else(|| bad(format!("malformed frame header `{header}`")))?;
    let kind =
        FrameKind::from_tag(tag).ok_or_else(|| bad(format!("unknown frame type `{tag}`")))?;
    let len: usize = len
        .parse()
        .map_err(|_| bad(format!("bad frame length `{len}`")))?;
    if len > MAX_FRAME_LEN {
        return Err(bad(format!("frame of {len} bytes exceeds {MAX_FRAME_LEN}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut nl = [0u8; 1];
    r.read_exact(&mut nl)?;
    if nl[0] != b'\n' {
        return Err(bad("frame payload not newline-terminated"));
    }
    let payload = String::from_utf8(payload).map_err(|_| bad("frame payload is not UTF-8"))?;
    Ok(Some(Frame { kind, payload }))
}

/// A client connection to a running `scsqd`, over TCP or (on Unix) a
/// Unix-domain socket.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    /// The server's `HELLO` banner.
    banner: String,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("banner", &self.banner)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects over TCP (`host:port`) and consumes the `HELLO` frame.
    ///
    /// # Errors
    ///
    /// Connection or protocol errors (a peer that does not greet with
    /// `HELLO` is rejected).
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let read = stream.try_clone()?;
        Client::handshake(Box::new(read), Box::new(stream))
    }

    /// Connects over a Unix-domain socket and consumes the `HELLO`
    /// frame.
    ///
    /// # Errors
    ///
    /// See [`Client::connect_tcp`].
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let read = stream.try_clone()?;
        Client::handshake(Box::new(read), Box::new(stream))
    }

    fn handshake(read: Box<dyn Read + Send>, write: Box<dyn Write + Send>) -> io::Result<Client> {
        let mut client = Client {
            reader: BufReader::new(read),
            writer: write,
            banner: String::new(),
        };
        match read_frame(&mut client.reader)? {
            Some(Frame {
                kind: FrameKind::Hello,
                payload,
            }) => client.banner = payload,
            other => return Err(bad(format!("expected HELLO, got {other:?}"))),
        }
        Ok(client)
    }

    /// The server's greeting (e.g. `scsqd 0.7.0`).
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn send(&mut self, kind: FrameKind, payload: &str) -> io::Result<()> {
        write_frame(&mut self.writer, kind, payload)
    }

    /// Receives one frame; `Ok(None)` when the server closed the
    /// connection.
    ///
    /// # Errors
    ///
    /// I/O or framing errors.
    pub fn recv(&mut self) -> io::Result<Option<Frame>> {
        read_frame(&mut self.reader)
    }

    /// Sends one statement and collects its reply frames, up to and
    /// including the terminating `OK`/`ERR`. Intended for payloads
    /// holding a single statement (the shell's `;`-split discipline);
    /// a multi-statement payload gets one terminator per statement, so
    /// call [`Client::recv`] directly for those.
    ///
    /// # Errors
    ///
    /// I/O errors, or an unexpected-EOF error if the server closes the
    /// connection before terminating the statement.
    pub fn statement(&mut self, text: &str) -> io::Result<Vec<Frame>> {
        self.send(FrameKind::Stmt, text)?;
        let mut frames = Vec::new();
        loop {
            let frame = self.recv()?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-statement")
            })?;
            let done = frame.kind.ends_statement();
            frames.push(frame);
            if done {
                return Ok(frames);
            }
        }
    }

    /// Sends `BYE`, telling the server to close the session.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn bye(&mut self) -> io::Result<()> {
        self.send(FrameKind::Bye, "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Stmt, "merge({});").unwrap();
        write_frame(&mut buf, FrameKind::Ok, "-- 0 values in 1ms\nwith newline").unwrap();
        write_frame(&mut buf, FrameKind::Bye, "").unwrap();
        let mut r = Cursor::new(buf);
        let a = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(a.kind, FrameKind::Stmt);
        assert_eq!(a.payload, "merge({});");
        let b = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(b.kind, FrameKind::Ok);
        assert_eq!(b.payload, "-- 0 values in 1ms\nwith newline");
        let c = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(c.kind, FrameKind::Bye);
        assert_eq!(c.payload, "");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn tags_round_trip() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Stmt,
            FrameKind::Bye,
            FrameKind::Row,
            FrameKind::Ok,
            FrameKind::Err,
            FrameKind::Info,
            FrameKind::Metrics,
            FrameKind::Profile,
        ] {
            assert_eq!(FrameKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(FrameKind::from_tag("NOPE"), None);
        assert_eq!(FrameKind::from_tag("ok"), None, "tags are case-sensitive");
    }

    #[test]
    fn malformed_frames_are_rejected() {
        let mut r = Cursor::new(b"NOPE 3\nabc\n".to_vec());
        assert!(read_frame(&mut r).is_err(), "unknown tag");
        let mut r = Cursor::new(b"ROW x\nabc\n".to_vec());
        assert!(read_frame(&mut r).is_err(), "non-numeric length");
        let mut r = Cursor::new(b"ROW\n".to_vec());
        assert!(read_frame(&mut r).is_err(), "missing length");
        let mut r = Cursor::new(b"ROW 10\nabc\n".to_vec());
        assert!(read_frame(&mut r).is_err(), "EOF mid-payload");
        let mut r = Cursor::new(b"ROW 3\nabcX".to_vec());
        assert!(
            read_frame(&mut r).is_err(),
            "payload not newline-terminated"
        );
        let mut r = Cursor::new(format!("ROW {}\n", MAX_FRAME_LEN + 1).into_bytes());
        assert!(read_frame(&mut r).is_err(), "oversized frame refused");
    }

    #[test]
    fn ends_statement_flags_terminators() {
        assert!(FrameKind::Ok.ends_statement());
        assert!(FrameKind::Err.ends_statement());
        assert!(!FrameKind::Row.ends_statement());
        assert!(!FrameKind::Metrics.ends_statement());
    }
}
