#![deny(missing_docs)]
//! # scsq-core — the public face of the SCSQ reproduction
//!
//! [`Scsq`] is the system object a downstream user holds: it owns the
//! client manager (with the persistent function catalog), the hardware
//! specification of the simulated LOFAR environment, and the execution
//! options (MPI buffer size / single vs double buffering — the knobs the
//! paper's §3.1 sweeps).
//!
//! ```
//! use scsq_core::prelude::*;
//!
//! # fn main() -> Result<(), ScsqError> {
//! let mut scsq = Scsq::lofar();
//! let result = scsq.run(
//!     "select extract(b) \
//!      from sp a, sp b \
//!      where b=sp(streamof(count(extract(a))), 'bg', 0) \
//!      and a=sp(gen_array(100000, 10), 'bg', 1);",
//! )?;
//! assert_eq!(result.values(), &[Value::Integer(10)]);
//! println!("query time: {}", result.total_time());
//! # Ok(())
//! # }
//! ```
//!
//! For multi-client use (SCSQ's client manager serves many users on the
//! front-end cluster), [`service::ScsqService`] runs a client manager on
//! a background thread and accepts queries from any number of threads.

pub mod metrics;
pub mod server;
pub mod service;
pub mod wire;

pub use scsq_cluster::{AllocSeq, ClusterName, Environment, HardwareSpec, NodeId};
pub use scsq_engine::{
    CatalogEntry, ChannelReport, EngineError as ScsqError, MetricsSnapshot, PlacementPolicy,
    PreparedQuery, ProfileReport, QueryResult, QueryStats, RpReport, RunOptions, Session,
    SessionHub, SessionReply, StageProfile,
};
pub use scsq_ql::{ArrayData, Catalog, SpHandle, Value};
pub use scsq_sim::{LatencyHistogram, SimDur, SimTime, Span};
pub use server::ScsqdServer;
pub use service::ScsqService;
pub use wire::{read_frame, write_frame, Client, Frame, FrameKind};

use scsq_engine::ClientManager;

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::{
        ClusterName, HardwareSpec, NodeId, PreparedQuery, QueryResult, RunOptions, Scsq, ScsqError,
        ScsqService, SimDur, SimTime, Value,
    };
}

/// The SCSQ system: client manager + hardware environment + options.
///
/// Each query statement executes against a freshly-idle instance of the
/// configured hardware (matching the paper's per-experiment runs);
/// `create function` definitions persist in the catalog across
/// statements.
#[derive(Debug, Default)]
pub struct Scsq {
    manager: ClientManager,
    spec: HardwareSpec,
    options: RunOptions,
}

impl Scsq {
    /// An SCSQ system on the paper's LOFAR configuration: a 32-node
    /// BlueGene partition (4 psets / 4 I/O nodes), four back-end and two
    /// front-end Linux nodes.
    pub fn lofar() -> Scsq {
        Scsq::with_spec(HardwareSpec::lofar())
    }

    /// An SCSQ system on custom hardware.
    pub fn with_spec(spec: HardwareSpec) -> Scsq {
        Scsq {
            manager: ClientManager::new(),
            spec,
            options: RunOptions::default(),
        }
    }

    /// The hardware specification in effect.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// Mutable access to the hardware specification (takes effect on the
    /// next query).
    pub fn spec_mut(&mut self) -> &mut HardwareSpec {
        &mut self.spec
    }

    /// The execution options in effect.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Mutable access to the execution options (MPI buffer size, double
    /// buffering, …).
    pub fn options_mut(&mut self) -> &mut RunOptions {
        &mut self.options
    }

    /// The function catalog (built-ins plus user definitions).
    pub fn catalog(&self) -> &Catalog {
        self.manager.catalog()
    }

    /// Executes an SCSQL program and returns the result of its last
    /// query statement. `create function` statements extend the catalog.
    ///
    /// # Errors
    ///
    /// Parse, binder, placement, or runtime errors; an error if the
    /// program defines functions but contains no query.
    pub fn run(&mut self, src: &str) -> Result<QueryResult, ScsqError> {
        self.manager.execute(&self.spec, src, &self.options)
    }

    /// Like [`Scsq::run`], with pre-bound query variables — the paper's
    /// "altering a query variable n" (§3.2).
    ///
    /// # Errors
    ///
    /// See [`Scsq::run`].
    pub fn run_with(
        &mut self,
        src: &str,
        bindings: &[(&str, Value)],
    ) -> Result<QueryResult, ScsqError> {
        let owned: Vec<(String, Value)> = bindings
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        self.manager
            .execute_with(&self.spec, src, &self.options, &owned)
    }

    /// Compiles a query once into a reusable [`PreparedQuery`].
    ///
    /// Parse → bind → place happens here, exactly once; each
    /// [`Scsq::run_prepared`] (or [`PreparedQuery::run`]) then replays
    /// the immutable plan on a fresh environment. For sweeps that run
    /// the same query text many times with different runtime options or
    /// jittered hardware, this removes all redundant front-end work —
    /// [`Scsq::compilations`] observes the saving.
    ///
    /// # Errors
    ///
    /// Parse, binder, or placement errors.
    pub fn prepare(&mut self, src: &str) -> Result<PreparedQuery, ScsqError> {
        self.prepare_with(src, &[])
    }

    /// Like [`Scsq::prepare`], with pre-bound query variables. Bindings
    /// are baked into the plan (they participate in binding, e.g. the
    /// §3.2 `n`), so prepare once per distinct binding set.
    ///
    /// # Errors
    ///
    /// See [`Scsq::prepare`].
    pub fn prepare_with(
        &mut self,
        src: &str,
        bindings: &[(&str, Value)],
    ) -> Result<PreparedQuery, ScsqError> {
        let owned: Vec<(String, Value)> = bindings
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        self.manager.prepare(&self.spec, src, &self.options, &owned)
    }

    /// Executes a prepared plan against the current spec and options.
    ///
    /// # Errors
    ///
    /// Runtime errors only.
    pub fn run_prepared(&self, plan: &PreparedQuery) -> Result<QueryResult, ScsqError> {
        plan.run(&self.spec, &self.options)
    }

    /// How many query statements have been compiled (parse → bind →
    /// place) by this system so far. Prepared-plan reruns do not count.
    pub fn compilations(&self) -> u64 {
        self.manager.compilations()
    }

    /// Explains a query's set-up without executing it: the stream
    /// processes it would create, the nodes their RPs land on, and the
    /// MPI/TCP streams connecting them (the paper's Figure 2 picture).
    ///
    /// # Errors
    ///
    /// Parse, binder, or placement errors.
    pub fn explain(&self, src: &str) -> Result<String, ScsqError> {
        self.manager.explain(&self.spec, src, &self.options)
    }

    /// Registers function definitions without running a query.
    ///
    /// # Errors
    ///
    /// Parse or catalog errors; also an error if `src` contains anything
    /// other than `create function` statements.
    pub fn define(&mut self, src: &str) -> Result<(), ScsqError> {
        use scsq_ql::{parse_program, Statement};
        let statements = parse_program(src)?;
        let mut defs = Vec::with_capacity(statements.len());
        for stmt in statements {
            match stmt {
                Statement::CreateFunction(def) => defs.push(def),
                _ => {
                    return Err(ScsqError::Bind(
                        "define() accepts only `create function` statements; use run() for \
                         queries"
                            .to_string(),
                    ))
                }
            }
        }
        for def in defs {
            self.manager.define(def)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_counts_arrays() {
        let mut scsq = Scsq::lofar();
        let r = scsq
            .run(
                "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(gen_array(100000,10),'bg',1);",
            )
            .unwrap();
        assert_eq!(r.values(), &[Value::Integer(10)]);
    }

    #[test]
    fn catalog_persists_across_runs() {
        let mut scsq = Scsq::lofar();
        scsq.define("create function gen2(integer sz) -> stream as gen_array(sz, 2);")
            .unwrap();
        let r = scsq
            .run(
                "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(gen2(50000),'bg',1);",
            )
            .unwrap();
        assert_eq!(r.values(), &[Value::Integer(2)]);
        assert_eq!(scsq.catalog().len(), 1);
    }

    #[test]
    fn define_rejects_query_statements() {
        let mut scsq = Scsq::lofar();
        let err = scsq.define("merge({});").unwrap_err();
        assert!(err.to_string().contains("create function"));
    }

    #[test]
    fn run_with_overrides_n() {
        let mut scsq = Scsq::lofar();
        let q = "select extract(b) from bag of sp a, sp b, integer n
                 where b=sp(count(merge(a)), 'bg')
                 and a=spv((select gen_array(10000,3)
                            from integer i where i in iota(1,n)), 'be', 1)
                 and n=2;";
        let r = scsq.run(q).unwrap();
        assert_eq!(r.values(), &[Value::Integer(6)]);
        let r = scsq.run_with(q, &[("n", Value::Integer(5))]).unwrap();
        assert_eq!(r.values(), &[Value::Integer(15)]);
    }

    #[test]
    fn prepared_queries_compile_once_and_match_run() {
        let mut scsq = Scsq::lofar();
        let q = "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(gen_array(100000,10),'bg',1);";
        let fresh = scsq.run(q).unwrap();
        assert_eq!(scsq.compilations(), 1);

        let plan = scsq.prepare(q).unwrap();
        assert_eq!(scsq.compilations(), 2);
        // Many runs, zero further compilations, bit-identical results.
        for _ in 0..3 {
            let r = scsq.run_prepared(&plan).unwrap();
            assert_eq!(r.values(), fresh.values());
            assert_eq!(r.finished(), fresh.finished());
            assert_eq!(r.first_result(), fresh.first_result());
        }
        assert_eq!(scsq.compilations(), 2);
    }

    #[test]
    fn prepared_queries_track_runtime_options() {
        // One plan serves the whole §3.1 buffer-size sweep: the MPI
        // buffer is a runtime knob, not part of the compiled shape.
        let mut scsq = Scsq::lofar();
        let q = "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(gen_array(1000000,5),'bg',1);";
        let plan = scsq.prepare(q).unwrap();
        scsq.options_mut().mpi_buffer = 100_000;
        scsq.options_mut().mpi_double = false;
        let single = scsq.run_prepared(&plan).unwrap();
        scsq.options_mut().mpi_double = true;
        let double = scsq.run_prepared(&plan).unwrap();
        assert_eq!(single.values(), double.values());
        assert!(double.finished() < single.finished());
        assert_eq!(scsq.compilations(), 1);
    }

    #[test]
    fn prepared_query_is_shareable_across_threads() {
        let mut scsq = Scsq::lofar();
        let plan = scsq
            .prepare(
                "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(gen_array(10000,4),'bg',1);",
            )
            .unwrap();
        let baseline = scsq.run_prepared(&plan).unwrap();
        let spec = scsq.spec().clone();
        let options = scsq.options().clone();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let (plan, spec, options) = (&plan, &spec, &options);
                    s.spawn(move || plan.run(spec, options).unwrap())
                })
                .collect();
            for h in handles {
                let r = h.join().unwrap();
                assert_eq!(r.values(), baseline.values());
                assert_eq!(r.finished(), baseline.finished());
            }
        });
    }

    #[test]
    fn options_control_buffering() {
        let mut scsq = Scsq::lofar();
        scsq.options_mut().mpi_buffer = 100_000;
        scsq.options_mut().mpi_double = false;
        let q = "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(gen_array(1000000,5),'bg',1);";
        let single = scsq.run(q).unwrap();
        scsq.options_mut().mpi_double = true;
        let double = scsq.run(q).unwrap();
        assert!(double.finished() < single.finished());
    }
}
