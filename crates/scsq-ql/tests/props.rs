//! Property-based tests for SCSQL syntax: printing any well-formed tree
//! and re-parsing it yields the identical tree.

use proptest::prelude::*;
use scsq_ql::{
    parse_program, parse_statement, statement_to_scsql, Expr, FunctionDef, PredOp, Predicate,
    SelectQuery, Statement, TypeName, Value, VarDecl,
};

/// Identifiers that cannot collide with keywords.
fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("no keywords", |s| {
        !matches!(
            s.as_str(),
            "select"
                | "from"
                | "where"
                | "and"
                | "in"
                | "create"
                | "function"
                | "as"
                | "bag"
                | "of"
        )
    })
}

fn arb_literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Integer),
        // Finite reals that print re-parsably.
        (-1e12f64..1e12)
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Real),
        "[a-z0-9 _.]{0,12}".prop_map(Value::Str),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        arb_ident().prop_map(Expr::Var),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (arb_ident(), proptest::collection::vec(inner.clone(), 0..4))
                .prop_map(|(name, args)| Expr::Call { name, args }),
            proptest::collection::vec(inner, 0..4).prop_map(Expr::Set),
        ]
    })
}

fn arb_type() -> impl Strategy<Value = TypeName> {
    prop_oneof![
        Just(TypeName::Sp),
        Just(TypeName::Integer),
        Just(TypeName::Real),
        Just(TypeName::String),
        Just(TypeName::Stream),
        Just(TypeName::Object),
    ]
}

fn arb_decl() -> impl Strategy<Value = VarDecl> {
    (arb_ident(), arb_type(), any::<bool>()).prop_map(|(name, ty, bag)| VarDecl { name, ty, bag })
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    (
        arb_ident(),
        prop_oneof![Just(PredOp::Eq), Just(PredOp::In)],
        arb_expr(),
    )
        .prop_map(|(v, op, rhs)| Predicate {
            lhs: Expr::Var(v),
            op,
            rhs,
        })
}

fn arb_select() -> impl Strategy<Value = SelectQuery> {
    (
        proptest::collection::vec(arb_expr(), 1..3),
        proptest::collection::vec(arb_decl(), 1..4),
        proptest::collection::vec(arb_pred(), 0..4),
    )
        .prop_map(|(head, decls, preds)| SelectQuery { head, decls, preds })
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        arb_select().prop_map(Statement::Select),
        arb_expr().prop_map(Statement::Expr),
        (
            arb_ident(),
            proptest::collection::vec((arb_ident(), arb_type()), 0..3),
            arb_type(),
            arb_expr(),
        )
            .prop_map(|(name, params, returns, body)| {
                Statement::CreateFunction(FunctionDef {
                    name,
                    params,
                    returns,
                    body,
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// parse(print(tree)) == tree for arbitrary well-formed trees.
    #[test]
    fn print_parse_round_trip(stmt in arb_statement()) {
        let printed = statement_to_scsql(&stmt);
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        prop_assert_eq!(reparsed, stmt, "printed: {}", printed);
    }

    /// Printing is deterministic and parse-stable under a second cycle.
    #[test]
    fn printing_is_idempotent(stmt in arb_statement()) {
        let once = statement_to_scsql(&stmt);
        let twice = statement_to_scsql(&parse_statement(&once).expect("parses"));
        prop_assert_eq!(once, twice);
    }

    /// Multi-statement programs round-trip too.
    #[test]
    fn programs_round_trip(stmts in proptest::collection::vec(arb_statement(), 1..4)) {
        let text: String = stmts.iter().map(|s| statement_to_scsql(s) + "\n").collect();
        let reparsed = parse_program(&text).expect("program parses");
        prop_assert_eq!(reparsed, stmts);
    }
}
