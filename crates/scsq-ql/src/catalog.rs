//! The function catalog: SCSQL's built-in vocabulary plus user-defined
//! query functions.
//!
//! §2.4 introduces the built-ins used throughout the paper: `sp(s, c)`
//! assigns a subquery to a new stream process, `spv(s, c)` does so for a
//! set of subqueries, `extract(p)` requests elements from an SP,
//! `merge(p)` generalizes extract over a bag of SPs, `streamof(e)` turns
//! any expression into a stream, `iota(n, m)` generates integer ranges,
//! and the node-allocation functions `urr`, `inPset`, `psetrr` feed the
//! node-selection algorithm. `create function` registers user functions
//! like the paper's `radix2`.

use crate::ast::FunctionDef;
use crate::error::QlError;
use std::collections::HashMap;

/// A built-in SCSQL function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `sp(subquery, cluster?, allocseq?)` — assign a subquery to a new
    /// stream process (§2.4).
    Sp,
    /// `spv(subqueries, cluster?, allocseq?)` — assign each subquery in a
    /// set to a new stream process; returns a bag of SP handles.
    Spv,
    /// `extract(p)` — request elements from an SP's subquery.
    Extract,
    /// `merge(p)` — request elements from each SP in a bag; terminates
    /// when the last one does.
    Merge,
    /// `streamof(e)` — turn any expression's output into a stream.
    Streamof,
    /// `count(b)` — number of elements in a bag/stream.
    Count,
    /// `sum(b)` — sum of the elements in a bag/stream.
    Sum,
    /// `max(b)` — maximum of the elements in a bag/stream.
    Max,
    /// `min(b)` — minimum of the elements in a bag/stream.
    Min,
    /// `avg(b)` — mean of the elements in a bag/stream.
    Avg,
    /// `iota(n, m)` — all integers from n to m.
    Iota,
    /// `gen_array(size, n)` — finite stream of n synthetic arrays of
    /// `size` bytes each (§3.1's workload generator).
    GenArray,
    /// `urr(cluster)` — round-robin allocation sequence over a cluster's
    /// available nodes (§3.2 Query 2).
    Urr,
    /// `inPset(k)` — allocation sequence confined to pset k (§3.2
    /// Query 3); `k` is 1-based in queries.
    InPset,
    /// `psetrr()` — allocation sequence taking each successive node from
    /// a new pset (§3.2 Query 5).
    PsetRr,
    /// `grep(pattern, file)` — matching lines of a (synthetic) file; the
    /// paper's mapreduce example.
    Grep,
    /// `filename(i)` — the i-th file name of the grep corpus table.
    Filename,
    /// `fft(s)` — FFT of each array element of a stream.
    Fft,
    /// `power(s)` — per-bin power (squared magnitude) of each array.
    Power,
    /// `odd(s)` — odd-indexed elements of each array (radix-2
    /// decimation).
    Odd,
    /// `even(s)` — even-indexed elements of each array.
    Even,
    /// `radixcombine(s)` — combine partial FFTs (§2.4's radix2).
    RadixCombine,
    /// `receiver(name)` — a named external stream source.
    Receiver,
    /// `winagg(s, size, slide, fn)` — sliding-window aggregate over a
    /// stream ("SCSQ features all common stream operators including
    /// window aggregation", §4).
    WindowAgg,
    /// `take(s, k)` — the first k elements of a stream: a *stop
    /// condition* "in the query that makes the stream finite" (§2.2).
    Take,
    /// `nodes(cluster)` — the currently available node numbers of a
    /// cluster, from its CNDB; usable as an explicit allocation
    /// sequence.
    Nodes,
    /// `metrics(p)` — the self-measurement source: a stream of delivery
    /// samples for every channel leaving SP `p` (or any SP of a bag).
    /// Each sample is a bag `{channel, time_ns, bytes}` emitted when a
    /// receive buffer becomes visible to the subscriber, mirroring the
    /// paper's design of measuring communication with stream queries
    /// over the system itself (§1, §3).
    Metrics,
    /// `bandwidth(s)` — terminal aggregate over a `metrics` stream:
    /// total delivered bytes divided by the time of the last sample, in
    /// bytes/second (the Fig. 6 quotient, computed inside the query).
    Bandwidth,
    /// `arith(s, op, k)` — elementwise arithmetic against a constant:
    /// `op` is one of `'+'`, `'-'`, `'*'`; integer ⊕ integer stays
    /// integer (wrapping), any real operand widens to real.
    Arith,
    /// `cmp(s, op, k)` — elementwise comparison against a constant:
    /// `op` is one of `'<'`, `'<='`, `'>'`, `'>='`, `'='`, `'!='`;
    /// emits one boolean per element.
    Cmp,
    /// `filter(s, op, k)` — keep the elements for which `cmp(op, k)`
    /// holds, drop the rest (a selection over the stream).
    Filter,
    /// `latency(p)` — the latency self-measurement source: a stream of
    /// per-element ingress→egress latencies, in simulated nanoseconds,
    /// for every channel leaving SP `p` (or any SP of a bag). One
    /// integer is emitted per delivered element when its receive
    /// buffer becomes visible to the subscriber, extending the paper's
    /// self-measurement premise from throughput to the time dimension.
    Latency,
    /// `quantile(s, q)` — terminal aggregate over a numeric stream:
    /// the value at quantile `q` (in `[0, 1]`) of a log-bucketed
    /// histogram of the elements, emitted at end of stream.
    Quantile,
}

impl Builtin {
    /// Catalog spelling → builtin. Names are matched case-sensitively
    /// except `inPset`, which the paper also spells `inpset`.
    pub fn lookup(name: &str) -> Option<Builtin> {
        Some(match name {
            "sp" => Builtin::Sp,
            "spv" => Builtin::Spv,
            "extract" => Builtin::Extract,
            "merge" => Builtin::Merge,
            "streamof" => Builtin::Streamof,
            "count" => Builtin::Count,
            "sum" => Builtin::Sum,
            "max" => Builtin::Max,
            "min" => Builtin::Min,
            "avg" => Builtin::Avg,
            "iota" => Builtin::Iota,
            "gen_array" => Builtin::GenArray,
            "urr" => Builtin::Urr,
            "inPset" | "inpset" => Builtin::InPset,
            "psetrr" => Builtin::PsetRr,
            "grep" => Builtin::Grep,
            "filename" => Builtin::Filename,
            "fft" => Builtin::Fft,
            "power" => Builtin::Power,
            "odd" => Builtin::Odd,
            "even" => Builtin::Even,
            "radixcombine" => Builtin::RadixCombine,
            "receiver" => Builtin::Receiver,
            "winagg" => Builtin::WindowAgg,
            "take" => Builtin::Take,
            "nodes" => Builtin::Nodes,
            "metrics" => Builtin::Metrics,
            "bandwidth" => Builtin::Bandwidth,
            "arith" => Builtin::Arith,
            "cmp" => Builtin::Cmp,
            "filter" => Builtin::Filter,
            "latency" => Builtin::Latency,
            "quantile" => Builtin::Quantile,
            _ => return None,
        })
    }

    /// Allowed argument counts (inclusive range).
    pub fn arity(self) -> (usize, usize) {
        match self {
            Builtin::Sp | Builtin::Spv => (1, 3),
            Builtin::Extract
            | Builtin::Merge
            | Builtin::Streamof
            | Builtin::Count
            | Builtin::Sum
            | Builtin::Max
            | Builtin::Min
            | Builtin::Avg
            | Builtin::Urr
            | Builtin::InPset
            | Builtin::Fft
            | Builtin::Power
            | Builtin::Odd
            | Builtin::Even
            | Builtin::RadixCombine
            | Builtin::Receiver
            | Builtin::Nodes
            | Builtin::Metrics
            | Builtin::Bandwidth
            | Builtin::Latency
            | Builtin::Filename => (1, 1),
            Builtin::Iota
            | Builtin::GenArray
            | Builtin::Grep
            | Builtin::Take
            | Builtin::Quantile => (2, 2),
            Builtin::Arith | Builtin::Cmp | Builtin::Filter => (3, 3),
            Builtin::PsetRr => (0, 0),
            Builtin::WindowAgg => (4, 4),
        }
    }
}

/// The catalog: built-ins plus registered user functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    functions: HashMap<String, FunctionDef>,
}

impl Catalog {
    /// An empty catalog (built-ins are always visible).
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a user-defined function.
    ///
    /// # Errors
    ///
    /// [`QlError::Catalog`] if the name collides with a built-in or an
    /// existing user function.
    pub fn define(&mut self, def: FunctionDef) -> Result<(), QlError> {
        if Builtin::lookup(&def.name).is_some() {
            return Err(QlError::Catalog(format!(
                "`{}` is a built-in function and cannot be redefined",
                def.name
            )));
        }
        if self.functions.contains_key(&def.name) {
            return Err(QlError::Catalog(format!(
                "function `{}` is already defined",
                def.name
            )));
        }
        self.functions.insert(def.name.clone(), def);
        Ok(())
    }

    /// Looks up a user-defined function.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.get(name)
    }

    /// Resolves a call-site name: builtin, user function, or unknown.
    ///
    /// # Errors
    ///
    /// [`QlError::Catalog`] for unknown names or arity mismatches
    /// (user-function arity is checked by the engine binder, which knows
    /// the argument values).
    pub fn resolve(&self, name: &str, argc: usize) -> Result<Resolved<'_>, QlError> {
        if let Some(b) = Builtin::lookup(name) {
            let (lo, hi) = b.arity();
            if argc < lo || argc > hi {
                return Err(QlError::Catalog(format!(
                    "`{name}` expects {lo}..={hi} arguments, got {argc}"
                )));
            }
            return Ok(Resolved::Builtin(b));
        }
        if let Some(def) = self.functions.get(name) {
            if def.params.len() != argc {
                return Err(QlError::Catalog(format!(
                    "`{name}` expects {} arguments, got {argc}",
                    def.params.len()
                )));
            }
            return Ok(Resolved::User(def));
        }
        Err(QlError::Catalog(format!("unknown function `{name}`")))
    }

    /// The user-defined functions, sorted by name (a deterministic
    /// listing for `show catalog`).
    pub fn definitions(&self) -> Vec<&FunctionDef> {
        let mut defs: Vec<&FunctionDef> = self.functions.values().collect();
        defs.sort_by(|a, b| a.name.cmp(&b.name));
        defs
    }

    /// Number of user-defined functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether no user functions are defined.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

/// Result of resolving a call-site name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Resolved<'a> {
    /// A built-in.
    Builtin(Builtin),
    /// A user-defined function.
    User(&'a FunctionDef),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, TypeName};

    fn dummy_fn(name: &str, params: usize) -> FunctionDef {
        FunctionDef {
            name: name.to_string(),
            params: (0..params)
                .map(|i| (format!("p{i}"), TypeName::Object))
                .collect(),
            returns: TypeName::Stream,
            body: Expr::var("p0"),
        }
    }

    #[test]
    fn builtins_resolve_with_correct_arity() {
        let cat = Catalog::new();
        assert!(matches!(
            cat.resolve("sp", 3),
            Ok(Resolved::Builtin(Builtin::Sp))
        ));
        assert!(matches!(
            cat.resolve("sp", 1),
            Ok(Resolved::Builtin(Builtin::Sp))
        ));
        assert!(cat.resolve("sp", 4).is_err());
        assert!(matches!(
            cat.resolve("psetrr", 0),
            Ok(Resolved::Builtin(Builtin::PsetRr))
        ));
        assert!(cat.resolve("psetrr", 1).is_err());
    }

    #[test]
    fn in_pset_accepts_paper_spelling() {
        assert_eq!(Builtin::lookup("inPset"), Some(Builtin::InPset));
        assert_eq!(Builtin::lookup("inpset"), Some(Builtin::InPset));
    }

    #[test]
    fn user_functions_register_and_resolve() {
        let mut cat = Catalog::new();
        cat.define(dummy_fn("radix2", 1)).unwrap();
        assert!(matches!(cat.resolve("radix2", 1), Ok(Resolved::User(_))));
        assert!(cat.resolve("radix2", 2).is_err());
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn builtin_names_cannot_be_shadowed() {
        let mut cat = Catalog::new();
        let err = cat.define(dummy_fn("merge", 1)).unwrap_err();
        assert!(err.to_string().contains("built-in"));
    }

    #[test]
    fn duplicate_definition_is_rejected() {
        let mut cat = Catalog::new();
        cat.define(dummy_fn("f", 1)).unwrap();
        assert!(cat.define(dummy_fn("f", 1)).is_err());
    }

    #[test]
    fn unknown_function_is_reported() {
        let err = Catalog::new().resolve("nope", 0).unwrap_err();
        assert_eq!(err.to_string(), "catalog error: unknown function `nope`");
    }
}
