//! Pretty-printing of SCSQL syntax trees back to query text.
//!
//! The printer emits canonical SCSQL that re-parses to the same tree
//! (`parse ∘ print = identity`), which the property suite exploits, and
//! which the engine uses when echoing registered sub-queries in
//! diagnostics.

use crate::ast::{Expr, FunctionDef, PredOp, Predicate, SelectQuery, Statement, VarDecl};
use crate::value::{ArrayData, Value};
use std::fmt;

/// Renders a statement as canonical SCSQL text (with trailing `;`).
pub fn statement_to_scsql(stmt: &Statement) -> String {
    let mut out = String::new();
    write_statement(&mut out, stmt).expect("String formatting never fails");
    out
}

/// Renders an expression as canonical SCSQL text.
pub fn expr_to_scsql(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr).expect("String formatting never fails");
    out
}

fn write_statement(f: &mut impl fmt::Write, stmt: &Statement) -> fmt::Result {
    match stmt {
        Statement::Select(q) => {
            write_select(f, q)?;
            f.write_str(";")
        }
        Statement::Expr(e) => {
            write_expr(f, e)?;
            f.write_str(";")
        }
        Statement::CreateFunction(def) => {
            write_function(f, def)?;
            f.write_str(";")
        }
        Statement::Prepare { name, body } => {
            write!(f, "prepare {name} as ")?;
            match body.as_ref() {
                Statement::Select(q) => write_select(f, q)?,
                Statement::Expr(e) => write_expr(f, e)?,
                // The parser only produces select/expr bodies; render
                // degenerate hand-built trees recursively anyway.
                other => write_statement(f, other)?,
            }
            f.write_str(";")
        }
        Statement::Run(name) => write!(f, "run {name};"),
        Statement::ShowCatalog => f.write_str("show catalog;"),
    }
}

fn write_function(f: &mut impl fmt::Write, def: &FunctionDef) -> fmt::Result {
    write!(f, "create function {}(", def.name)?;
    for (i, (name, ty)) in def.params.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{ty} {name}")?;
    }
    write!(f, ") -> {} as ", def.returns)?;
    write_expr(f, &def.body)
}

fn write_select(f: &mut impl fmt::Write, q: &SelectQuery) -> fmt::Result {
    f.write_str("select ")?;
    for (i, h) in q.head.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write_expr(f, h)?;
    }
    f.write_str(" from ")?;
    for (i, d) in q.decls.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write_decl(f, d)?;
    }
    if !q.preds.is_empty() {
        f.write_str(" where ")?;
        for (i, p) in q.preds.iter().enumerate() {
            if i > 0 {
                f.write_str(" and ")?;
            }
            write_pred(f, p)?;
        }
    }
    Ok(())
}

fn write_decl(f: &mut impl fmt::Write, d: &VarDecl) -> fmt::Result {
    if d.bag {
        f.write_str("bag of ")?;
    }
    write!(f, "{} {}", d.ty, d.name)
}

fn write_pred(f: &mut impl fmt::Write, p: &Predicate) -> fmt::Result {
    write_expr(f, &p.lhs)?;
    match p.op {
        PredOp::Eq => f.write_str("=")?,
        PredOp::In => f.write_str(" in ")?,
    }
    write_expr(f, &p.rhs)
}

fn write_expr(f: &mut impl fmt::Write, e: &Expr) -> fmt::Result {
    match e {
        Expr::Literal(v) => write_literal(f, v),
        Expr::Var(name) => f.write_str(name),
        Expr::Call { name, args } => {
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_expr(f, a)?;
            }
            f.write_str(")")
        }
        Expr::Set(items) => {
            f.write_str("{")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_expr(f, item)?;
            }
            f.write_str("}")
        }
        Expr::Select(q) => {
            f.write_str("(")?;
            write_select(f, q)?;
            f.write_str(")")
        }
    }
}

fn write_literal(f: &mut impl fmt::Write, v: &Value) -> fmt::Result {
    match v {
        Value::Integer(i) => write!(f, "{i}"),
        // Keep reals re-parsable: always include a decimal point or
        // exponent so the lexer sees a real, not an integer.
        Value::Real(r) => {
            let s = format!("{r}");
            if s.contains('.') || s.contains('e') || s.contains('E') {
                f.write_str(&s)
            } else {
                write!(f, "{s}.0")
            }
        }
        Value::Str(s) => write!(f, "'{s}'"),
        Value::Bool(b) => write!(f, "{b}"),
        // Non-literal values cannot appear in parsed trees; print a
        // diagnostic form (not re-parsable).
        Value::Array(ArrayData::Synthetic { bytes }) => write!(f, "<array {bytes}B>"),
        other => write!(f, "<{other}>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn round_trip(src: &str) {
        let parsed = parse_statement(src).expect("parses");
        let printed = statement_to_scsql(&parsed);
        let reparsed =
            parse_statement(&printed).unwrap_or_else(|e| panic!("reparse of `{printed}`: {e}"));
        assert_eq!(reparsed, parsed, "printed text: {printed}");
    }

    #[test]
    fn paper_queries_round_trip() {
        round_trip(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(3000000,100),'bg',1);",
        );
        round_trip(
            "select extract(c) from bag of sp a, bag of sp b, sp c, integer n
             where c=sp(streamof(sum(merge(b))), 'bg')
             and b=spv((select streamof(count(extract(p)))
                        from sp p where p in a), 'bg', psetrr())
             and a=spv((select gen_array(3000000,100)
                        from integer i where i in iota(1,n)), 'be', urr('be'))
             and n=4;",
        );
        round_trip(
            "merge(spv(select grep(\"pattern\", filename(i))
                       from integer i where i in iota(1,1000)));",
        );
        round_trip(
            "create function radix2(string s) -> stream
             as select radixcombine(merge({a,b}))
             from sp a, sp b, sp c
             where a=sp(fft(odd(extract(c))))
             and b=sp(fft(even(extract(c))))
             and c=sp(receiver(s));",
        );
    }

    #[test]
    fn session_statements_round_trip() {
        round_trip(
            "prepare p2p as select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(3000000,100),'bg',1);",
        );
        round_trip("prepare g as merge({});");
        round_trip("run p2p;");
        round_trip("show catalog;");
        let stmt = parse_statement("SHOW  CATALOG ;").unwrap();
        assert_eq!(statement_to_scsql(&stmt), "show catalog;");
    }

    #[test]
    fn reals_stay_reals() {
        round_trip("streamof(2.0);");
        round_trip("streamof(1.5);");
        round_trip("streamof(-3.25);");
    }

    #[test]
    fn printed_text_is_single_line_canonical() {
        let stmt = parse_statement("select  x  from  sp   a ;").unwrap();
        assert_eq!(statement_to_scsql(&stmt), "select x from sp a;");
    }

    #[test]
    fn expr_printer_handles_sets_and_calls() {
        let stmt = parse_statement("count(merge({a, b}));").unwrap();
        let Statement::Expr(e) = &stmt else { panic!() };
        assert_eq!(expr_to_scsql(e), "count(merge({a, b}))");
    }
}
