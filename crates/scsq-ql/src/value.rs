//! The SCSQL object model.
//!
//! "All data in SCSQ is represented by *objects* in SCSQL" (§2.4, Fig 4).
//! A stream is an object representing a possibly unbounded sequence of
//! objects; stream processes are objects too, so queries can pass them
//! around, put them in bags, and merge over them.

use std::fmt;

/// Handle to a stream process (SP) — the first-class process objects of
/// §2.4. Handles are issued by the engine's client manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpHandle(pub u64);

/// Handle to a stream object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamHandle(pub u64);

/// Payload of an SCSQL array object.
///
/// The paper's experiments stream "arrays of numerical data" of 3 MB
/// each; materializing them would cost gigabytes of host memory for no
/// benefit, so [`ArrayData::Synthetic`] carries only the byte size while
/// behaving as one element for `count()` and friends. Real workloads
/// (FFT, examples) use materialized variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    /// A materialized array of reals.
    Real(Vec<f64>),
    /// A materialized array of complex numbers as (re, im) pairs (the
    /// FFT pipeline of the paper's `radix2` example).
    Complex(Vec<(f64, f64)>),
    /// A synthetic array: `bytes` of numerical data exist only in the
    /// simulation's accounting.
    Synthetic {
        /// Marshaled size in bytes.
        bytes: u64,
    },
}

impl ArrayData {
    /// Number of scalar elements (synthetic arrays report their byte
    /// count divided by the 8-byte element size the paper's "arrays of
    /// numerical data" imply).
    pub fn len(&self) -> usize {
        match self {
            ArrayData::Real(v) => v.len(),
            ArrayData::Complex(v) => v.len(),
            ArrayData::Synthetic { bytes } => (*bytes / 8) as usize,
        }
    }

    /// Whether the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marshaled payload size in bytes (excluding the type tag).
    pub fn byte_size(&self) -> u64 {
        match self {
            ArrayData::Real(v) => 8 * v.len() as u64,
            ArrayData::Complex(v) => 16 * v.len() as u64,
            ArrayData::Synthetic { bytes } => *bytes,
        }
    }
}

/// An SCSQL object.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Integer(i64),
    /// 64-bit float.
    Real(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Array of numerical data.
    Array(ArrayData),
    /// Bag (unordered collection; the paper's `bag of sp` and the result
    /// of `spv`).
    Bag(Vec<Value>),
    /// Stream process handle.
    Sp(SpHandle),
    /// Stream handle.
    Stream(StreamHandle),
}

impl Value {
    /// A synthetic numerical array of `bytes` bytes (what `gen_array`
    /// produces).
    pub fn synthetic_array(bytes: u64) -> Value {
        Value::Array(ArrayData::Synthetic { bytes })
    }

    /// The SCSQL type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Integer(_) => "integer",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Bag(_) => "bag",
            Value::Sp(_) => "sp",
            Value::Stream(_) => "stream",
        }
    }

    /// The integer inside, if this is an integer.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// The float inside, accepting integers (SQL-style numeric widening).
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            Value::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The SP handle inside, if this is a stream process.
    pub fn as_sp(&self) -> Option<SpHandle> {
        match self {
            Value::Sp(h) => Some(*h),
            _ => None,
        }
    }

    /// The bag contents, if this is a bag.
    pub fn as_bag(&self) -> Option<&[Value]> {
        match self {
            Value::Bag(items) => Some(items),
            _ => None,
        }
    }

    /// Marshaled size of this object in bytes — what the sender driver
    /// charges when packing it into stream buffers (§2.3 step ii). For
    /// materialized values this equals the exact wire length of the
    /// codec (`scsq_ql::codec`); synthetic arrays charge their simulated
    /// payload instead of their 9-byte accounting header.
    pub fn marshaled_size(&self) -> u64 {
        1 + match self {
            Value::Integer(_) | Value::Real(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 4 + s.len() as u64,
            Value::Array(a) => 8 + a.byte_size(),
            Value::Bag(items) => 4 + items.iter().map(Value::marshaled_size).sum::<u64>(),
            Value::Sp(_) | Value::Stream(_) => 8,
        }
    }

    /// Whether this value owns no heap storage, so cloning it is a
    /// plain bit copy. Inline values qualify for the single-tuple batch
    /// fast path ([`crate::Batch::one`]): handing one off never touches
    /// the allocator, and fanning it out to several subscribers costs
    /// no more than sharing an `Arc` would.
    pub fn is_inline(&self) -> bool {
        matches!(
            self,
            Value::Integer(_)
                | Value::Real(_)
                | Value::Bool(_)
                | Value::Sp(_)
                | Value::Stream(_)
                | Value::Array(ArrayData::Synthetic { .. })
        )
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::Array(ArrayData::Real(v))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Integer(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Array(ArrayData::Synthetic { bytes }) => write!(f, "array<{bytes}B>"),
            Value::Array(a) => write!(f, "array[{}]", a.len()),
            Value::Bag(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Sp(h) => write!(f, "sp#{}", h.0),
            Value::Stream(h) => write!(f, "stream#{}", h.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marshaled_sizes_are_tag_plus_payload() {
        assert_eq!(Value::Integer(7).marshaled_size(), 9);
        assert_eq!(Value::Real(1.5).marshaled_size(), 9);
        assert_eq!(Value::Bool(true).marshaled_size(), 2);
        assert_eq!(Value::from("abc").marshaled_size(), 1 + 4 + 3);
        assert_eq!(
            Value::synthetic_array(3_000_000).marshaled_size(),
            3_000_009
        );
        assert_eq!(
            Value::from(vec![1.0, 2.0, 3.0]).marshaled_size(),
            1 + 8 + 24
        );
    }

    #[test]
    fn bag_size_is_recursive() {
        let bag = Value::Bag(vec![Value::Integer(1), Value::from("xy")]);
        assert_eq!(bag.marshaled_size(), 1 + 4 + 9 + (1 + 4 + 2));
    }

    #[test]
    fn synthetic_array_counts_as_one_element_with_many_scalars() {
        let v = Value::synthetic_array(3_000_000);
        match v {
            Value::Array(ref a) => {
                assert_eq!(a.len(), 375_000);
                assert!(!a.is_empty());
            }
            _ => panic!("not an array"),
        }
    }

    #[test]
    fn accessors_filter_by_type() {
        assert_eq!(Value::Integer(3).as_integer(), Some(3));
        assert_eq!(Value::Integer(3).as_real(), Some(3.0));
        assert_eq!(Value::Real(2.5).as_real(), Some(2.5));
        assert_eq!(Value::Real(2.5).as_integer(), None);
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Integer(1).as_bool(), None);
        assert_eq!(Value::Sp(SpHandle(4)).as_sp(), Some(SpHandle(4)));
        assert!(Value::Bag(vec![]).as_bag().unwrap().is_empty());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::Integer(42).to_string(), "42");
        assert_eq!(Value::from("bg").to_string(), "'bg'");
        assert_eq!(
            Value::Bag(vec![Value::Integer(1), Value::Integer(2)]).to_string(),
            "{1, 2}"
        );
        assert_eq!(Value::synthetic_array(100).to_string(), "array<100B>");
        assert_eq!(Value::Sp(SpHandle(2)).to_string(), "sp#2");
    }

    #[test]
    fn type_names_cover_all_variants() {
        let variants = [
            Value::Integer(0),
            Value::Real(0.0),
            Value::from(""),
            Value::Bool(false),
            Value::synthetic_array(1),
            Value::Bag(vec![]),
            Value::Sp(SpHandle(0)),
            Value::Stream(StreamHandle(0)),
        ];
        let names: Vec<_> = variants.iter().map(|v| v.type_name()).collect();
        assert_eq!(
            names,
            ["integer", "real", "string", "boolean", "array", "bag", "sp", "stream"]
        );
    }
}
