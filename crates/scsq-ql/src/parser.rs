//! Recursive-descent parser for SCSQL.
//!
//! Accepts the full query vocabulary used in the paper: select queries
//! with typed `from` declarations (including `bag of`), `where` clauses
//! of `=`/`in` conjuncts, nested select subqueries as arguments (with or
//! without extra parentheses), set construction `{a,b}`, and
//! `create function … -> type as …` definitions.

use crate::ast::{Expr, FunctionDef, PredOp, Predicate, SelectQuery, Statement, TypeName, VarDecl};
use crate::error::QlError;
use crate::lexer::{Lexer, Token, TokenKind};
use crate::value::Value;

/// Parses a single statement (must end with `;` or end of input).
///
/// # Errors
///
/// [`QlError::Lex`] or [`QlError::Parse`] with source positions.
///
/// ```
/// use scsq_ql::parse_statement;
/// let stmt = parse_statement("select count(extract(a)) from sp a where a=sp(receiver('s'), 'bg');")?;
/// # Ok::<(), scsq_ql::QlError>(())
/// ```
pub fn parse_statement(src: &str) -> Result<Statement, QlError> {
    let mut stmts = parse_program(src)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        n => Err(QlError::parse(
            1,
            1,
            format!("expected exactly one statement, found {n}"),
        )),
    }
}

/// Parses a sequence of `;`-terminated statements.
///
/// # Errors
///
/// [`QlError::Lex`] or [`QlError::Parse`] with source positions.
pub fn parse_program(src: &str) -> Result<Vec<Statement>, QlError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at(&TokenKind::Eof) {
        stmts.push(p.statement()?);
        // Statement terminator: one or more semicolons.
        let mut saw_semi = false;
        while p.at(&TokenKind::Semi) {
            p.bump();
            saw_semi = true;
        }
        if !saw_semi && !p.at(&TokenKind::Eof) {
            return Err(p.err("expected `;` after statement"));
        }
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> QlError {
        let t = self.peek();
        QlError::parse(t.line, t.col, format!("{}, found {}", msg.into(), t.kind))
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, QlError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {kind}")))
        }
    }

    fn ident(&mut self) -> Result<String, QlError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            _ => Err(self.err("expected an identifier")),
        }
    }

    /// The token kind `n` positions ahead (saturating at end of input).
    fn kind_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    /// Whether the token `n` ahead is the identifier `word`
    /// (case-insensitive, like the reserved keywords).
    fn word_at(&self, n: usize, word: &str) -> bool {
        matches!(self.kind_at(n), TokenKind::Ident(s) if s.eq_ignore_ascii_case(word))
    }

    fn statement(&mut self) -> Result<Statement, QlError> {
        // The session statements keep `prepare`, `run`, and `show`
        // unreserved: they are ordinary identifiers everywhere except in
        // the exact statement-initial shapes below, none of which parsed
        // before (so no existing program changes meaning).
        if self.word_at(0, "prepare")
            && matches!(self.kind_at(1), TokenKind::Ident(_))
            && self.kind_at(2) == &TokenKind::As
        {
            return self.prepare_statement();
        }
        if self.word_at(0, "run")
            && matches!(self.kind_at(1), TokenKind::Ident(_))
            && matches!(self.kind_at(2), TokenKind::Semi | TokenKind::Eof)
        {
            self.bump();
            return Ok(Statement::Run(self.ident()?));
        }
        if self.word_at(0, "show") && self.word_at(1, "catalog") {
            self.bump();
            self.bump();
            return Ok(Statement::ShowCatalog);
        }
        match self.peek().kind {
            TokenKind::Create => self.create_function().map(Statement::CreateFunction),
            TokenKind::Select => self.select_query().map(Statement::Select),
            _ => self.expr().map(Statement::Expr),
        }
    }

    fn prepare_statement(&mut self) -> Result<Statement, QlError> {
        self.bump(); // `prepare`
        let name = self.ident()?;
        self.expect(TokenKind::As)?;
        let body = if self.at(&TokenKind::Select) {
            Statement::Select(self.select_query()?)
        } else if self.at(&TokenKind::Create) {
            return Err(self.err("`prepare` takes a query, not a function definition"));
        } else {
            Statement::Expr(self.expr()?)
        };
        Ok(Statement::Prepare {
            name,
            body: Box::new(body),
        })
    }

    fn create_function(&mut self) -> Result<FunctionDef, QlError> {
        self.expect(TokenKind::Create)?;
        self.expect(TokenKind::Function)?;
        let name = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let ty = self.type_name()?;
                let pname = self.ident()?;
                params.push((pname, ty));
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Arrow)?;
        let returns = self.type_name()?;
        self.expect(TokenKind::As)?;
        let body = if self.at(&TokenKind::Select) {
            Expr::Select(Box::new(self.select_query()?))
        } else {
            self.expr()?
        };
        Ok(FunctionDef {
            name,
            params,
            returns,
            body,
        })
    }

    fn type_name(&mut self) -> Result<TypeName, QlError> {
        let t = self.peek().clone();
        let name = self.ident()?;
        TypeName::parse(&name)
            .ok_or_else(|| QlError::parse(t.line, t.col, format!("unknown type name `{name}`")))
    }

    fn select_query(&mut self) -> Result<SelectQuery, QlError> {
        self.expect(TokenKind::Select)?;
        let mut head = vec![self.expr()?];
        while self.at(&TokenKind::Comma) {
            self.bump();
            head.push(self.expr()?);
        }
        self.expect(TokenKind::From)?;
        let mut decls = vec![self.var_decl()?];
        while self.at(&TokenKind::Comma) {
            self.bump();
            decls.push(self.var_decl()?);
        }
        let mut preds = Vec::new();
        if self.at(&TokenKind::Where) {
            self.bump();
            preds.push(self.predicate()?);
            while self.at(&TokenKind::And) {
                self.bump();
                preds.push(self.predicate()?);
            }
        }
        Ok(SelectQuery { head, decls, preds })
    }

    fn var_decl(&mut self) -> Result<VarDecl, QlError> {
        let bag = if self.at(&TokenKind::Bag) {
            self.bump();
            self.expect(TokenKind::Of)?;
            true
        } else {
            false
        };
        let ty = self.type_name()?;
        let name = self.ident()?;
        Ok(VarDecl { name, ty, bag })
    }

    fn predicate(&mut self) -> Result<Predicate, QlError> {
        let lhs = self.expr()?;
        let op = match self.peek().kind {
            TokenKind::Eq => {
                self.bump();
                PredOp::Eq
            }
            TokenKind::In => {
                self.bump();
                PredOp::In
            }
            _ => return Err(self.err("expected `=` or `in` in predicate")),
        };
        let rhs = self.expr()?;
        Ok(Predicate { lhs, op, rhs })
    }

    fn expr(&mut self) -> Result<Expr, QlError> {
        match self.peek().kind.clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Integer(i)))
            }
            TokenKind::Real(r) => {
                self.bump();
                Ok(Expr::Literal(Value::Real(r)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Select => Ok(Expr::Select(Box::new(self.select_query()?))),
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBrace => {
                self.bump();
                let mut items = Vec::new();
                if !self.at(&TokenKind::RBrace) {
                    items.push(self.expr()?);
                    while self.at(&TokenKind::Comma) {
                        self.bump();
                        items.push(self.expr()?);
                    }
                }
                self.expect(TokenKind::RBrace)?;
                Ok(Expr::Set(items))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        args.push(self.expr()?);
                        while self.at(&TokenKind::Comma) {
                            self.bump();
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's intra-BG point-to-point query (§3.1), verbatim modulo
    /// whitespace.
    const P2P: &str = "select extract(b)
        from sp a, sp b
        where b=sp(streamof(count(extract(a))), 'bg', 0)
        and a=sp(gen_array(3000000,100),'bg',1);";

    #[test]
    fn parses_p2p_query() {
        let stmt = parse_statement(P2P).unwrap();
        let Statement::Select(q) = stmt else {
            panic!("expected select");
        };
        assert_eq!(q.head.len(), 1);
        assert_eq!(q.decls.len(), 2);
        assert_eq!(q.preds.len(), 2);
        assert_eq!(q.decls[0].ty, TypeName::Sp);
        assert!(!q.decls[0].bag);
        // b = sp(streamof(count(extract(a))), 'bg', 0)
        let Predicate { lhs, op, rhs } = &q.preds[0];
        assert_eq!(lhs, &Expr::var("b"));
        assert_eq!(*op, PredOp::Eq);
        let Expr::Call { name, args } = rhs else {
            panic!("expected sp call")
        };
        assert_eq!(name, "sp");
        assert_eq!(args.len(), 3);
        assert_eq!(args[1], Expr::Literal(Value::from("bg")));
        assert_eq!(args[2], Expr::Literal(Value::Integer(0)));
    }

    /// The paper's stream-merging query (§3.1) with explicit nodes.
    #[test]
    fn parses_merge_query() {
        let stmt = parse_statement(
            "select extract(c)
             from sp a, sp b, sp c
             where c=sp(count(merge({a,b})), 'bg',0)
             and a=sp(gen_array(3000000,100),'bg',1)
             and b=sp(gen_array(3000000,100),'bg',4);",
        )
        .unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        let Expr::Call { args, .. } = &q.preds[0].rhs else {
            panic!()
        };
        // count(merge({a,b}))
        let Expr::Call { name, args } = &args[0] else {
            panic!()
        };
        assert_eq!(name, "count");
        let Expr::Call { name, args } = &args[0] else {
            panic!()
        };
        assert_eq!(name, "merge");
        assert_eq!(args[0], Expr::Set(vec![Expr::var("a"), Expr::var("b")]));
    }

    /// Query 1 of §3.2, verbatim modulo whitespace.
    #[test]
    fn parses_inbound_query_1() {
        let stmt = parse_statement(
            "select extract(c) from
             bag of sp a, sp b, sp c,
             integer n
             where c=sp(extract(b), 'bg')
             and   b=sp(count(merge(a)), 'bg')
             and   a=spv(
                (select gen_array(3000000,100)
                 from integer i where i in iota(1,n)),
                'be', 1)
             and n=4;",
        )
        .unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        assert!(q.decls[0].bag);
        assert_eq!(q.decls[0].ty, TypeName::Sp);
        assert_eq!(q.decls[3].ty, TypeName::Integer);
        // a = spv(subquery, 'be', 1)
        let Predicate { rhs, .. } = &q.preds[2];
        let Expr::Call { name, args } = rhs else {
            panic!()
        };
        assert_eq!(name, "spv");
        assert!(matches!(args[0], Expr::Select(_)));
        assert_eq!(args[1], Expr::Literal(Value::from("be")));
        // n = 4
        assert_eq!(q.preds[3].rhs, Expr::Literal(Value::Integer(4)));
    }

    /// Query 5 of §3.2 with psetrr().
    #[test]
    fn parses_inbound_query_5() {
        let stmt = parse_statement(
            "select extract(c) from
             bag of sp a, bag of sp b, sp c,
             integer n
             where c=sp(streamof(sum(merge(b))), 'bg')
             and b=spv(
               (select streamof(count(extract(p)))
                from sp p
                where p in a),
               'bg', psetrr())
             and a=spv(
               (select gen_array(3000000,100)
                from integer i where i in iota(1,n)),
               'be', 1) and n=4;",
        )
        .unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        assert_eq!(q.decls.len(), 4);
        assert!(q.decls[1].bag);
        let Expr::Call { name, args } = &q.preds[1].rhs else {
            panic!()
        };
        assert_eq!(name, "spv");
        assert_eq!(args[2], Expr::call("psetrr", vec![]));
    }

    /// The mapreduce-grep query of §2.4 (a bare expression statement).
    #[test]
    fn parses_mapreduce_grep() {
        let stmt = parse_statement(
            "merge(spv(
                select grep(\"pattern\", filename(i))
                from integer i
                where i in iota(1,1000)));",
        )
        .unwrap();
        let Statement::Expr(Expr::Call { name, args }) = stmt else {
            panic!("expected bare expression")
        };
        assert_eq!(name, "merge");
        let Expr::Call { name, args } = &args[0] else {
            panic!()
        };
        assert_eq!(name, "spv");
        assert!(matches!(args[0], Expr::Select(_)));
    }

    /// The radix2 FFT function of §2.4, verbatim modulo whitespace.
    #[test]
    fn parses_radix2_function() {
        let stmt = parse_statement(
            "create function radix2(string s)
                 -> stream
             as select radixcombine(merge({a,b}))
             from sp a, sp b, sp c
             where a=sp(fft(odd (extract(c))))
             and b=sp(fft(even(extract(c))))
             and c=sp(receiver(s));",
        )
        .unwrap();
        let Statement::CreateFunction(f) = stmt else {
            panic!()
        };
        assert_eq!(f.name, "radix2");
        assert_eq!(f.params, vec![("s".to_string(), TypeName::String)]);
        assert_eq!(f.returns, TypeName::Stream);
        let Expr::Select(body) = &f.body else {
            panic!()
        };
        assert_eq!(body.decls.len(), 3);
        assert_eq!(body.preds.len(), 3);
    }

    #[test]
    fn parses_multi_statement_program() {
        let stmts = parse_program(
            "create function two() -> integer as streamof(2);
             select extract(a) from sp a where a=sp(two(), 'fe');",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn missing_from_is_a_syntax_error() {
        let err = parse_statement("select x;").unwrap_err();
        assert!(err.to_string().contains("expected `from`"), "{err}");
    }

    #[test]
    fn bad_predicate_operator_is_reported() {
        let err = parse_statement("select x from sp a where a merge(b);").unwrap_err();
        assert!(err.to_string().contains("expected `=` or `in`"), "{err}");
    }

    #[test]
    fn unknown_type_is_reported() {
        let err = parse_statement("select x from blob a;").unwrap_err();
        assert!(
            err.to_string().contains("unknown type name `blob`"),
            "{err}"
        );
    }

    #[test]
    fn empty_set_and_empty_args_parse() {
        let stmt = parse_statement("merge({});").unwrap();
        assert_eq!(
            stmt,
            Statement::Expr(Expr::call("merge", vec![Expr::Set(vec![])]))
        );
        let stmt = parse_statement("psetrr();").unwrap();
        assert_eq!(stmt, Statement::Expr(Expr::call("psetrr", vec![])));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_statement("select x from sp a; garbage").is_err());
    }

    #[test]
    fn parses_prepare_statement() {
        let stmt = parse_statement(
            "prepare p2p as select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(3000000,100),'bg',1);",
        )
        .unwrap();
        let Statement::Prepare { name, body } = stmt else {
            panic!("expected prepare");
        };
        assert_eq!(name, "p2p");
        assert!(matches!(*body, Statement::Select(_)));
    }

    #[test]
    fn parses_prepare_of_bare_expression() {
        let stmt = parse_statement("prepare g as merge({});").unwrap();
        let Statement::Prepare { name, body } = stmt else {
            panic!("expected prepare");
        };
        assert_eq!(name, "g");
        assert!(matches!(*body, Statement::Expr(_)));
    }

    #[test]
    fn prepare_rejects_function_definitions() {
        let err = parse_statement("prepare f as create function g() -> integer as streamof(1);")
            .unwrap_err();
        assert!(
            err.to_string().contains("not a function definition"),
            "{err}"
        );
    }

    #[test]
    fn parses_run_and_show_catalog() {
        assert_eq!(
            parse_statement("run p2p;").unwrap(),
            Statement::Run("p2p".into())
        );
        assert_eq!(
            parse_statement("SHOW CATALOG;").unwrap(),
            Statement::ShowCatalog
        );
        assert_eq!(
            parse_statement("Run p2p;").unwrap(),
            Statement::Run("p2p".into()),
            "session keywords are case-insensitive like the reserved ones"
        );
    }

    #[test]
    fn session_words_stay_ordinary_identifiers() {
        // `run(...)` is still a function call, `prepare` without the
        // `name as` shape is still a variable, `show` alone too.
        assert_eq!(
            parse_statement("run(1);").unwrap(),
            Statement::Expr(Expr::call("run", vec![Expr::Literal(Value::Integer(1))]))
        );
        assert_eq!(
            parse_statement("prepare;").unwrap(),
            Statement::Expr(Expr::var("prepare"))
        );
        assert_eq!(
            parse_statement("show;").unwrap(),
            Statement::Expr(Expr::var("show"))
        );
        // A select head may use the words freely.
        let stmt = parse_statement("select run from sp run;").unwrap();
        let Statement::Select(q) = stmt else { panic!() };
        assert_eq!(q.head, vec![Expr::var("run")]);
    }

    #[test]
    fn statement_requires_semicolon_before_next() {
        assert!(parse_program("merge(a) merge(b);").is_err());
    }
}
