//! Abstract syntax of SCSQL.
//!
//! The shapes here mirror the paper's query texts: a select head of
//! expressions, `from` declarations typed as `sp` / `integer` / … with an
//! optional `bag of` prefix, and a `where` clause of `=` and `in`
//! predicates joined by `and`. Function calls are the workhorse — all of
//! `sp`, `spv`, `extract`, `merge`, `count`, `gen_array`, … are calls.

use crate::value::Value;
use std::fmt;

/// A declared variable type (§2.4, Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeName {
    /// A stream process.
    Sp,
    /// An integer.
    Integer,
    /// A real.
    Real,
    /// A string.
    String,
    /// A stream object.
    Stream,
    /// Any object.
    Object,
}

impl TypeName {
    /// Parses a type name as written in queries.
    pub fn parse(s: &str) -> Option<TypeName> {
        Some(match s {
            "sp" => TypeName::Sp,
            "integer" => TypeName::Integer,
            "real" => TypeName::Real,
            "string" => TypeName::String,
            "stream" => TypeName::Stream,
            "object" => TypeName::Object,
            _ => return None,
        })
    }

    /// The query-text spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TypeName::Sp => "sp",
            TypeName::Integer => "integer",
            TypeName::Real => "real",
            TypeName::String => "string",
            TypeName::Stream => "stream",
            TypeName::Object => "object",
        }
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A `from`-clause variable declaration, e.g. `bag of sp a`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared element type.
    pub ty: TypeName,
    /// Whether the variable is a bag of the element type (`bag of sp a`).
    pub bag: bool,
}

/// An SCSQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal integer / real / string.
    Literal(Value),
    /// Variable reference.
    Var(String),
    /// Function call `name(args…)`.
    Call {
        /// Function name as written.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Set construction `{a, b}` (the merge argument in the radix2
    /// function).
    Set(Vec<Expr>),
    /// A nested select query used as an expression (the subqueries passed
    /// to `spv`).
    Select(Box<SelectQuery>),
}

impl Expr {
    /// Convenience: a call expression.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            name: name.into(),
            args,
        }
    }

    /// Convenience: a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// The free variables referenced by this expression, in first-use
    /// order without duplicates. Nested select queries hide their own
    /// declarations.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Var(name) => {
                if !bound.iter().any(|b| b == name) && !out.iter().any(|o| o == name) {
                    out.push(name.clone());
                }
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_free(bound, out);
                }
            }
            Expr::Set(items) => {
                for i in items {
                    i.collect_free(bound, out);
                }
            }
            Expr::Select(q) => {
                let added = q.decls.len();
                for d in &q.decls {
                    bound.push(d.name.clone());
                }
                for h in &q.head {
                    h.collect_free(bound, out);
                }
                for p in &q.preds {
                    p.lhs.collect_free(bound, out);
                    p.rhs.collect_free(bound, out);
                }
                bound.truncate(bound.len() - added);
            }
        }
    }
}

/// The comparison operator of a `where` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    /// `lhs = rhs` — binds a variable to a value.
    Eq,
    /// `lhs in rhs` — iterates a variable over a bag/stream, duplicating
    /// the select head per element (the parallelism driver in the
    /// paper's `iota` queries).
    In,
}

/// One conjunct of a `where` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left-hand side (a variable in all the paper's queries).
    pub lhs: Expr,
    /// Operator.
    pub op: PredOp,
    /// Right-hand side.
    pub rhs: Expr,
}

/// A select query: head, declarations, predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Select-head expressions (usually one).
    pub head: Vec<Expr>,
    /// `from` declarations.
    pub decls: Vec<VarDecl>,
    /// `where` conjuncts (possibly empty).
    pub preds: Vec<Predicate>,
}

impl SelectQuery {
    /// Looks up the declaration of `name`.
    pub fn decl(&self, name: &str) -> Option<&VarDecl> {
        self.decls.iter().find(|d| d.name == name)
    }
}

/// A user-defined query function (§2.4's `create function radix2 …`).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Parameters: (name, type).
    pub params: Vec<(String, TypeName)>,
    /// Declared result type.
    pub returns: TypeName,
    /// Body expression (a select query or a plain expression).
    pub body: Expr,
}

/// A top-level SCSQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A continuous query.
    Select(SelectQuery),
    /// A function definition.
    CreateFunction(FunctionDef),
    /// A bare expression query (like the paper's
    /// `merge(spv(select grep(...) ...));`).
    Expr(Expr),
    /// `prepare name as <query>` — compile the query once and register
    /// it under `name` in the session catalog (served sessions share
    /// the compilation across clients).
    Prepare {
        /// The catalog name the compiled plan registers under.
        name: String,
        /// The query being prepared (a select query or a bare
        /// expression query; never another session statement).
        body: Box<Statement>,
    },
    /// `run name` — execute a previously prepared query from the
    /// session catalog.
    Run(String),
    /// `show catalog` — list the session's named prepared queries and
    /// the registered query functions.
    ShowCatalog,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_round_trip() {
        for ty in [
            TypeName::Sp,
            TypeName::Integer,
            TypeName::Real,
            TypeName::String,
            TypeName::Stream,
            TypeName::Object,
        ] {
            assert_eq!(TypeName::parse(ty.as_str()), Some(ty));
        }
        assert_eq!(TypeName::parse("blob"), None);
    }

    #[test]
    fn free_vars_skip_bound_and_duplicates() {
        // count(merge(a)) with a free.
        let e = Expr::call("count", vec![Expr::call("merge", vec![Expr::var("a")])]);
        assert_eq!(e.free_vars(), vec!["a".to_string()]);

        // {a, b, a} has free a then b once each.
        let e = Expr::Set(vec![Expr::var("a"), Expr::var("b"), Expr::var("a")]);
        assert_eq!(e.free_vars(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn free_vars_respect_nested_select_scope() {
        // select extract(p) from sp p where p in a  — only `a` is free.
        let inner = SelectQuery {
            head: vec![Expr::call("extract", vec![Expr::var("p")])],
            decls: vec![VarDecl {
                name: "p".into(),
                ty: TypeName::Sp,
                bag: false,
            }],
            preds: vec![Predicate {
                lhs: Expr::var("p"),
                op: PredOp::In,
                rhs: Expr::var("a"),
            }],
        };
        let e = Expr::Select(Box::new(inner));
        assert_eq!(e.free_vars(), vec!["a".to_string()]);
    }
}
