//! Lexer for SCSQL.
//!
//! Tokenizes the SQL-like surface syntax of §2.4. Strings accept both
//! single quotes (`'bg'`, as in the paper's cluster arguments) and double
//! quotes (`"pattern"`, as in the mapreduce-grep example). `--` starts a
//! line comment.

use crate::error::QlError;
use std::fmt;

/// Kinds of SCSQL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or function name.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal (quotes stripped).
    Str(String),
    /// `select`
    Select,
    /// `from`
    From,
    /// `where`
    Where,
    /// `and`
    And,
    /// `in`
    In,
    /// `create`
    Create,
    /// `function`
    Function,
    /// `as`
    As,
    /// `bag`
    Bag,
    /// `of`
    Of,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Real(r) => write!(f, "real `{r}`"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Select => f.write_str("`select`"),
            TokenKind::From => f.write_str("`from`"),
            TokenKind::Where => f.write_str("`where`"),
            TokenKind::And => f.write_str("`and`"),
            TokenKind::In => f.write_str("`in`"),
            TokenKind::Create => f.write_str("`create`"),
            TokenKind::Function => f.write_str("`function`"),
            TokenKind::As => f.write_str("`as`"),
            TokenKind::Bag => f.write_str("`bag`"),
            TokenKind::Of => f.write_str("`of`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Arrow => f.write_str("`->`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Streaming tokenizer over SCSQL source text.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenizes the whole input, ending with an [`TokenKind::Eof`]
    /// token.
    ///
    /// # Errors
    ///
    /// [`QlError::Lex`] on unexpected characters, unterminated strings,
    /// or malformed numbers.
    pub fn tokenize(mut self) -> Result<Vec<Token>, QlError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let kind = match c {
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b',' => self.single(TokenKind::Comma),
                b';' => self.single(TokenKind::Semi),
                b'=' => self.single(TokenKind::Eq),
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::Arrow
                    } else if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        self.number(true, line, col)?
                    } else {
                        return Err(QlError::lex(line, col, "unexpected `-`"));
                    }
                }
                b'\'' | b'"' => self.string(c, line, col)?,
                c if c.is_ascii_digit() => self.number(false, line, col)?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.word(),
                other => {
                    return Err(QlError::lex(
                        line,
                        col,
                        format!("unexpected character `{}`", other as char),
                    ))
                }
            };
            out.push(Token { kind, line, col });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.src.get(self.pos + 1) == Some(&b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn string(&mut self, quote: u8, line: u32, col: u32) -> Result<TokenKind, QlError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(QlError::lex(line, col, "unterminated string literal")),
                Some(c) if c == quote => return Ok(TokenKind::Str(s)),
                Some(c) => s.push(c as char),
            }
        }
    }

    fn number(&mut self, negative: bool, line: u32, col: u32) -> Result<TokenKind, QlError> {
        let mut text = String::new();
        if negative {
            text.push('-');
        }
        let mut is_real = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => text.push(self.bump().expect("digit") as char),
                b'.' if !is_real => {
                    is_real = true;
                    text.push(self.bump().expect("dot") as char);
                }
                b'e' | b'E' => {
                    is_real = true;
                    text.push(self.bump().expect("e") as char);
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        text.push(self.bump().expect("sign") as char);
                    }
                }
                _ => break,
            }
        }
        if is_real {
            text.parse::<f64>()
                .map(TokenKind::Real)
                .map_err(|e| QlError::lex(line, col, format!("bad real literal `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| QlError::lex(line, col, format!("bad integer literal `{text}`: {e}")))
        }
    }

    fn word(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(self.bump().expect("word char") as char);
            } else {
                break;
            }
        }
        match s.to_ascii_lowercase().as_str() {
            "select" => TokenKind::Select,
            "from" => TokenKind::From,
            "where" => TokenKind::Where,
            "and" => TokenKind::And,
            "in" => TokenKind::In,
            "create" => TokenKind::Create,
            "function" => TokenKind::Function,
            "as" => TokenKind::As,
            "bag" => TokenKind::Bag,
            "of" => TokenKind::Of,
            _ => TokenKind::Ident(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_the_paper_p2p_query() {
        let toks = kinds("select extract(b) from sp a, sp b;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Select,
                TokenKind::Ident("extract".into()),
                TokenKind::LParen,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::From,
                TokenKind::Ident("sp".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("sp".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_accept_both_quote_styles() {
        assert_eq!(
            kinds("'bg' \"pattern\""),
            vec![
                TokenKind::Str("bg".into()),
                TokenKind::Str("pattern".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_arrow() {
        assert_eq!(
            kinds("3000000 1.5 -7 2e3 ->"),
            vec![
                TokenKind::Int(3_000_000),
                TokenKind::Real(1.5),
                TokenKind::Int(-7),
                TokenKind::Real(2000.0),
                TokenKind::Arrow,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("SELECT From WHERE bag OF"),
            vec![
                TokenKind::Select,
                TokenKind::From,
                TokenKind::Where,
                TokenKind::Bag,
                TokenKind::Of,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("select -- the reduce step\nx;"),
            vec![
                TokenKind::Select,
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = Lexer::new("select\n  x").tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_is_reported() {
        let err = Lexer::new("'oops").tokenize().unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn bare_minus_is_an_error() {
        assert!(Lexer::new("a - b").tokenize().is_err());
    }

    #[test]
    fn stray_character_is_reported_with_position() {
        let err = Lexer::new("select @").tokenize().unwrap_err();
        assert_eq!(
            err.to_string(),
            "lexical error at 1:8: unexpected character `@`"
        );
    }
}
