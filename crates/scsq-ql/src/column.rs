//! Typed columnar batches.
//!
//! The row interchange ([`crate::Batch`]) moves `Vec<Value>` runs; every
//! consumer then re-discovers each tuple's type with a `match`. This
//! module adds the columnar alternative: a [`Column`] is one typed array
//! plus a validity bitmap, a [`ColumnarBatch`] is a set of named columns
//! of equal length, and both clone and slice in O(1) by sharing `Arc`s
//! (the layout follows validity-bitmapped array libraries such as
//! Arrow). Conversion to and from `Batch` is lossless — see
//! [`ColumnarBatch::from_batch`] / [`ColumnarBatch::to_batch`] — so the
//! engine can pick per delivery whether a run is worth transposing.

use crate::value::{ArrayData, Value};
use std::sync::Arc;

/// Per-row validity of a column, one bit per row.
///
/// The common case — every row valid — is represented by an *empty*
/// word vector, so constructing an all-valid bitmap never allocates and
/// checking it is a single emptiness test ([`ValidityBitmap::all_valid`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidityBitmap {
    /// Bit `i` of `words[i / 64]` is 1 when row `i` is valid. Empty
    /// means "all rows valid".
    words: Vec<u64>,
    len: usize,
}

impl ValidityBitmap {
    /// An all-valid bitmap over `len` rows (allocation-free).
    pub fn new_valid(len: usize) -> Self {
        ValidityBitmap {
            words: Vec::new(),
            len,
        }
    }

    /// Builds a bitmap from per-row booleans.
    pub fn from_bools(valid: &[bool]) -> Self {
        if valid.iter().all(|&v| v) {
            return ValidityBitmap::new_valid(valid.len());
        }
        let mut words = vec![0u64; valid.len().div_ceil(64)];
        for (i, &v) in valid.iter().enumerate() {
            if v {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        ValidityBitmap {
            words,
            len: valid.len(),
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every row is valid (O(1) for the allocation-free
    /// representation, O(words) otherwise).
    pub fn all_valid(&self) -> bool {
        if self.words.is_empty() {
            return true;
        }
        self.count_valid(0, self.len) == self.len
    }

    /// Whether row `row` is valid.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn is_valid(&self, row: usize) -> bool {
        assert!(row < self.len, "validity row out of range");
        if self.words.is_empty() {
            return true;
        }
        self.words[row / 64] & (1 << (row % 64)) != 0
    }

    /// Marks row `row` invalid, materializing the word vector if the
    /// bitmap was in the allocation-free all-valid form.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn set_invalid(&mut self, row: usize) {
        assert!(row < self.len, "validity row out of range");
        if self.words.is_empty() {
            let mut words = vec![u64::MAX; self.len.div_ceil(64)];
            let tail = self.len % 64;
            if tail != 0 {
                *words.last_mut().expect("len > 0") = (1u64 << tail) - 1;
            }
            self.words = words;
        }
        self.words[row / 64] &= !(1 << (row % 64));
    }

    /// Number of valid rows in `start..end`, by word popcounts (the
    /// all-valid form answers in O(1), materialized bitmaps in
    /// O(words) — this backs every `all_valid` check on the columnar
    /// hot path, so it must not walk bits).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn count_valid(&self, start: usize, end: usize) -> usize {
        assert!(start <= end && end <= self.len, "validity range invalid");
        if self.words.is_empty() {
            return end - start;
        }
        if start == end {
            return 0;
        }
        let (sw, ew) = (start / 64, (end - 1) / 64);
        let head = u64::MAX << (start % 64);
        let tail = u64::MAX >> (63 - (end - 1) % 64);
        if sw == ew {
            return (self.words[sw] & head & tail).count_ones() as usize;
        }
        let mut n = (self.words[sw] & head).count_ones() as usize;
        for w in &self.words[sw + 1..ew] {
            n += w.count_ones() as usize;
        }
        n + (self.words[ew] & tail).count_ones() as usize
    }
}

/// The typed backing storage of a [`Column`].
///
/// Homogeneous runs of primitives get a flat array; everything the
/// typed layouts cannot express losslessly (bags, materialized arrays,
/// handles, mixed runs) falls back to [`ColumnData::Values`], which is
/// exactly the row representation and therefore always available.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers ([`Value::Integer`]).
    Int64(Vec<i64>),
    /// 64-bit floats ([`Value::Real`]).
    Float64(Vec<f64>),
    /// Booleans ([`Value::Bool`]).
    Bool(Vec<bool>),
    /// Strings ([`Value::Str`]), stored as one byte buffer with
    /// `offsets.len() == rows + 1` delimiting offsets.
    Utf8 {
        /// Row `i` spans `bytes[offsets[i] as usize..offsets[i + 1] as usize]`.
        offsets: Vec<u32>,
        /// Concatenated UTF-8 payload of every row.
        bytes: Vec<u8>,
    },
    /// Synthetic arrays ([`crate::ArrayData::Synthetic`]), stored as
    /// their simulated byte sizes.
    Synthetic(Vec<u64>),
    /// Lossless row fallback for values the typed layouts cannot hold.
    Values(Vec<Value>),
}

impl ColumnData {
    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Utf8 { offsets, .. } => offsets.len().saturating_sub(1),
            ColumnData::Synthetic(v) => v.len(),
            ColumnData::Values(v) => v.len(),
        }
    }

    /// Whether the storage holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shared, immutable typed column with a sub-range view.
///
/// Cloning and [slicing](Column::slice) are O(1): both share the backing
/// [`ColumnData`] and [`ValidityBitmap`] by `Arc` and adjust only the
/// view bounds. Typed accessors ([`Column::as_i64`] and friends) return
/// the viewed range of the flat array when the storage matches, letting
/// kernels run one tight loop per column instead of one dispatch per
/// element.
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<ColumnData>,
    validity: Arc<ValidityBitmap>,
    start: usize,
    end: usize,
}

impl Column {
    /// Wraps storage with every row valid.
    pub fn new(data: ColumnData) -> Self {
        let len = data.len();
        Column {
            data: Arc::new(data),
            validity: Arc::new(ValidityBitmap::new_valid(len)),
            start: 0,
            end: len,
        }
    }

    /// Wraps storage with an explicit validity bitmap.
    ///
    /// # Panics
    ///
    /// Panics if the bitmap length differs from the storage length.
    pub fn with_validity(data: ColumnData, validity: ValidityBitmap) -> Self {
        let len = data.len();
        assert_eq!(validity.len(), len, "validity length mismatch");
        Column {
            data: Arc::new(data),
            validity: Arc::new(validity),
            start: 0,
            end: len,
        }
    }

    /// Builds a column from a run of row values, choosing the narrowest
    /// typed layout that holds every row losslessly; heterogeneous runs
    /// (or kinds without a typed layout) fall back to
    /// [`ColumnData::Values`].
    pub fn from_values(values: &[Value]) -> Self {
        Column::new(column_data_from_values(values))
    }

    /// Number of rows in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether every row in view is valid.
    pub fn all_valid(&self) -> bool {
        self.validity.count_valid(self.start, self.end) == self.len()
    }

    /// Whether view-relative row `row` is valid.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn is_valid(&self, row: usize) -> bool {
        assert!(row < self.len(), "column row out of range");
        self.validity.is_valid(self.start + row)
    }

    /// A narrower O(1) view of the same storage.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        assert!(start <= end && end <= self.len(), "slice out of range");
        Column {
            data: Arc::clone(&self.data),
            validity: Arc::clone(&self.validity),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// The viewed rows as a flat `i64` slice, when backed by
    /// [`ColumnData::Int64`].
    pub fn as_i64(&self) -> Option<&[i64]> {
        match &*self.data {
            ColumnData::Int64(v) => Some(&v[self.start..self.end]),
            _ => None,
        }
    }

    /// The viewed rows as a flat `f64` slice, when backed by
    /// [`ColumnData::Float64`].
    pub fn as_f64(&self) -> Option<&[f64]> {
        match &*self.data {
            ColumnData::Float64(v) => Some(&v[self.start..self.end]),
            _ => None,
        }
    }

    /// The viewed rows as a flat `bool` slice, when backed by
    /// [`ColumnData::Bool`].
    pub fn as_bool(&self) -> Option<&[bool]> {
        match &*self.data {
            ColumnData::Bool(v) => Some(&v[self.start..self.end]),
            _ => None,
        }
    }

    /// The viewed rows as synthetic-array byte sizes, when backed by
    /// [`ColumnData::Synthetic`].
    pub fn as_synthetic(&self) -> Option<&[u64]> {
        match &*self.data {
            ColumnData::Synthetic(v) => Some(&v[self.start..self.end]),
            _ => None,
        }
    }

    /// The viewed rows as row values, when backed by the
    /// [`ColumnData::Values`] fallback.
    pub fn as_values(&self) -> Option<&[Value]> {
        match &*self.data {
            ColumnData::Values(v) => Some(&v[self.start..self.end]),
            _ => None,
        }
    }

    /// The viewed rows as raw UTF-8 storage — `(offsets, bytes)` with
    /// `offsets.len() == self.len() + 1` and row `i` spanning
    /// `bytes[offsets[i] as usize..offsets[i + 1] as usize]` — when
    /// backed by [`ColumnData::Utf8`]. This is the flat form string
    /// kernels iterate without per-row dispatch.
    pub fn as_utf8(&self) -> Option<(&[u32], &[u8])> {
        match &*self.data {
            ColumnData::Utf8 { offsets, bytes } => {
                Some((&offsets[self.start..=self.end], bytes.as_slice()))
            }
            _ => None,
        }
    }

    /// The string at view-relative row `row`, when backed by
    /// [`ColumnData::Utf8`].
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn str_at(&self, row: usize) -> Option<&str> {
        assert!(row < self.len(), "column row out of range");
        match &*self.data {
            ColumnData::Utf8 { offsets, bytes } => {
                let i = self.start + row;
                let span = offsets[i] as usize..offsets[i + 1] as usize;
                Some(std::str::from_utf8(&bytes[span]).expect("column stores UTF-8"))
            }
            _ => None,
        }
    }

    /// The row value at view-relative row `row`, or `None` when the row
    /// is invalid.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.len()`.
    pub fn value_at(&self, row: usize) -> Option<Value> {
        assert!(row < self.len(), "column row out of range");
        if !self.is_valid(row) {
            return None;
        }
        let i = self.start + row;
        Some(match &*self.data {
            ColumnData::Int64(v) => Value::Integer(v[i]),
            ColumnData::Float64(v) => Value::Real(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Utf8 { offsets, bytes } => {
                let span = offsets[i] as usize..offsets[i + 1] as usize;
                Value::Str(
                    std::str::from_utf8(&bytes[span])
                        .expect("column stores UTF-8")
                        .to_string(),
                )
            }
            ColumnData::Synthetic(v) => Value::Array(ArrayData::Synthetic { bytes: v[i] }),
            ColumnData::Values(v) => v[i].clone(),
        })
    }
}

/// Ascending row indices selected out of a column view — the output of
/// filter kernels, consumed by gather/`take` kernels. Keeping a
/// selection instead of copying survivors lets a filter cost O(matches)
/// rather than O(rows × row width).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectionVector {
    rows: Vec<u32>,
}

impl SelectionVector {
    /// An empty selection.
    pub fn new() -> Self {
        SelectionVector::default()
    }

    /// Wraps pre-computed ascending row indices.
    ///
    /// # Panics
    ///
    /// Panics if the indices are not strictly ascending.
    pub fn from_rows(rows: Vec<u32>) -> Self {
        assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "selection rows must be strictly ascending"
        );
        SelectionVector { rows }
    }

    /// Appends a row index (must exceed every index already present).
    ///
    /// # Panics
    ///
    /// Panics if `row` does not exceed the last stored index.
    pub fn push(&mut self, row: u32) {
        assert!(
            self.rows.last().is_none_or(|&last| row > last),
            "selection rows must be strictly ascending"
        );
        self.rows.push(row);
    }

    /// Keeps only the first `n` selected rows (no-op when `n >= len` —
    /// how `take` caps a filtered run without re-validating order).
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }

    /// The selected row indices, ascending.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Column names used when a metric-sample run is decomposed into typed
/// columns (`{channel, time_ns, bytes}` — the bag layout `metrics(p)`
/// emits).
pub const METRIC_COLUMNS: [&str; 3] = ["channel", "time_ns", "bytes"];

/// A set of equally long named [`Column`]s with O(1) clone and slice.
///
/// The batch-level counterpart of [`crate::Batch`]: one columnar batch
/// represents the same run of tuples, transposed. Single-column batches
/// hold the run under the name `"v"`; runs of metric-sample bags
/// (`{channel, time_ns, bytes}` integer triples) decompose into the
/// three [`METRIC_COLUMNS`], which [`ColumnarBatch::to_batch`] inverts
/// exactly.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    columns: Arc<Vec<(String, Column)>>,
    start: usize,
    end: usize,
}

impl ColumnarBatch {
    /// Wraps named columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns differ in length.
    pub fn new(columns: Vec<(String, Column)>) -> Self {
        let rows = columns.first().map_or(0, |(_, c)| c.len());
        assert!(
            columns.iter().all(|(_, c)| c.len() == rows),
            "columns must be equally long"
        );
        ColumnarBatch {
            columns: Arc::new(columns),
            start: 0,
            end: rows,
        }
    }

    /// Transposes a run of row values into columns.
    ///
    /// A non-empty run in which every row is a metric-sample bag (a
    /// three-integer `Bag`) becomes the three [`METRIC_COLUMNS`]; a run
    /// of *record* bags — every row a `Bag` of the same non-zero arity
    /// `m` — becomes `m` parallel columns named `"c0".."c{m-1}"`, each
    /// in its narrowest typed layout; any other run becomes one column
    /// named `"v"` via [`Column::from_values`].
    pub fn from_values(values: &[Value]) -> Self {
        if !values.is_empty() && values.iter().all(is_metric_sample) {
            let mut channel = Vec::with_capacity(values.len());
            let mut time_ns = Vec::with_capacity(values.len());
            let mut bytes = Vec::with_capacity(values.len());
            for v in values {
                let items = v.as_bag().expect("checked: metric bag");
                channel.push(items[0].as_integer().expect("checked: integer"));
                time_ns.push(items[1].as_integer().expect("checked: integer"));
                bytes.push(items[2].as_integer().expect("checked: integer"));
            }
            return ColumnarBatch::new(vec![
                (
                    METRIC_COLUMNS[0].to_string(),
                    Column::new(ColumnData::Int64(channel)),
                ),
                (
                    METRIC_COLUMNS[1].to_string(),
                    Column::new(ColumnData::Int64(time_ns)),
                ),
                (
                    METRIC_COLUMNS[2].to_string(),
                    Column::new(ColumnData::Int64(bytes)),
                ),
            ]);
        }
        if let Some(width) = uniform_record_width(values) {
            let mut cells: Vec<Vec<Value>> = vec![Vec::with_capacity(values.len()); width];
            for v in values {
                let items = v.as_bag().expect("checked: record bag");
                for (col, cell) in cells.iter_mut().zip(items) {
                    col.push(cell.clone());
                }
            }
            return ColumnarBatch::new(
                cells
                    .into_iter()
                    .enumerate()
                    .map(|(i, col)| (format!("c{i}"), Column::from_values(&col)))
                    .collect(),
            );
        }
        ColumnarBatch::new(vec![("v".to_string(), Column::from_values(values))])
    }

    /// Transposes a row batch (see [`ColumnarBatch::from_values`]).
    pub fn from_batch(batch: &crate::Batch) -> Self {
        ColumnarBatch::from_values(batch.values())
    }

    /// Number of rows in view.
    pub fn rows(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The named columns (name, full-run column) backing this view.
    /// Use [`ColumnarBatch::column`] for view-sliced access.
    pub fn columns(&self) -> &[(String, Column)] {
        &self.columns
    }

    /// The view-sliced column called `name`, if present.
    pub fn column(&self, name: &str) -> Option<Column> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.slice(self.start, self.end))
    }

    /// The view-sliced only column, when the batch has exactly one.
    pub fn single(&self) -> Option<Column> {
        match &self.columns[..] {
            [(_, c)] => Some(c.slice(self.start, self.end)),
            _ => None,
        }
    }

    /// Whether `other` is a view of the *same* backing column set (by
    /// `Arc` identity) with identical view bounds. This is the equality
    /// notion the transport uses for relayed column rows: two views are
    /// interchangeable only when they share storage, so value-equal but
    /// separately built batches compare unequal on purpose.
    pub fn same_view(&self, other: &ColumnarBatch) -> bool {
        Arc::ptr_eq(&self.columns, &other.columns)
            && self.start == other.start
            && self.end == other.end
    }

    /// The marshaled wire size of view-relative row `row`, mirroring
    /// [`Value::marshaled_size`] on the reassembled value without
    /// materializing it: single-column rows charge the cell alone,
    /// multi-column rows charge the enclosing bag header plus each cell.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()` or the row is invalid.
    pub fn row_marshaled_size(&self, row: usize) -> u64 {
        assert!(row < self.rows(), "batch row out of range");
        let i = self.start + row;
        match &self.columns[..] {
            [(_, c)] => cell_marshaled_size(c, i),
            cols => {
                5 + cols
                    .iter()
                    .map(|(_, c)| cell_marshaled_size(c, i))
                    .sum::<u64>()
            }
        }
    }

    /// The shared marshaled wire size of every row, or `None` when row
    /// sizes can differ. Decided from column layouts alone in O(width):
    /// fixed-width layouts (integers, reals, booleans) marshal every
    /// row identically, while byte-buffer and boxed layouts vary per
    /// row. A `Some` answer equals [`ColumnarBatch::row_marshaled_size`]
    /// of every row without walking any of them.
    pub fn uniform_row_size(&self) -> Option<u64> {
        let cell = |c: &Column| match &*c.data {
            ColumnData::Int64(_) | ColumnData::Float64(_) => Some(9),
            ColumnData::Bool(_) => Some(2),
            ColumnData::Utf8 { .. } | ColumnData::Synthetic(_) | ColumnData::Values(_) => None,
        };
        match &self.columns[..] {
            [] => None,
            [(_, c)] => cell(c),
            cols => cols.iter().try_fold(5, |acc, (_, c)| Some(acc + cell(c)?)),
        }
    }

    /// A narrower O(1) view of the same rows.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn slice(&self, start: usize, end: usize) -> ColumnarBatch {
        assert!(start <= end && end <= self.rows(), "slice out of range");
        ColumnarBatch {
            columns: Arc::clone(&self.columns),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// The row value at view-relative row `row`, or `None` when any
    /// cell in the row is invalid. Multi-column rows reassemble into a
    /// `Bag` of the cells in column order, which inverts the
    /// metric-sample decomposition of [`ColumnarBatch::from_values`].
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn value_at(&self, row: usize) -> Option<Value> {
        assert!(row < self.rows(), "batch row out of range");
        let i = self.start + row;
        match &self.columns[..] {
            [] => None,
            [(_, c)] => c.value_at(i),
            cols => {
                let mut items = Vec::with_capacity(cols.len());
                for (_, c) in cols {
                    items.push(c.value_at(i)?);
                }
                Some(Value::Bag(items))
            }
        }
    }

    /// Appends the viewed rows to `out` as row values, in order. Rows
    /// with any invalid cell are omitted — they represent tuples
    /// filtered out in place.
    pub fn to_values_into(&self, out: &mut Vec<Value>) {
        out.reserve(self.rows());
        for row in 0..self.rows() {
            if let Some(v) = self.value_at(row) {
                out.push(v);
            }
        }
    }

    /// The viewed rows as a row batch (see
    /// [`ColumnarBatch::to_values_into`] for the invalid-row rule).
    pub fn to_batch(&self) -> crate::Batch {
        let mut out = Vec::new();
        self.to_values_into(&mut out);
        crate::Batch::new(out)
    }
}

/// One row of a shared [`ColumnarBatch`], cheap to clone (two `Arc`
/// bumps) — the unit a relayed column travels as through a stream
/// channel. Consumers that receive consecutive `ColRow`s of the same
/// view reassemble the original batch without copying any column data.
#[derive(Debug, Clone)]
pub struct ColRow {
    /// The shared batch view the row belongs to.
    pub batch: ColumnarBatch,
    /// View-relative row index into `batch`.
    pub row: u32,
}

impl PartialEq for ColRow {
    /// Identity-based equality: same backing storage (by `Arc`
    /// pointer), same view, same row. Consecutive rows of one batch
    /// always compare unequal, so channel train coalescing — which only
    /// merges *equal* items — never merges relayed column rows; channel
    /// timing is unaffected because it depends only on each item's
    /// `(bytes, ready)` pair.
    fn eq(&self, other: &Self) -> bool {
        self.row == other.row && self.batch.same_view(&other.batch)
    }
}

/// Marshaled size of absolute backing row `i` of `c` (not
/// view-relative), mirroring [`Value::marshaled_size`] per layout.
fn cell_marshaled_size(c: &Column, i: usize) -> u64 {
    match &*c.data {
        ColumnData::Int64(_) | ColumnData::Float64(_) => 9,
        ColumnData::Bool(_) => 2,
        ColumnData::Utf8 { offsets, .. } => 5 + u64::from(offsets[i + 1] - offsets[i]),
        ColumnData::Synthetic(v) => 9 + v[i],
        ColumnData::Values(v) => v[i].marshaled_size(),
    }
}

/// The shared record arity when every row of a non-empty run is a
/// `Bag` of the same non-zero length, `None` otherwise.
fn uniform_record_width(values: &[Value]) -> Option<usize> {
    let width = values.first()?.as_bag()?.len();
    if width == 0 {
        return None;
    }
    values
        .iter()
        .all(|v| v.as_bag().is_some_and(|b| b.len() == width))
        .then_some(width)
}

/// Whether `v` is a metric-sample bag: `{channel, time_ns, bytes}` as
/// three integers (the shape `metrics(p)` emits).
fn is_metric_sample(v: &Value) -> bool {
    matches!(
        v.as_bag(),
        Some([Value::Integer(_), Value::Integer(_), Value::Integer(_)])
    )
}

/// Scans a run once and picks the narrowest lossless storage.
fn column_data_from_values(values: &[Value]) -> ColumnData {
    #[derive(PartialEq, Clone, Copy)]
    enum Kind {
        Int,
        Float,
        Bool,
        Str,
        Synthetic,
        Other,
    }
    let kind_of = |v: &Value| match v {
        Value::Integer(_) => Kind::Int,
        Value::Real(_) => Kind::Float,
        Value::Bool(_) => Kind::Bool,
        Value::Str(_) => Kind::Str,
        Value::Array(ArrayData::Synthetic { .. }) => Kind::Synthetic,
        _ => Kind::Other,
    };
    let Some(first) = values.first() else {
        return ColumnData::Values(Vec::new());
    };
    let kind = kind_of(first);
    if kind == Kind::Other || values[1..].iter().any(|v| kind_of(v) != kind) {
        return ColumnData::Values(values.to_vec());
    }
    match kind {
        Kind::Int => ColumnData::Int64(
            values
                .iter()
                .map(|v| v.as_integer().expect("checked: integer"))
                .collect(),
        ),
        Kind::Float => ColumnData::Float64(
            values
                .iter()
                .map(|v| match v {
                    Value::Real(r) => *r,
                    _ => unreachable!("checked: real"),
                })
                .collect(),
        ),
        Kind::Bool => ColumnData::Bool(
            values
                .iter()
                .map(|v| v.as_bool().expect("checked: bool"))
                .collect(),
        ),
        Kind::Str => {
            let mut offsets = Vec::with_capacity(values.len() + 1);
            let mut bytes = Vec::new();
            offsets.push(0u32);
            for v in values {
                let s = v.as_str().expect("checked: string");
                bytes.extend_from_slice(s.as_bytes());
                offsets.push(u32::try_from(bytes.len()).expect("string column under 4 GiB"));
            }
            ColumnData::Utf8 { offsets, bytes }
        }
        Kind::Synthetic => ColumnData::Synthetic(
            values
                .iter()
                .map(|v| match v {
                    Value::Array(ArrayData::Synthetic { bytes }) => *bytes,
                    _ => unreachable!("checked: synthetic"),
                })
                .collect(),
        ),
        Kind::Other => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Batch;

    fn metric(channel: i64, time_ns: i64, bytes: i64) -> Value {
        Value::Bag(vec![
            Value::Integer(channel),
            Value::Integer(time_ns),
            Value::Integer(bytes),
        ])
    }

    #[test]
    fn validity_all_valid_is_allocation_free() {
        let v = ValidityBitmap::new_valid(100);
        assert!(v.all_valid());
        assert!(v.is_valid(0) && v.is_valid(99));
        assert_eq!(v.count_valid(10, 90), 80);
    }

    #[test]
    fn validity_set_invalid_materializes() {
        let mut v = ValidityBitmap::new_valid(70);
        v.set_invalid(64);
        assert!(!v.all_valid());
        assert!(!v.is_valid(64));
        assert!(v.is_valid(63) && v.is_valid(65) && v.is_valid(69));
        assert_eq!(v.count_valid(0, 70), 69);
        let bools: Vec<bool> = (0..70).map(|i| i != 64).collect();
        assert_eq!(v, ValidityBitmap::from_bools(&bools));
    }

    #[test]
    fn from_bools_all_true_stays_compact() {
        let v = ValidityBitmap::from_bools(&[true; 65]);
        assert!(v.all_valid());
        assert_eq!(v.count_valid(0, 65), 65);
    }

    #[test]
    fn homogeneous_runs_get_typed_storage() {
        let ints: Vec<Value> = (0..4).map(Value::Integer).collect();
        let c = Column::from_values(&ints);
        assert_eq!(c.as_i64(), Some(&[0i64, 1, 2, 3][..]));
        assert_eq!(c.value_at(2), Some(Value::Integer(2)));

        let reals = vec![Value::Real(1.5), Value::Real(-0.0)];
        let c = Column::from_values(&reals);
        assert_eq!(c.as_f64().map(<[f64]>::len), Some(2));

        let bools = vec![Value::Bool(true), Value::Bool(false)];
        assert_eq!(
            Column::from_values(&bools).as_bool(),
            Some(&[true, false][..])
        );

        let syn = vec![Value::synthetic_array(8), Value::synthetic_array(16)];
        assert_eq!(
            Column::from_values(&syn).as_synthetic(),
            Some(&[8u64, 16][..])
        );

        let strs = vec![Value::from("ab"), Value::from(""), Value::from("c")];
        let c = Column::from_values(&strs);
        assert_eq!(c.str_at(0), Some("ab"));
        assert_eq!(c.str_at(1), Some(""));
        assert_eq!(c.str_at(2), Some("c"));
        assert_eq!(c.value_at(2), Some(Value::from("c")));
    }

    #[test]
    fn mixed_runs_fall_back_to_values() {
        let mixed = vec![Value::Integer(1), Value::Real(2.0)];
        let c = Column::from_values(&mixed);
        assert!(c.as_i64().is_none());
        assert_eq!(c.as_values(), Some(&mixed[..]));
        let bags = vec![Value::Bag(vec![])];
        assert!(Column::from_values(&bags).as_values().is_some());
    }

    #[test]
    fn column_slices_are_views() {
        let c = Column::from_values(&(0..6).map(Value::Integer).collect::<Vec<_>>());
        let s = c.slice(2, 5);
        assert_eq!(s.as_i64(), Some(&[2i64, 3, 4][..]));
        let ss = s.slice(1, 2);
        assert_eq!(ss.as_i64(), Some(&[3i64][..]));
        assert_eq!(ss.value_at(0), Some(Value::Integer(3)));
        assert!(ss.slice(0, 0).is_empty());
    }

    #[test]
    fn invalid_rows_yield_none_and_are_skipped() {
        let mut validity = ValidityBitmap::new_valid(3);
        validity.set_invalid(1);
        let c = Column::with_validity(ColumnData::Int64(vec![10, 20, 30]), validity);
        assert!(!c.all_valid());
        assert_eq!(c.value_at(0), Some(Value::Integer(10)));
        assert_eq!(c.value_at(1), None);
        let b = ColumnarBatch::new(vec![("v".into(), c)]);
        assert_eq!(
            b.to_batch().values(),
            &[Value::Integer(10), Value::Integer(30)]
        );
    }

    #[test]
    fn selection_vector_enforces_ascending_rows() {
        let mut s = SelectionVector::new();
        s.push(1);
        s.push(5);
        assert_eq!(s.rows(), &[1, 5]);
        assert_eq!(s.len(), 2);
        assert_eq!(SelectionVector::from_rows(vec![0, 2, 9]).len(), 3);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn selection_vector_rejects_descending_rows() {
        SelectionVector::from_rows(vec![3, 1]);
    }

    #[test]
    fn metric_runs_decompose_into_named_columns() {
        let run = vec![metric(1, 100, 1000), metric(1, 200, 2000)];
        let b = ColumnarBatch::from_values(&run);
        assert_eq!(b.width(), 3);
        assert_eq!(b.column("channel").unwrap().as_i64(), Some(&[1i64, 1][..]));
        assert_eq!(
            b.column("time_ns").unwrap().as_i64(),
            Some(&[100i64, 200][..])
        );
        assert_eq!(
            b.column("bytes").unwrap().as_i64(),
            Some(&[1000i64, 2000][..])
        );
        assert_eq!(b.value_at(1), Some(metric(1, 200, 2000)));
        assert_eq!(b.to_batch().values(), &run[..]);
    }

    #[test]
    fn record_runs_decompose_into_parallel_columns() {
        let rec = |i: i64, f: f64| Value::Bag(vec![Value::Integer(i), Value::Real(f)]);
        let run = vec![rec(1, 0.5), rec(2, 1.5), rec(3, 2.5)];
        let b = ColumnarBatch::from_values(&run);
        assert_eq!(b.width(), 2);
        assert_eq!(b.column("c0").unwrap().as_i64(), Some(&[1i64, 2, 3][..]));
        assert_eq!(
            b.column("c1").unwrap().as_f64(),
            Some(&[0.5f64, 1.5, 2.5][..])
        );
        assert_eq!(b.value_at(1), Some(rec(2, 1.5)));
        assert_eq!(b.to_batch().values(), &run[..]);
        // Per-position fallback: a heterogeneous cell position still
        // decomposes, via the Values layout.
        let odd = vec![
            Value::Bag(vec![Value::Integer(1), Value::from("x")]),
            Value::Bag(vec![Value::Real(2.0), Value::from("y")]),
        ];
        let b = ColumnarBatch::from_values(&odd);
        assert_eq!(b.width(), 2);
        assert!(b.column("c0").unwrap().as_values().is_some());
        assert_eq!(b.to_batch().values(), &odd[..]);
        // Empty bags and mixed-arity runs keep the single-column form.
        assert_eq!(ColumnarBatch::from_values(&[Value::Bag(vec![])]).width(), 1);
        let ragged = vec![Value::Bag(vec![Value::Integer(1)]), Value::Bag(vec![])];
        assert_eq!(ColumnarBatch::from_values(&ragged).width(), 1);
    }

    #[test]
    fn col_rows_compare_by_storage_identity() {
        let vals: Vec<Value> = (0..4).map(Value::Integer).collect();
        let b = ColumnarBatch::from_values(&vals);
        let twin = ColumnarBatch::from_values(&vals);
        let row = |batch: &ColumnarBatch, row| ColRow {
            batch: batch.clone(),
            row,
        };
        assert_eq!(row(&b, 2), row(&b, 2));
        assert_ne!(row(&b, 1), row(&b, 2), "consecutive rows never merge");
        assert_ne!(row(&b, 2), row(&twin, 2), "value-equal twins are distinct");
        assert_ne!(row(&b.slice(1, 4), 0), row(&b, 0), "views must match");
        assert!(b.slice(1, 4).same_view(&b.slice(1, 4)));
    }

    #[test]
    fn row_marshaled_size_matches_the_value_codec() {
        let runs: Vec<Vec<Value>> = vec![
            (0..3).map(Value::Integer).collect(),
            vec![Value::Real(1.5), Value::Real(f64::NAN)],
            vec![Value::Bool(true), Value::Bool(false)],
            vec![Value::from("ab"), Value::from(""), Value::from("xyz")],
            vec![Value::synthetic_array(8), Value::synthetic_array(16)],
            vec![metric(0, 1, 2), metric(3, 4, 5)],
            vec![
                Value::Bag(vec![Value::Integer(1), Value::from("x")]),
                Value::Bag(vec![Value::Integer(2), Value::from("yy")]),
            ],
            vec![Value::Integer(1), Value::from("x")], // mixed: Values layout
        ];
        for run in runs {
            let b = ColumnarBatch::from_values(&run);
            for (row, v) in run.iter().enumerate() {
                assert_eq!(b.row_marshaled_size(row), v.marshaled_size(), "{v:?}");
            }
            // View slicing preserves per-row sizes.
            if run.len() > 1 {
                let s = b.slice(1, run.len());
                assert_eq!(s.row_marshaled_size(0), run[1].marshaled_size());
            }
        }
    }

    #[test]
    fn batch_round_trip_is_lossless() {
        let runs: Vec<Vec<Value>> = vec![
            vec![],
            (0..5).map(Value::Integer).collect(),
            vec![Value::Real(0.5), Value::Real(f64::NAN)],
            vec![Value::from("a"), Value::from("bb")],
            vec![Value::synthetic_array(3_000_000); 3],
            vec![Value::Integer(1), Value::from("x"), Value::Bag(vec![])],
            vec![metric(0, 1, 2), metric(3, 4, 5)],
        ];
        for run in runs {
            let b = Batch::new(run.clone());
            let round = ColumnarBatch::from_batch(&b).to_batch();
            // NaN != NaN under PartialEq; compare via debug formatting.
            assert_eq!(format!("{:?}", round.values()), format!("{:?}", &run[..]));
        }
    }

    #[test]
    fn batch_views_slice_all_columns() {
        let run = vec![metric(0, 1, 10), metric(0, 2, 20), metric(0, 3, 30)];
        let b = ColumnarBatch::from_values(&run).slice(1, 3);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.column("bytes").unwrap().as_i64(), Some(&[20i64, 30][..]));
        assert_eq!(b.value_at(0), Some(metric(0, 2, 20)));
        assert!(b.single().is_none());
        let single = ColumnarBatch::from_values(&[Value::Integer(9)]);
        assert_eq!(single.single().unwrap().as_i64(), Some(&[9i64][..]));
    }
}
