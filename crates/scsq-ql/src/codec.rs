//! Marshaling: the binary wire format for SCSQL objects.
//!
//! §2.3: the sender driver "marshals \[objects\] and sends the buffer
//! contents to subscribers"; the receiver driver de-marshals
//! (materializes) them. The format is a compact little-endian tagged
//! encoding. Synthetic arrays encode only their accounting header — the
//! simulated payload bytes never exist — and decode back to synthetic
//! arrays, so marshaling round-trips for every [`Value`].

use crate::error::QlError;
use crate::value::{ArrayData, SpHandle, StreamHandle, Value};

/// Type tags of the wire format.
mod tag {
    pub const INTEGER: u8 = 0x01;
    pub const REAL: u8 = 0x02;
    pub const STR: u8 = 0x03;
    pub const BOOL: u8 = 0x04;
    pub const ARRAY_REAL: u8 = 0x05;
    pub const ARRAY_COMPLEX: u8 = 0x06;
    pub const ARRAY_SYNTHETIC: u8 = 0x07;
    pub const BAG: u8 = 0x08;
    pub const SP: u8 = 0x09;
    pub const STREAM: u8 = 0x0A;
}

/// Encodes a value, appending to `out`.
pub fn encode(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Integer(i) => {
            out.push(tag::INTEGER);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            out.push(tag::REAL);
            out.extend_from_slice(&r.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(tag::STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            out.push(tag::BOOL);
            out.push(u8::from(*b));
        }
        Value::Array(ArrayData::Real(v)) => {
            out.push(tag::ARRAY_REAL);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Value::Array(ArrayData::Complex(v)) => {
            out.push(tag::ARRAY_COMPLEX);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            for (re, im) in v {
                out.extend_from_slice(&re.to_le_bytes());
                out.extend_from_slice(&im.to_le_bytes());
            }
        }
        Value::Array(ArrayData::Synthetic { bytes }) => {
            out.push(tag::ARRAY_SYNTHETIC);
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        Value::Bag(items) => {
            out.push(tag::BAG);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode(item, out);
            }
        }
        Value::Sp(SpHandle(h)) => {
            out.push(tag::SP);
            out.extend_from_slice(&h.to_le_bytes());
        }
        Value::Stream(StreamHandle(h)) => {
            out.push(tag::STREAM);
            out.extend_from_slice(&h.to_le_bytes());
        }
    }
}

/// Encodes a value into a fresh buffer.
pub fn encode_to_vec(value: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode(value, &mut out);
    out
}

/// Decodes one value from the front of `bytes`, returning it and the
/// number of bytes consumed.
///
/// # Errors
///
/// [`QlError::Codec`] on truncated input, an unknown tag, or invalid
/// UTF-8 in a string.
pub fn decode(bytes: &[u8]) -> Result<(Value, usize), QlError> {
    let mut r = Reader { bytes, pos: 0 };
    let v = r.value()?;
    Ok((v, r.pos))
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], QlError> {
        if self.pos + n > self.bytes.len() {
            return Err(QlError::Codec(format!(
                "truncated input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, QlError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, QlError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, QlError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, QlError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn value(&mut self) -> Result<Value, QlError> {
        let t = self.u8()?;
        Ok(match t {
            tag::INTEGER => Value::Integer(self.u64()? as i64),
            tag::REAL => Value::Real(self.f64()?),
            tag::STR => {
                let len = self.u32()? as usize;
                let raw = self.take(len)?;
                let s = std::str::from_utf8(raw)
                    .map_err(|e| QlError::Codec(format!("invalid UTF-8 in string: {e}")))?;
                Value::Str(s.to_string())
            }
            tag::BOOL => Value::Bool(self.u8()? != 0),
            tag::ARRAY_REAL => {
                let len = self.u64()? as usize;
                let mut v = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    v.push(self.f64()?);
                }
                Value::Array(ArrayData::Real(v))
            }
            tag::ARRAY_COMPLEX => {
                let len = self.u64()? as usize;
                let mut v = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    v.push((self.f64()?, self.f64()?));
                }
                Value::Array(ArrayData::Complex(v))
            }
            tag::ARRAY_SYNTHETIC => Value::synthetic_array(self.u64()?),
            tag::BAG => {
                let len = self.u32()? as usize;
                let mut items = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    items.push(self.value()?);
                }
                Value::Bag(items)
            }
            tag::SP => Value::Sp(SpHandle(self.u64()?)),
            tag::STREAM => Value::Stream(StreamHandle(self.u64()?)),
            other => {
                return Err(QlError::Codec(format!(
                    "unknown type tag 0x{other:02x} at offset {}",
                    self.pos - 1
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let bytes = encode_to_vec(&v);
        let (back, used) = decode(&bytes).expect("decode");
        assert_eq!(back, v);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(Value::Integer(-42));
        round_trip(Value::Integer(i64::MAX));
        round_trip(Value::Real(std::f64::consts::PI));
        round_trip(Value::from("héllo wörld"));
        round_trip(Value::from(""));
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
    }

    #[test]
    fn arrays_round_trip() {
        round_trip(Value::from(vec![1.0, -2.5, 1e300]));
        round_trip(Value::Array(ArrayData::Complex(vec![
            (1.0, -1.0),
            (0.0, 2.0),
        ])));
        round_trip(Value::synthetic_array(3_000_000));
    }

    #[test]
    fn nested_bags_round_trip() {
        round_trip(Value::Bag(vec![
            Value::Integer(1),
            Value::Bag(vec![Value::from("x"), Value::synthetic_array(10)]),
            Value::Sp(SpHandle(9)),
            Value::Stream(StreamHandle(3)),
        ]));
    }

    #[test]
    fn synthetic_array_encoding_is_tiny() {
        // 3 MB of simulated payload costs 9 bytes on the real wire.
        let bytes = encode_to_vec(&Value::synthetic_array(3_000_000));
        assert_eq!(bytes.len(), 9);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut bytes = encode_to_vec(&Value::Integer(7));
        bytes.truncate(4);
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let err = decode(&[0xFF]).unwrap_err();
        assert!(err.to_string().contains("unknown type tag"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn marshaled_size_equals_wire_length_for_materialized_values() {
        for v in [
            Value::Integer(7),
            Value::Real(1.5),
            Value::from("hello"),
            Value::Bool(true),
            Value::from(vec![1.0, 2.0, 3.0]),
            Value::Array(ArrayData::Complex(vec![(1.0, 2.0)])),
            Value::Bag(vec![Value::Integer(1), Value::from("x")]),
            Value::Sp(SpHandle(3)),
            Value::Stream(StreamHandle(8)),
        ] {
            assert_eq!(
                v.marshaled_size(),
                encode_to_vec(&v).len() as u64,
                "size model diverges from the codec for {v}"
            );
        }
        // Synthetic arrays intentionally charge their simulated payload,
        // not the 9-byte accounting header.
        let s = Value::synthetic_array(1_000);
        assert_eq!(encode_to_vec(&s).len(), 9);
        assert_eq!(s.marshaled_size(), 1_009);
    }

    #[test]
    fn decode_reports_consumed_length_with_trailing_data() {
        let mut bytes = encode_to_vec(&Value::Bool(true));
        let expect = bytes.len();
        bytes.extend_from_slice(&[1, 2, 3]);
        let (_, used) = decode(&bytes).unwrap();
        assert_eq!(used, expect);
    }
}
