//! Error type for SCSQL processing.

use std::fmt;

/// Errors from lexing, parsing, catalog resolution, or marshaling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QlError {
    /// Lexical error: unexpected character or malformed literal.
    Lex {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Description of the problem.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Description of the problem.
        msg: String,
    },
    /// Catalog error: unknown function, wrong arity, or duplicate
    /// definition.
    Catalog(String),
    /// Marshaling error (truncated or corrupt wire data).
    Codec(String),
}

impl QlError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: u32, col: u32, msg: impl Into<String>) -> Self {
        QlError::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    /// Convenience constructor for lexical errors.
    pub fn lex(line: u32, col: u32, msg: impl Into<String>) -> Self {
        QlError::Lex {
            line,
            col,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Lex { line, col, msg } => {
                write!(f, "lexical error at {line}:{col}: {msg}")
            }
            QlError::Parse { line, col, msg } => {
                write!(f, "syntax error at {line}:{col}: {msg}")
            }
            QlError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            QlError::Codec(msg) => write!(f, "marshaling error: {msg}"),
        }
    }
}

impl std::error::Error for QlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = QlError::parse(3, 14, "expected `from`");
        assert_eq!(e.to_string(), "syntax error at 3:14: expected `from`");
        let e = QlError::lex(1, 2, "unterminated string");
        assert!(e.to_string().starts_with("lexical error at 1:2"));
    }
}
