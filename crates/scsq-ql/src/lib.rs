#![deny(missing_docs)]
//! # scsq-ql — the SCSQL continuous query language
//!
//! §2.4 of the paper: "SCSQL is a query language similar to SQL, but
//! extended with streams and stream processes as first-class objects."
//! This crate implements the *language* half of SCSQ:
//!
//! * [`value`] — the SCSQL object model (paper Fig 4): integers, reals,
//!   strings, arrays (including *synthetic* arrays whose bytes are
//!   simulated rather than materialized), bags, and handles to streams
//!   and stream processes.
//! * [`codec`] — the marshaling format used by the stream carriers
//!   (§2.3: objects are marshaled into send buffers).
//! * [`lexer`] / [`parser`] / [`ast`] — SCSQL surface syntax. The six
//!   inbound queries, the intra-BlueGene measurement queries, the
//!   mapreduce-grep query, and the `radix2` function from the paper all
//!   parse verbatim.
//! * [`catalog`] — the function catalog: the built-in vocabulary
//!   (`sp`, `spv`, `extract`, `merge`, `streamof`, `count`, `iota`, …)
//!   plus user-defined query functions (`create function`).
//!
//! Query *execution* lives in `scsq-engine`; this crate is pure syntax
//! and data, with no dependency on the simulator.
//!
//! ## Example
//!
//! ```
//! use scsq_ql::parse_statement;
//!
//! let stmt = parse_statement(
//!     "select extract(b) from sp a, sp b \
//!      where b=sp(streamof(count(extract(a))), 'bg', 0) \
//!      and a=sp(gen_array(3000000, 100), 'bg', 1);",
//! )?;
//! # Ok::<(), scsq_ql::QlError>(())
//! ```

pub mod ast;
pub mod batch;
pub mod catalog;
pub mod codec;
pub mod column;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod value;

pub use ast::{Expr, FunctionDef, PredOp, Predicate, SelectQuery, Statement, TypeName, VarDecl};
pub use batch::Batch;
pub use catalog::{Builtin, Catalog, Resolved};
pub use column::{ColRow, Column, ColumnData, ColumnarBatch, SelectionVector, ValidityBitmap};
pub use error::QlError;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_program, parse_statement};
pub use printer::{expr_to_scsql, statement_to_scsql};
pub use value::{ArrayData, SpHandle, StreamHandle, Value};
