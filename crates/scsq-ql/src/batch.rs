//! Zero-copy tuple batches.
//!
//! A [`Batch`] is an immutable run of [`Value`]s with a sub-range view.
//! The engine produces all elements delivered by one receive buffer as
//! a single batch; fanning it out to several subscribers clones an
//! `Arc`, not the tuples, and the last (or only) consumer takes the
//! values back out by move when the batch is uniquely owned.
//!
//! Single heap-free tuples — the overwhelmingly common case on the
//! per-event path, where every generated array or aggregate result
//! travels alone — are stored inline ([`Batch::one`]) so that handing
//! one stage's output to the next channel involves no allocation at
//! all: no `Vec`, no `Arc`, just a 24-byte value moved by the caller.

use crate::value::Value;
use std::sync::Arc;

/// An immutable shared batch of tuples with a sub-range view.
///
/// Cloning a `Batch` is O(1) for the shared representation and a bit
/// copy for the inline single-tuple representation. Use
/// [`Batch::into_values`] (or the consuming iterator) at the final
/// consumer to recover the owned tuples without copying when no other
/// reference exists.
#[derive(Debug, Clone)]
pub struct Batch {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// A single heap-free tuple, stored inline. Invariant: the value
    /// satisfies [`Value::is_inline`], so cloning this variant never
    /// allocates.
    One(Value),
    /// A single heap-holding tuple behind one `Arc` — fan-out clones
    /// share the value without the `Vec` a full shared run would cost.
    OneShared(Arc<Value>),
    /// A reference-counted run with a sub-range view.
    Shared {
        values: Arc<Vec<Value>>,
        start: usize,
        end: usize,
    },
}

impl Batch {
    /// Wraps a freshly produced run of tuples. A single heap-free tuple
    /// is stored inline; everything else becomes a shared run.
    pub fn new(mut values: Vec<Value>) -> Self {
        if values.len() == 1 {
            return Batch::one(values.pop().expect("length checked"));
        }
        let end = values.len();
        Batch {
            repr: Repr::Shared {
                values: Arc::new(values),
                start: 0,
                end,
            },
        }
    }

    /// Wraps a single tuple without touching the allocator when the
    /// value is heap-free; a heap-holding value goes behind a single
    /// `Arc` (no `Vec`), so a lone `Str`/`Bag` — every metric sample —
    /// costs one allocation to batch and fans out by `Arc` clone, not
    /// deep copy.
    pub fn one(value: Value) -> Self {
        if value.is_inline() {
            Batch {
                repr: Repr::One(value),
            }
        } else {
            Batch {
                repr: Repr::OneShared(Arc::new(value)),
            }
        }
    }

    /// Number of tuples in view.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::One(_) | Repr::OneShared(_) => 1,
            Repr::Shared { start, end, .. } => end - start,
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tuples in view, borrowed.
    pub fn values(&self) -> &[Value] {
        match &self.repr {
            Repr::One(v) => std::slice::from_ref(v),
            Repr::OneShared(v) => std::slice::from_ref(v),
            Repr::Shared { values, start, end } => &values[*start..*end],
        }
    }

    /// A narrower view of the same backing storage (no tuple copies for
    /// shared runs; a bit copy for the inline representation).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> Batch {
        assert!(start <= end && end <= self.len(), "slice out of range");
        match &self.repr {
            Repr::One(_) | Repr::OneShared(_) => {
                if start == 0 && end == 1 {
                    self.clone()
                } else {
                    Batch::new(Vec::new())
                }
            }
            Repr::Shared {
                values,
                start: s0,
                end: _,
            } => Batch {
                repr: Repr::Shared {
                    values: Arc::clone(values),
                    start: s0 + start,
                    end: s0 + end,
                },
            },
        }
    }

    /// Iterates over the tuples in view.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values().iter()
    }

    /// Recovers the owned tuples. Moves them out without cloning when
    /// this batch is the only reference and views the full run; clones
    /// just the viewed range otherwise. Prefer the consuming iterator
    /// (`for v in batch`) when a `Vec` is not needed: it hands an
    /// inline tuple over without building one.
    pub fn into_values(self) -> Vec<Value> {
        match self.repr {
            Repr::One(v) => vec![v],
            Repr::OneShared(v) => {
                vec![Arc::try_unwrap(v).unwrap_or_else(|shared| (*shared).clone())]
            }
            Repr::Shared { values, start, end } => {
                let full = start == 0 && end == values.len();
                match Arc::try_unwrap(values) {
                    Ok(vec) if full => vec,
                    Ok(vec) => vec[start..end].to_vec(),
                    Err(shared) => shared[start..end].to_vec(),
                }
            }
        }
    }
}

impl From<Vec<Value>> for Batch {
    fn from(values: Vec<Value>) -> Self {
        Batch::new(values)
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Consuming iterator over a batch's tuples. The inline single-tuple
/// representation yields its value directly, with no intermediate
/// `Vec`.
#[derive(Debug)]
pub struct IntoIter {
    inner: IntoIterRepr,
}

#[derive(Debug)]
enum IntoIterRepr {
    One(std::option::IntoIter<Value>),
    Many(std::vec::IntoIter<Value>),
}

impl Iterator for IntoIter {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        match &mut self.inner {
            IntoIterRepr::One(it) => it.next(),
            IntoIterRepr::Many(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            IntoIterRepr::One(it) => it.size_hint(),
            IntoIterRepr::Many(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for IntoIter {}

impl IntoIterator for Batch {
    type Item = Value;
    type IntoIter = IntoIter;

    fn into_iter(self) -> IntoIter {
        let inner = match self.repr {
            Repr::One(v) => IntoIterRepr::One(Some(v).into_iter()),
            Repr::OneShared(v) => IntoIterRepr::One(
                Some(Arc::try_unwrap(v).unwrap_or_else(|shared| (*shared).clone())).into_iter(),
            ),
            repr => IntoIterRepr::Many(Batch { repr }.into_values().into_iter()),
        };
        IntoIter { inner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::new((0..5).map(Value::Integer).collect())
    }

    #[test]
    fn views_and_slices_share_storage() {
        let b = batch();
        assert_eq!(b.len(), 5);
        let s = b.slice(1, 4);
        assert_eq!(
            s.values(),
            &[Value::Integer(1), Value::Integer(2), Value::Integer(3)]
        );
        let ss = s.slice(1, 2);
        assert_eq!(ss.values(), &[Value::Integer(2)]);
        assert!(ss.slice(0, 0).is_empty());
    }

    #[test]
    fn unique_full_batch_moves_out() {
        let b = batch();
        let ptr = b.values().as_ptr();
        let v = b.into_values();
        assert_eq!(v.len(), 5);
        assert_eq!(v.as_ptr(), ptr, "no copy when uniquely owned");
    }

    #[test]
    fn shared_or_sliced_batches_clone_their_view() {
        let b = batch();
        let clone = b.clone();
        let v = b.into_values();
        assert_eq!(v.len(), 5);
        assert_eq!(clone.slice(2, 5).into_values().len(), 3);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn out_of_range_slice_panics() {
        batch().slice(2, 6);
    }

    #[test]
    fn single_inline_tuple_is_stored_inline() {
        let b = Batch::one(Value::Integer(7));
        assert!(matches!(b.repr, Repr::One(_)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.values(), &[Value::Integer(7)]);
        // Batch::new takes the same fast path for a 1-element run.
        let b2 = Batch::new(vec![Value::synthetic_array(1024)]);
        assert!(matches!(b2.repr, Repr::One(_)));
        // A heap-holding single value goes behind a lone Arc (no Vec),
        // so fan-out clones share rather than deep-copy.
        let s = Batch::one(Value::Str("x".into()));
        assert!(matches!(s.repr, Repr::OneShared(_)));
        assert_eq!(s.values(), &[Value::Str("x".into())]);
        let s2 = Batch::new(vec![Value::Bag(vec![Value::Integer(1)])]);
        assert!(matches!(s2.repr, Repr::OneShared(_)));
        assert_eq!(s2.len(), 1);
        // Unique ownership moves the value out; shared clones deep-copy.
        let shared = s2.clone();
        assert_eq!(s2.into_values(), vec![Value::Bag(vec![Value::Integer(1)])]);
        assert_eq!(
            shared.into_iter().collect::<Vec<_>>(),
            vec![Value::Bag(vec![Value::Integer(1)])]
        );
    }

    #[test]
    fn inline_slices_behave_like_shared_slices() {
        let b = Batch::one(Value::Integer(7));
        assert_eq!(b.slice(0, 1).values(), &[Value::Integer(7)]);
        assert!(b.slice(0, 0).is_empty());
        assert!(b.slice(1, 1).is_empty());
    }

    #[test]
    fn consuming_iterator_yields_owned_tuples() {
        let one: Vec<Value> = Batch::one(Value::Integer(3)).into_iter().collect();
        assert_eq!(one, vec![Value::Integer(3)]);
        let many: Vec<Value> = batch().into_iter().collect();
        assert_eq!(many.len(), 5);
        let sliced: Vec<Value> = batch().slice(2, 4).into_iter().collect();
        assert_eq!(sliced, vec![Value::Integer(2), Value::Integer(3)]);
    }
}
