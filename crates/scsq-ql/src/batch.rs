//! Zero-copy tuple batches.
//!
//! A [`Batch`] is an immutable, reference-counted run of [`Value`]s with
//! a sub-range view. The engine produces all elements delivered by one
//! receive buffer as a single batch; fanning it out to several
//! subscribers clones an `Arc`, not the tuples, and the last (or only)
//! consumer takes the values back out by move when the batch is
//! uniquely owned.

use crate::value::Value;
use std::sync::Arc;

/// An immutable shared batch of tuples with a sub-range view.
///
/// Cloning a `Batch` is O(1); the backing values are shared. Use
/// [`Batch::into_values`] at the final consumer to recover the owned
/// `Vec<Value>` without copying when no other reference exists.
#[derive(Debug, Clone)]
pub struct Batch {
    values: Arc<Vec<Value>>,
    start: usize,
    end: usize,
}

impl Batch {
    /// Wraps a freshly produced run of tuples.
    pub fn new(values: Vec<Value>) -> Self {
        let end = values.len();
        Batch {
            values: Arc::new(values),
            start: 0,
            end,
        }
    }

    /// Number of tuples in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The tuples in view, borrowed.
    pub fn values(&self) -> &[Value] {
        &self.values[self.start..self.end]
    }

    /// A narrower view of the same backing storage (no tuple copies).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> Batch {
        assert!(start <= end && end <= self.len(), "slice out of range");
        Batch {
            values: Arc::clone(&self.values),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Iterates over the tuples in view.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values().iter()
    }

    /// Recovers the owned tuples. Moves them out without cloning when
    /// this batch is the only reference and views the full run; clones
    /// just the viewed range otherwise.
    pub fn into_values(self) -> Vec<Value> {
        let full = self.start == 0 && self.end == self.values.len();
        match Arc::try_unwrap(self.values) {
            Ok(vec) if full => vec,
            Ok(vec) => vec[self.start..self.end].to_vec(),
            Err(shared) => shared[self.start..self.end].to_vec(),
        }
    }
}

impl From<Vec<Value>> for Batch {
    fn from(values: Vec<Value>) -> Self {
        Batch::new(values)
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::new((0..5).map(Value::Integer).collect())
    }

    #[test]
    fn views_and_slices_share_storage() {
        let b = batch();
        assert_eq!(b.len(), 5);
        let s = b.slice(1, 4);
        assert_eq!(
            s.values(),
            &[Value::Integer(1), Value::Integer(2), Value::Integer(3)]
        );
        let ss = s.slice(1, 2);
        assert_eq!(ss.values(), &[Value::Integer(2)]);
        assert!(ss.slice(0, 0).is_empty());
    }

    #[test]
    fn unique_full_batch_moves_out() {
        let b = batch();
        let ptr = b.values().as_ptr();
        let v = b.into_values();
        assert_eq!(v.len(), 5);
        assert_eq!(v.as_ptr(), ptr, "no copy when uniquely owned");
    }

    #[test]
    fn shared_or_sliced_batches_clone_their_view() {
        let b = batch();
        let clone = b.clone();
        let v = b.into_values();
        assert_eq!(v.len(), 5);
        assert_eq!(clone.slice(2, 5).into_values().len(), 3);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn out_of_range_slice_panics() {
        batch().slice(2, 6);
    }
}
