//! Property-based tests for the network models.

use proptest::prelude::*;
use scsq_net::{EtherParams, Ethernet, FlowId, TorusDims, TorusNet, TorusParams};
use scsq_sim::SimTime;

fn arb_dims() -> impl Strategy<Value = TorusDims> {
    (1usize..6, 1usize..6, 1usize..4).prop_map(|(x, y, z)| TorusDims::new(x, y, z))
}

proptest! {
    /// Dimension-ordered routes have torus-metric length, start at the
    /// source, end at the destination, and hop only between adjacent
    /// nodes.
    #[test]
    fn routes_are_shortest_and_adjacent(dims in arb_dims(), seed in any::<u64>()) {
        let n = dims.node_count();
        let src = (seed as usize) % n;
        let dst = (seed >> 32) as usize % n;
        let route = dims.route(src, dst);
        prop_assert_eq!(route[0], src);
        prop_assert_eq!(*route.last().expect("non-empty"), dst);
        prop_assert_eq!(route.len() - 1, dims.distance(src, dst));
        for w in route.windows(2) {
            prop_assert_eq!(dims.distance(w[0], w[1]), 1, "route {:?}", route);
        }
        // No node is visited twice (minimal routes are simple paths).
        let mut seen = route.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), route.len());
    }

    /// The torus distance is a metric: symmetric, zero iff equal, and
    /// satisfies the triangle inequality.
    #[test]
    fn torus_distance_is_a_metric(dims in arb_dims(), seed in any::<u64>()) {
        let n = dims.node_count();
        let a = (seed as usize) % n;
        let b = (seed >> 20) as usize % n;
        let c = (seed >> 40) as usize % n;
        prop_assert_eq!(dims.distance(a, b), dims.distance(b, a));
        prop_assert_eq!(dims.distance(a, a), 0);
        if a != b {
            prop_assert!(dims.distance(a, b) > 0);
        }
        prop_assert!(dims.distance(a, c) <= dims.distance(a, b) + dims.distance(b, c));
    }

    /// Torus transmissions are causal and monotone: delivery after
    /// injection, injection after readiness; a later message of the same
    /// flow on the same path never arrives earlier.
    #[test]
    fn torus_transmissions_are_causal(
        bytes in proptest::collection::vec(1u64..500_000, 1..30),
        ready_step in 0u64..50_000,
    ) {
        let dims = TorusDims::new(4, 4, 2);
        let mut net = TorusNet::new(dims, TorusParams::default());
        let mut prev_delivery = SimTime::ZERO;
        for (i, &b) in bytes.iter().enumerate() {
            let ready = SimTime::from_nanos(i as u64 * ready_step);
            let out = net.transmit(FlowId(1), 5, 0, b, ready);
            prop_assert!(out.inject_done > ready);
            prop_assert!(out.delivered > out.inject_done);
            prop_assert!(out.delivered >= prev_delivery);
            prev_delivery = out.delivered;
        }
        prop_assert_eq!(net.messages(), bytes.len() as u64);
        prop_assert_eq!(net.bytes(), bytes.iter().sum::<u64>());
    }

    /// Padding invariant: any message at or below the minimum packet
    /// size costs exactly as much as a minimum-size one.
    #[test]
    fn sub_minimum_messages_cost_the_same(b in 1u64..1024) {
        let dims = TorusDims::new(4, 4, 2);
        let params = TorusParams::default();
        let mut small = TorusNet::new(dims, params.clone());
        let mut min = TorusNet::new(dims, params);
        let a = small.transmit(FlowId(1), 1, 0, b, SimTime::ZERO);
        let c = min.transmit(FlowId(1), 1, 0, 1024, SimTime::ZERO);
        prop_assert_eq!(a.delivered, c.delivered);
    }

    /// Ethernet conservation: messages through disjoint host pairs do
    /// not affect each other.
    #[test]
    fn ethernet_disjoint_pairs_are_independent(bytes in 1u64..1_000_000) {
        let mut alone = Ethernet::new(4, EtherParams::default());
        let a = alone.transmit(FlowId(1), 0, 1, bytes, SimTime::ZERO);

        let mut shared = Ethernet::new(4, EtherParams::default());
        shared.transmit(FlowId(2), 2, 3, 1_000_000, SimTime::ZERO);
        let b = shared.transmit(FlowId(1), 0, 1, bytes, SimTime::ZERO);
        prop_assert_eq!(a.delivered, b.delivered);
    }

    /// Ethernet FIFO ordering per sender: deliveries to the same
    /// destination preserve send order.
    #[test]
    fn ethernet_preserves_order(sizes in proptest::collection::vec(1u64..200_000, 1..30)) {
        let mut net = Ethernet::new(2, EtherParams::default());
        let mut prev = SimTime::ZERO;
        for &s in &sizes {
            let out = net.transmit(FlowId(1), 0, 1, s, SimTime::ZERO);
            prop_assert!(out.delivered > prev);
            prev = out.delivered;
        }
    }
}
