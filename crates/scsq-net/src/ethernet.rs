//! Gigabit Ethernet model: per-host full-duplex NICs and an ideal switch.
//!
//! §2.1: "Each computer in the back-end cluster has a 1 Gigabit Ethernet
//! interface connected via a switch to the BlueGene"; "each I/O-node is
//! equipped with a 1 Gbit/s network interface". The switch itself is
//! modeled as non-blocking (only NICs contend), which matches the paper's
//! observation that the peak inbound rate (~920 Mbps) is governed by a
//! single NIC.

use crate::{Bandwidth, FlowId};
use scsq_sim::{FifoServer, SimDur, SimTime};

/// Calibration constants for the Ethernet fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct EtherParams {
    /// Line rate of every NIC (full duplex: tx and rx are separate
    /// servers).
    pub nic: Bandwidth,
    /// One-way switch + propagation latency.
    pub latency: SimDur,
    /// Fixed per-message (per TCP segment, at transport granularity)
    /// software overhead on the sending host.
    pub per_msg_overhead: SimDur,
}

impl Default for EtherParams {
    fn default() -> Self {
        EtherParams {
            nic: Bandwidth::from_gbps(1.0),
            latency: SimDur::from_micros(50),
            per_msg_overhead: SimDur::from_micros(30),
        }
    }
}

/// Timeline of one message through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtherOutcome {
    /// When the sending NIC finished serializing the message (the send
    /// buffer becomes reusable).
    pub sent: SimTime,
    /// When the receiving NIC finished delivering the message.
    pub delivered: SimTime,
}

/// An Ethernet fabric of `hosts` full-duplex NICs joined by an ideal
/// switch.
#[derive(Debug)]
pub struct Ethernet {
    params: EtherParams,
    tx: Vec<FifoServer>,
    rx: Vec<FifoServer>,
    messages: u64,
    bytes: u64,
}

impl Ethernet {
    /// Creates a fabric with `hosts` attached hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn new(hosts: usize, params: EtherParams) -> Self {
        assert!(hosts > 0, "fabric needs at least one host");
        Ethernet {
            params,
            tx: vec![FifoServer::new(); hosts],
            rx: vec![FifoServer::new(); hosts],
            messages: 0,
            bytes: 0,
        }
    }

    /// Number of attached hosts.
    pub fn hosts(&self) -> usize {
        self.tx.len()
    }

    /// The calibration constants.
    pub fn params(&self) -> &EtherParams {
        &self.params
    }

    /// Total messages transmitted.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes transmitted.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Transmits `bytes` from `src` to `dst` with payload ready at
    /// `ready`. The flow id is accepted for symmetry with the torus model
    /// (Ethernet NICs do not pay switch penalties).
    ///
    /// # Panics
    ///
    /// Panics if a host index is out of range, `src == dst`, or `bytes`
    /// is zero.
    pub fn transmit(
        &mut self,
        _flow: FlowId,
        src: usize,
        dst: usize,
        bytes: u64,
        ready: SimTime,
    ) -> EtherOutcome {
        assert!(bytes > 0, "cannot transmit an empty message");
        assert!(src < self.hosts(), "src host {src} out of range");
        assert!(dst < self.hosts(), "dst host {dst} out of range");
        assert_ne!(src, dst, "loopback traffic does not use the fabric");
        self.messages += 1;
        self.bytes += bytes;

        let rate = self.params.nic.bytes_per_sec();
        let tx_service = self.params.per_msg_overhead + SimDur::for_bytes(bytes, rate);
        let tx = self.tx[src].serve(ready, tx_service);

        let arrival = tx.finish + self.params.latency;
        let rx_service = SimDur::for_bytes(bytes, rate);
        let rx = self.rx[dst].serve(arrival, rx_service);

        EtherOutcome {
            sent: tx.finish,
            delivered: rx.finish,
        }
    }

    /// Busy time of a host's transmit NIC.
    pub fn tx_busy(&self, host: usize) -> SimDur {
        self.tx[host].busy_total()
    }

    /// Busy time of a host's receive NIC.
    pub fn rx_busy(&self, host: usize) -> SimDur {
        self.rx[host].busy_total()
    }

    /// Walks the fabric's contended state through a coalescing probe.
    pub fn probe(&mut self, p: &mut scsq_sim::StateProbe<'_>) {
        for s in &mut self.tx {
            s.probe(p);
        }
        for s in &mut self.rx {
            s.probe(p);
        }
        p.num(&mut self.messages);
        p.num(&mut self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Ethernet {
        Ethernet::new(4, EtherParams::default())
    }

    #[test]
    fn single_transfer_is_nic_plus_latency() {
        let mut net = fabric();
        let out = net.transmit(FlowId(0), 0, 1, 125_000, SimTime::ZERO);
        // tx: 30us overhead + 1ms serialize; +50us latency; rx: 1ms.
        assert_eq!(out.sent, SimTime::from_micros(1_030));
        assert_eq!(out.delivered, SimTime::from_micros(2_080));
    }

    #[test]
    fn sender_nic_is_shared_between_flows() {
        let mut net = fabric();
        let a = net.transmit(FlowId(1), 0, 1, 1_000_000, SimTime::ZERO);
        let b = net.transmit(FlowId(2), 0, 2, 1_000_000, SimTime::ZERO);
        // Flow 2's segment must wait for flow 1's to leave the tx NIC.
        assert!(b.sent > a.sent);
        assert!(b.sent >= a.sent + SimDur::for_bytes(1_000_000, 125e6));
    }

    #[test]
    fn distinct_senders_do_not_contend() {
        let mut net = fabric();
        let a = net.transmit(FlowId(1), 0, 2, 1_000_000, SimTime::ZERO);
        let b = net.transmit(FlowId(2), 1, 3, 1_000_000, SimTime::ZERO);
        assert_eq!(a.sent, b.sent, "independent NICs serialize in parallel");
    }

    #[test]
    fn receiver_nic_serializes_fan_in() {
        let mut net = fabric();
        let a = net.transmit(FlowId(1), 0, 3, 1_000_000, SimTime::ZERO);
        let b = net.transmit(FlowId(2), 1, 3, 1_000_000, SimTime::ZERO);
        // Both arrive simultaneously; the rx NIC can only drain one at a
        // time.
        assert!(b.delivered > a.delivered);
    }

    #[test]
    fn sustained_throughput_matches_nic_rate() {
        let mut net = fabric();
        let seg = 65_536u64;
        let n = 200;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = net.transmit(FlowId(1), 0, 1, seg, SimTime::ZERO).delivered;
        }
        let rate = (seg * n) as f64 / last.as_secs_f64();
        // 64 KB per 30us overhead + 524us serialize: ~94% of line rate.
        assert!(rate > 0.9 * 125e6 && rate < 125e6, "rate={rate}");
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_is_rejected() {
        fabric().transmit(FlowId(0), 1, 1, 100, SimTime::ZERO);
    }
}
