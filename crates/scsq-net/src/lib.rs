#![warn(missing_docs)]
//! # scsq-net — network models for the SCSQ reproduction
//!
//! This crate models the three interconnects of the LOFAR hardware
//! environment described in §2.1 of the paper:
//!
//! * [`torus`] — the BlueGene/L **3D torus** (1.4 Gbps per link) used for
//!   compute-node ↔ compute-node MPI streams. Messages are routed
//!   dimension-ordered; every hop occupies the single-threaded
//!   *communication co-processor* of the node it traverses, which is what
//!   makes the paper's "sequential" vs "balanced" node selections perform
//!   differently (Fig 7/8).
//! * [`tree`] — the BlueGene **tree network** (2.8 Gbps) connecting the
//!   compute nodes of a *pset* to their I/O node.
//! * [`ethernet`] — Gigabit Ethernet NICs and an ideal switch, used
//!   between the Linux clusters and the BlueGene I/O nodes.
//!
//! All models are analytic-queueing on top of [`scsq_sim`]'s
//! `busy_until` servers: a transfer is a single bookkeeping operation, not
//! a packet storm, so full 300 MB experiment streams simulate in
//! milliseconds while still exhibiting contention, pipelining, and
//! switching penalties.

pub mod ethernet;
pub mod torus;
pub mod tree;

pub use ethernet::{EtherParams, Ethernet};
pub use torus::{TorusCoord, TorusDims, TorusNet, TorusParams, TransmitOutcome};
pub use tree::{TreeNet, TreeParams};

/// Identifies one logical stream flow end-to-end (one producer RP's
/// sequence of buffers). Switching penalties key off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// A bandwidth in bytes per second.
///
/// Constructors take the units used in the paper so the hardware constants
/// read like the text ("1.4 Gbps 3D torus network").
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From gigabits per second (the unit the paper quotes for links).
    pub fn from_gbps(gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive: {gbps}");
        Bandwidth(gbps * 1e9 / 8.0)
    }

    /// From megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        assert!(mbps > 0.0, "bandwidth must be positive: {mbps}");
        Bandwidth(mbps * 1e6 / 8.0)
    }

    /// From megabytes per second.
    pub fn from_mbytes_per_sec(mb: f64) -> Self {
        assert!(mb > 0.0, "bandwidth must be positive: {mb}");
        Bandwidth(mb * 1e6)
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Megabits per second (for reporting like the paper's Fig 15 axis).
    pub fn as_mbps(self) -> f64 {
        self.0 * 8.0 / 1e6
    }

    /// Scales the bandwidth by a factor (e.g. an efficiency derating).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn scaled(self, factor: f64) -> Bandwidth {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid scale factor {factor}"
        );
        Bandwidth(self.0 * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_unit_conversions() {
        assert_eq!(Bandwidth::from_gbps(1.0).bytes_per_sec(), 125e6);
        assert_eq!(Bandwidth::from_mbps(800.0).bytes_per_sec(), 100e6);
        assert_eq!(Bandwidth::from_mbytes_per_sec(175.0).bytes_per_sec(), 175e6);
        assert!((Bandwidth::from_gbps(1.0).as_mbps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_scaling() {
        let b = Bandwidth::from_gbps(1.4).scaled(0.5);
        assert!((b.as_mbps() - 700.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        Bandwidth::from_gbps(0.0);
    }
}
