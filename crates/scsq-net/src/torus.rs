//! The BlueGene/L 3D torus interconnect.
//!
//! §2.1 of the paper: compute nodes are "connected by a 1.4 Gbps 3D torus
//! network"; "the time it takes for a compute node to send data to another
//! one depends on the relative locations of these nodes in the torus, and
//! how loaded the nodes between them are"; each node has a CPU dedicated
//! to communication (the *communication co-processor*). §3.1 adds two
//! behavioural facts this model must reproduce:
//!
//! * "1K is the smallest message size that can be exchanged in the
//!   BlueGene 3D torus" — messages are padded to [`TorusParams::min_packet`].
//! * "when messages are sent between non-adjacent nodes in BlueGene, they
//!   must be routed through the communication co-processors of the nodes
//!   in between. Communication will be slower if these co-processors are
//!   busy" — every hop occupies the intermediate node's co-processor
//!   ([`scsq_sim::SwitchingServer`]), and the receiving co-processor pays a
//!   switch penalty when alternating between source flows.
//!
//! The drop-off in bandwidth for buffers larger than ~1 KB, which the
//! paper attributes to cache misses in the send driver copy, is modeled by
//! [`TorusParams::cache_factor`] applied to the injection cost.

use crate::{Bandwidth, FlowId};
use scsq_sim::{FifoServer, SimDur, SimTime, SwitchingServer};
use std::collections::HashMap;

/// One hop of a precomputed route: the directed link it crosses and the
/// node it arrives at.
#[derive(Debug, Clone, Copy)]
struct RouteStep {
    /// Index into [`TorusNet::links`].
    link: u32,
    /// The hop's destination rank.
    node: u32,
}

/// All dimension-ordered routes of a partition, flattened into one step
/// array with per-pair offsets — built once per topology so the
/// per-message hot path never recomputes a path or hashes a link key.
///
/// The table is exactly [`TorusDims::route`] memoized: the route-cache
/// determinism test walks every `(src, dst)` pair and compares.
#[derive(Debug)]
struct RouteTable {
    /// `offsets[src * n + dst] .. offsets[src * n + dst + 1]` indexes
    /// the steps of the route from `src` to `dst`.
    offsets: Vec<u32>,
    steps: Vec<RouteStep>,
    /// Number of distinct directed links used by any route (the length
    /// of the dense link array).
    link_count: usize,
}

impl RouteTable {
    fn build(dims: TorusDims) -> RouteTable {
        let n = dims.node_count();
        let mut link_ids: HashMap<(usize, usize), u32> = HashMap::new();
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut steps = Vec::new();
        offsets.push(0u32);
        for src in 0..n {
            for dst in 0..n {
                let mut prev = src;
                for hop in dims.route(src, dst).into_iter().skip(1) {
                    let next_id = link_ids.len() as u32;
                    let link = *link_ids.entry((prev, hop)).or_insert(next_id);
                    steps.push(RouteStep {
                        link,
                        node: hop as u32,
                    });
                    prev = hop;
                }
                offsets.push(steps.len() as u32);
            }
        }
        RouteTable {
            offsets,
            steps,
            link_count: link_ids.len(),
        }
    }

    /// The precomputed steps of the `src → dst` route (empty when
    /// `src == dst`).
    fn steps(&self, n: usize, src: usize, dst: usize) -> &[RouteStep] {
        let i = src * n + dst;
        &self.steps[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Dimensions of a 3D torus partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusDims {
    /// Extent in X.
    pub x: usize,
    /// Extent in Y.
    pub y: usize,
    /// Extent in Z.
    pub z: usize,
}

/// A coordinate in the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusCoord {
    /// X coordinate.
    pub x: usize,
    /// Y coordinate.
    pub y: usize,
    /// Z coordinate.
    pub z: usize,
}

impl TorusDims {
    /// Creates torus dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "torus extents must be positive");
        TorusDims { x, y, z }
    }

    /// Total number of nodes in the partition.
    pub fn node_count(&self) -> usize {
        self.x * self.y * self.z
    }

    /// The coordinate of a node rank (x-major enumeration, matching the
    /// "enumeration of compute nodes in the BlueGene 3D torus is known"
    /// remark in §3.1).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn coord_of(&self, rank: usize) -> TorusCoord {
        assert!(rank < self.node_count(), "rank {rank} out of range");
        TorusCoord {
            x: rank % self.x,
            y: (rank / self.x) % self.y,
            z: rank / (self.x * self.y),
        }
    }

    /// The rank of a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the torus.
    pub fn rank_of(&self, c: TorusCoord) -> usize {
        assert!(
            c.x < self.x && c.y < self.y && c.z < self.z,
            "coordinate {c:?} outside torus {self:?}"
        );
        c.x + c.y * self.x + c.z * self.x * self.y
    }

    /// Signed step (+1 / -1 with wraparound) that moves `from` towards
    /// `to` along one dimension by the shorter way; ties go negative
    /// (towards lower coordinates), which reproduces the paper's Fig 7A
    /// layout where node 2's traffic to node 0 passes through node 1.
    fn step_towards(extent: usize, from: usize, to: usize) -> isize {
        if from == to {
            return 0;
        }
        let fwd = (to + extent - from) % extent;
        let back = (from + extent - to) % extent;
        if fwd < back {
            1
        } else {
            -1
        }
    }

    /// Hop distance on the torus metric (sum over dimensions of the
    /// shorter wrap distance).
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        let d = |extent: usize, p: usize, q: usize| {
            let fwd = (q + extent - p) % extent;
            let back = (p + extent - q) % extent;
            fwd.min(back)
        };
        d(self.x, ca.x, cb.x) + d(self.y, ca.y, cb.y) + d(self.z, ca.z, cb.z)
    }

    /// The dimension-ordered (X, then Y, then Z) route from `src` to
    /// `dst`, inclusive of both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if either rank is out of range.
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut cur = self.coord_of(src);
        let target = self.coord_of(dst);
        let mut path = vec![self.rank_of(cur)];
        while cur.x != target.x {
            let s = Self::step_towards(self.x, cur.x, target.x);
            cur.x = (cur.x as isize + s).rem_euclid(self.x as isize) as usize;
            path.push(self.rank_of(cur));
        }
        while cur.y != target.y {
            let s = Self::step_towards(self.y, cur.y, target.y);
            cur.y = (cur.y as isize + s).rem_euclid(self.y as isize) as usize;
            path.push(self.rank_of(cur));
        }
        while cur.z != target.z {
            let s = Self::step_towards(self.z, cur.z, target.z);
            cur.z = (cur.z as isize + s).rem_euclid(self.z as isize) as usize;
            path.push(self.rank_of(cur));
        }
        path
    }
}

/// Calibration constants for the torus model.
///
/// Defaults are calibrated so the three §3.1 observations reproduce:
/// p2p bandwidth peaks at a 1000-byte buffer; merge wants much larger
/// buffers; the balanced node selection beats the sequential one by up to
/// ~60 % (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct TorusParams {
    /// Per-link bandwidth; the paper quotes a 1.4 Gbps torus.
    pub link: Bandwidth,
    /// Injection copy rate of the communication co-processor (user buffer
    /// → torus FIFO), before the cache derating.
    pub inject: Bandwidth,
    /// Store-and-forward rate at intermediate co-processors.
    pub forward: Bandwidth,
    /// Drain rate of the receiving co-processor.
    pub receive: Bandwidth,
    /// Fixed software overhead per MPI message.
    pub per_msg_overhead: SimDur,
    /// Penalty paid by a co-processor when consecutive messages belong to
    /// different flows (§3.1: "it switches between receiving messages
    /// from a and b. Less frequent switching improves communication").
    pub switch_cost: SimDur,
    /// Smallest torus message; smaller sends are padded (§3.1: "1K is the
    /// smallest message size that can be exchanged").
    pub min_packet: u64,
    /// Buffer size at which the injection copy starts missing cache.
    pub cache_knee: u64,
    /// Exponential scale of the cache degradation.
    pub cache_scale: f64,
    /// Asymptotic extra per-byte injection cost factor (0.9 ⇒ up to +90 %).
    pub cache_max: f64,
}

impl Default for TorusParams {
    fn default() -> Self {
        TorusParams {
            link: Bandwidth::from_gbps(1.4),
            inject: Bandwidth::from_mbytes_per_sec(190.0),
            forward: Bandwidth::from_gbps(1.4),
            receive: Bandwidth::from_mbytes_per_sec(560.0),
            per_msg_overhead: SimDur::from_nanos(500),
            switch_cost: SimDur::from_micros(25),
            min_packet: 1024,
            cache_knee: 1024,
            cache_scale: 8_192.0,
            cache_max: 0.9,
        }
    }
}

impl TorusParams {
    /// The cache-miss derating factor for a message of `bytes`: 1.0 at or
    /// below the knee, rising asymptotically to `1 + cache_max`.
    pub fn cache_factor(&self, bytes: u64) -> f64 {
        if bytes <= self.cache_knee {
            1.0
        } else {
            1.0 + self.cache_max
                * (1.0 - (-((bytes - self.cache_knee) as f64) / self.cache_scale).exp())
        }
    }

    /// Message size after torus minimum-packet padding.
    pub fn padded(&self, bytes: u64) -> u64 {
        bytes.max(self.min_packet)
    }
}

/// Timeline of a single message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransmitOutcome {
    /// When the source co-processor finished injecting (the sender's
    /// buffer becomes reusable: local MPI send completion).
    pub inject_done: SimTime,
    /// When the message was fully received and drained at the destination.
    pub delivered: SimTime,
}

/// A live torus partition: geometry plus the contended resources.
#[derive(Debug)]
pub struct TorusNet {
    dims: TorusDims,
    params: TorusParams,
    coprocs: Vec<SwitchingServer>,
    /// Directed links in [`RouteTable`] id order — a dense array instead
    /// of a hash map, so the per-hop contention accounting is one index
    /// away from the precomputed route step.
    links: Vec<FifoServer>,
    routes: RouteTable,
    messages: u64,
    bytes: u64,
    /// Memoized per-stage service times for the last message size seen:
    /// `(bytes, inject, link, forward, receive)`. Stream channels send
    /// runs of equal-sized buffers, so this one-entry memo turns four
    /// divisions per message into a compare. Pure derived data — never
    /// probed, never part of observable state.
    svc_memo: Option<(u64, SimDur, SimDur, SimDur, SimDur)>,
}

impl TorusNet {
    /// Creates an idle torus of the given dimensions.
    pub fn new(dims: TorusDims, params: TorusParams) -> Self {
        let coprocs = (0..dims.node_count())
            .map(|_| SwitchingServer::new(params.switch_cost))
            .collect();
        let routes = RouteTable::build(dims);
        let links = vec![FifoServer::new(); routes.link_count];
        TorusNet {
            dims,
            params,
            coprocs,
            links,
            routes,
            messages: 0,
            bytes: 0,
            svc_memo: None,
        }
    }

    /// Per-stage service times (inject, link, forward, receive) for a
    /// message of `bytes`, via the one-entry size memo.
    fn services(&mut self, bytes: u64) -> (SimDur, SimDur, SimDur, SimDur) {
        if let Some((b, i, l, f, r)) = self.svc_memo {
            if b == bytes {
                return (i, l, f, r);
            }
        }
        let padded = self.params.padded(bytes);
        let cache = self.params.cache_factor(bytes);
        let inject = self.params.per_msg_overhead
            + SimDur::for_bytes(padded, self.params.inject.bytes_per_sec() / cache);
        let link = SimDur::for_bytes(padded, self.params.link.bytes_per_sec());
        let fwd = SimDur::for_bytes(padded, self.params.forward.bytes_per_sec());
        let recv = SimDur::for_bytes(padded, self.params.receive.bytes_per_sec());
        self.svc_memo = Some((bytes, inject, link, fwd, recv));
        (inject, link, fwd, recv)
    }

    /// The torus geometry.
    pub fn dims(&self) -> TorusDims {
        self.dims
    }

    /// The calibration constants.
    pub fn params(&self) -> &TorusParams {
        &self.params
    }

    /// Total messages transmitted.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes transmitted (before padding).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Transmits `bytes` from node `src` to node `dst` on behalf of
    /// `flow`, with the payload ready at the source at time `ready`.
    ///
    /// Returns the injection-completion and delivery times. All contended
    /// resources along the dimension-ordered route (source co-processor,
    /// links, intermediate co-processors, destination co-processor) are
    /// occupied accordingly, so concurrent flows interact exactly as the
    /// paper describes.
    ///
    /// # Panics
    ///
    /// Panics if a rank is out of range or `bytes` is zero.
    pub fn transmit(
        &mut self,
        flow: FlowId,
        src: usize,
        dst: usize,
        bytes: u64,
        ready: SimTime,
    ) -> TransmitOutcome {
        assert!(bytes > 0, "cannot transmit an empty message");
        assert!(src < self.dims.node_count(), "src rank {src} out of range");
        assert!(dst < self.dims.node_count(), "dst rank {dst} out of range");
        self.messages += 1;
        self.bytes += bytes;

        let (inject_service, link_service, fwd_service, recv_service) = self.services(bytes);

        if src == dst {
            // Same-node handoff: only the receive drain cost applies.
            let g = self.coprocs[src].serve_from(flow.0, ready, recv_service);
            return TransmitOutcome {
                inject_done: g.finish,
                delivered: g.finish,
            };
        }

        // 1. Injection at the source co-processor (driver copy; pays the
        //    per-message overhead and the cache derating).
        let inject = self.coprocs[src].serve_from(flow.0, ready, inject_service);
        let mut t = inject.finish;

        // 2. Hop along the precomputed dimension-ordered route: each link
        //    transfer is serialized on the link; each intermediate node's
        //    co-processor forwards the message (store-and-forward at
        //    buffer granularity).
        let n = self.dims.node_count();
        for step in self.routes.steps(n, src, dst) {
            let g = self.links[step.link as usize].serve(t, link_service);
            t = g.finish;
            let b = step.node as usize;
            if b != dst {
                let g = self.coprocs[b].serve_from(flow.0, t, fwd_service);
                t = g.finish;
            }
        }

        // 3. Drain at the destination co-processor; alternating flows pay
        //    the switch penalty here.
        let g = self.coprocs[dst].serve_from(flow.0, t, recv_service);

        TransmitOutcome {
            inject_done: inject.finish,
            delivered: g.finish,
        }
    }

    /// Total switching penalty charged at a node's co-processor.
    pub fn switch_penalty_at(&self, rank: usize) -> SimDur {
        self.coprocs[rank].penalty_total()
    }

    /// Busy time accumulated at a node's co-processor.
    pub fn coproc_busy(&self, rank: usize) -> SimDur {
        self.coprocs[rank].busy_total()
    }

    /// The cached route from `src` to `dst` as a rank sequence inclusive
    /// of both endpoints — the same shape [`TorusDims::route`] returns,
    /// reconstructed from the route table (the determinism tests compare
    /// the two for every pair).
    pub fn cached_route(&self, src: usize, dst: usize) -> Vec<usize> {
        let n = self.dims.node_count();
        let steps = self.routes.steps(n, src, dst);
        let mut path = Vec::with_capacity(steps.len() + 1);
        path.push(src);
        path.extend(steps.iter().map(|s| s.node as usize));
        path
    }

    /// Walks the torus's contended state through a coalescing probe.
    /// Links are visited in route-table id order (fixed at
    /// construction, so the walk is deterministic); untouched links
    /// contribute a single shape bit each.
    pub fn probe(&mut self, p: &mut scsq_sim::StateProbe<'_>, now: SimTime) {
        for c in &mut self.coprocs {
            c.probe(p, now);
        }
        for link in &mut self.links {
            link.probe(p);
        }
        p.num(&mut self.messages);
        p.num(&mut self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> TorusDims {
        TorusDims::new(4, 4, 2)
    }

    #[test]
    fn rank_coord_round_trip() {
        let d = dims();
        for rank in 0..d.node_count() {
            assert_eq!(d.rank_of(d.coord_of(rank)), rank);
        }
    }

    #[test]
    fn route_is_dimension_ordered_and_shortest() {
        let d = dims();
        // Node 2 = (2,0,0) to node 0: passes through node 1 — this is the
        // paper's Figure 7A "sequential" topology.
        assert_eq!(d.route(2, 0), vec![2, 1, 0]);
        // Node 4 = (0,1,0) to node 0: one Y hop — Figure 7B "balanced".
        assert_eq!(d.route(4, 0), vec![4, 0]);
        // Wraparound: (3,0,0) to (0,0,0) is one hop the short way.
        assert_eq!(d.route(3, 0), vec![3, 0]);
    }

    #[test]
    fn cached_routes_match_fresh_dimension_ordered_routes() {
        // Paper-scale pset layout (4×4×2) and the largest partition the
        // scaling sweep uses (8×8×2): the route table must reproduce
        // TorusDims::route exactly for every pair, wraparound included.
        for d in [dims(), TorusDims::new(8, 8, 2)] {
            let net = TorusNet::new(d, TorusParams::default());
            for src in 0..d.node_count() {
                for dst in 0..d.node_count() {
                    assert_eq!(
                        net.cached_route(src, dst),
                        d.route(src, dst),
                        "src={src} dst={dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_routes_take_wraparound_links() {
        // x=0 → x=3 on a 4-extent axis is one hop across the wrap link,
        // not three hops forward; the cache must agree with the fresh
        // route on taking it.
        let d = dims();
        let src = d.rank_of(TorusCoord { x: 0, y: 0, z: 0 });
        let dst = d.rank_of(TorusCoord { x: 3, y: 0, z: 0 });
        let net = TorusNet::new(d, TorusParams::default());
        let cached = net.cached_route(src, dst);
        assert_eq!(cached, d.route(src, dst));
        assert_eq!(cached.len(), 2, "wrap link makes this a single hop");
    }

    #[test]
    fn route_length_equals_torus_distance() {
        let d = dims();
        for src in 0..d.node_count() {
            for dst in 0..d.node_count() {
                assert_eq!(
                    d.route(src, dst).len() - 1,
                    d.distance(src, dst),
                    "src={src} dst={dst}"
                );
            }
        }
    }

    #[test]
    fn cache_factor_is_flat_below_knee_and_bounded() {
        let p = TorusParams::default();
        assert_eq!(p.cache_factor(100), 1.0);
        assert_eq!(p.cache_factor(1024), 1.0);
        let large = p.cache_factor(10_000_000);
        assert!(large > 1.8 && large <= 1.0 + p.cache_max + 1e-9);
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for b in [100u64, 1024, 2048, 8192, 65_536, 1_048_576] {
            let f = p.cache_factor(b);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn small_messages_are_padded_to_min_packet() {
        let mut net = TorusNet::new(dims(), TorusParams::default());
        let a = net.transmit(FlowId(1), 1, 0, 100, SimTime::ZERO);
        let mut net2 = TorusNet::new(dims(), TorusParams::default());
        let b = net2.transmit(FlowId(1), 1, 0, 1024, SimTime::ZERO);
        assert_eq!(
            a.delivered, b.delivered,
            "sub-1K messages should cost the same as 1K"
        );
    }

    #[test]
    fn adjacent_transfer_timeline_is_consistent() {
        let mut net = TorusNet::new(dims(), TorusParams::default());
        let out = net.transmit(FlowId(1), 1, 0, 1024, SimTime::ZERO);
        assert!(out.inject_done > SimTime::ZERO);
        assert!(out.delivered > out.inject_done);
        assert_eq!(net.messages(), 1);
        assert_eq!(net.bytes(), 1024);
    }

    #[test]
    fn non_adjacent_transfer_occupies_intermediate_coproc() {
        let mut net = TorusNet::new(dims(), TorusParams::default());
        net.transmit(FlowId(1), 2, 0, 100_000, SimTime::ZERO);
        assert!(net.coproc_busy(1) > SimDur::ZERO, "node 1 must forward");
        assert!(net.coproc_busy(3) == SimDur::ZERO, "node 3 is off-route");
    }

    #[test]
    fn single_flow_pays_no_switch_penalty() {
        let mut net = TorusNet::new(dims(), TorusParams::default());
        for _ in 0..5 {
            net.transmit(FlowId(1), 1, 0, 10_000, SimTime::ZERO);
        }
        assert_eq!(net.switch_penalty_at(0), SimDur::ZERO);
    }

    #[test]
    fn concurrent_flows_pay_switch_penalties_at_the_receiver() {
        let mut net = TorusNet::new(dims(), TorusParams::default());
        for i in 0..6u64 {
            let src = if i % 2 == 0 { 1 } else { 4 };
            net.transmit(FlowId(i % 2), src, 0, 10_000, SimTime::ZERO);
        }
        // Five of the six messages see two active flows: 5 × 12.5 us.
        let expected = TorusParams::default().switch_cost * (5.0 / 2.0);
        assert_eq!(net.switch_penalty_at(0), expected);
        // The intermediate co-processor of an off-route node is silent.
        assert_eq!(net.switch_penalty_at(3), SimDur::ZERO);
    }

    #[test]
    fn sequential_topology_is_slower_than_balanced() {
        // Miniature of the paper's Fig 8: two generators streaming into
        // node 0, with large buffers so the switch penalty is amortized.
        let buffers = 50;
        let size = 262_144; // 256 KB
        let run = |second_src: usize| {
            let mut net = TorusNet::new(dims(), TorusParams::default());
            let mut last = SimTime::ZERO;
            for _ in 0..buffers {
                let a = net.transmit(FlowId(1), 1, 0, size, SimTime::ZERO);
                let b = net.transmit(FlowId(2), second_src, 0, size, SimTime::ZERO);
                last = a.delivered.max(b.delivered);
            }
            let total_bytes = 2 * buffers * size;
            total_bytes as f64 / last.as_secs_f64()
        };
        let sequential = run(2); // routes through node 1 (busy sending)
        let balanced = run(4); // independent route
        let ratio = balanced / sequential;
        assert!(
            ratio > 1.3,
            "balanced should clearly beat sequential, got ratio {ratio:.2} \
             (sequential {:.1} MB/s, balanced {:.1} MB/s)",
            sequential / 1e6,
            balanced / 1e6
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn transmit_rejects_bad_rank() {
        let mut net = TorusNet::new(dims(), TorusParams::default());
        net.transmit(FlowId(0), 0, 999, 1024, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty message")]
    fn transmit_rejects_empty_message() {
        let mut net = TorusNet::new(dims(), TorusParams::default());
        net.transmit(FlowId(0), 0, 1, 0, SimTime::ZERO);
    }
}
