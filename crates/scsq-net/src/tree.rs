//! The BlueGene tree (collective) network connecting each pset's compute
//! nodes to their I/O node.
//!
//! §2.1: the BlueGene has "a 2.8 Gbps tree network", and compute nodes
//! are "grouped in processing sets of 8 compute nodes and one I/O node".
//! Inbound TCP streams enter through an I/O node and are forwarded over
//! the tree to the compute nodes of its pset; the per-pset tree channel is
//! a shared, serially-used resource.

use crate::{Bandwidth, FlowId};
use scsq_sim::{FifoServer, SimDur, SimTime};

/// Calibration constants for the tree network.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Bandwidth of one pset's tree channel; the paper quotes 2.8 Gbps.
    pub channel: Bandwidth,
    /// Fixed per-message overhead on the channel.
    pub per_msg_overhead: SimDur,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            channel: Bandwidth::from_gbps(2.8),
            per_msg_overhead: SimDur::from_micros(2),
        }
    }
}

/// The tree network of a BlueGene partition: one shared channel per pset.
#[derive(Debug)]
pub struct TreeNet {
    params: TreeParams,
    channels: Vec<FifoServer>,
}

impl TreeNet {
    /// Creates a tree network for `psets` processing sets.
    ///
    /// # Panics
    ///
    /// Panics if `psets` is zero.
    pub fn new(psets: usize, params: TreeParams) -> Self {
        assert!(psets > 0, "need at least one pset");
        TreeNet {
            params,
            channels: vec![FifoServer::new(); psets],
        }
    }

    /// Number of psets served.
    pub fn psets(&self) -> usize {
        self.channels.len()
    }

    /// The calibration constants.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// Moves `bytes` across pset `pset`'s tree channel (I/O node ↔ compute
    /// node, either direction), payload ready at `ready`. Returns the
    /// delivery time.
    ///
    /// # Panics
    ///
    /// Panics if `pset` is out of range or `bytes` is zero.
    pub fn transfer(&mut self, _flow: FlowId, pset: usize, bytes: u64, ready: SimTime) -> SimTime {
        assert!(bytes > 0, "cannot transfer an empty message");
        assert!(pset < self.channels.len(), "pset {pset} out of range");
        let service = self.params.per_msg_overhead
            + SimDur::for_bytes(bytes, self.params.channel.bytes_per_sec());
        self.channels[pset].serve(ready, service).finish
    }

    /// Busy time accumulated on a pset's channel.
    pub fn channel_busy(&self, pset: usize) -> SimDur {
        self.channels[pset].busy_total()
    }

    /// Walks the tree channels' state through a coalescing probe.
    pub fn probe(&mut self, p: &mut scsq_sim::StateProbe<'_>) {
        for c in &mut self.channels {
            c.probe(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_channel_rate() {
        let mut net = TreeNet::new(4, TreeParams::default());
        // 350_000 bytes at 350 MB/s = 1 ms (+2us overhead).
        let done = net.transfer(FlowId(0), 0, 350_000, SimTime::ZERO);
        assert_eq!(done, SimTime::from_micros(1_002));
    }

    #[test]
    fn same_pset_transfers_serialize() {
        let mut net = TreeNet::new(4, TreeParams::default());
        let a = net.transfer(FlowId(1), 2, 350_000, SimTime::ZERO);
        let b = net.transfer(FlowId(2), 2, 350_000, SimTime::ZERO);
        assert!(b > a);
        assert!(net.channel_busy(2) > net.channel_busy(0));
    }

    #[test]
    fn different_psets_run_in_parallel() {
        let mut net = TreeNet::new(4, TreeParams::default());
        let a = net.transfer(FlowId(1), 0, 350_000, SimTime::ZERO);
        let b = net.transfer(FlowId(2), 1, 350_000, SimTime::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_pset_rejected() {
        TreeNet::new(2, TreeParams::default()).transfer(FlowId(0), 5, 100, SimTime::ZERO);
    }
}
