//! Property-based tests for the FFT substrate.

use proptest::prelude::*;
use scsq_fft::{combine, even_samples, fft, ifft, odd_samples, Complex};

fn arb_signal(max_pow: u32) -> impl Strategy<Value = Vec<Complex>> {
    (1u32..=max_pow).prop_flat_map(|p| {
        let n = 1usize << p;
        proptest::collection::vec(
            (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im)),
            n..=n,
        )
    })
}

proptest! {
    /// ifft(fft(x)) == x for arbitrary power-of-two signals.
    #[test]
    fn fft_round_trips(x in arb_signal(10)) {
        let back = ifft(&fft(&x).expect("pow2")).expect("pow2");
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn parseval_holds(x in arb_signal(9)) {
        let spectrum = fft(&x).expect("pow2");
        let t: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let f: f64 = spectrum.iter().map(|c| c.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((t - f).abs() <= 1e-6 * (1.0 + t));
    }

    /// Linearity: fft(a·x + y) == a·fft(x) + fft(y).
    #[test]
    fn fft_is_linear(x in arb_signal(8), scale in -10.0f64..10.0) {
        let y: Vec<Complex> = x.iter().map(|c| Complex::new(c.im, -c.re)).collect();
        let lhs_input: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(a, b)| a.scale(scale) + *b)
            .collect();
        let lhs = fft(&lhs_input).expect("pow2");
        let fx = fft(&x).expect("pow2");
        let fy = fft(&y).expect("pow2");
        for ((l, a), b) in lhs.iter().zip(&fx).zip(&fy) {
            let rhs = a.scale(scale) + *b;
            prop_assert!((*l - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
        }
    }

    /// The distributed decomposition the paper's radix2 function uses:
    /// combine(fft(even), fft(odd)) == fft(whole), for any signal.
    #[test]
    fn radix_decomposition_is_exact(x in arb_signal(9)) {
        prop_assume!(x.len() >= 2);
        let direct = fft(&x).expect("pow2");
        let e = fft(&even_samples(&x)).expect("pow2");
        let o = fft(&odd_samples(&x)).expect("pow2");
        let combined = combine(&e, &o).expect("matched halves");
        for (a, b) in combined.iter().zip(&direct) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// odd/even decimation partitions the signal: interleaving them back
    /// reconstructs it.
    #[test]
    fn decimation_partitions(x in arb_signal(8)) {
        let e = even_samples(&x);
        let o = odd_samples(&x);
        prop_assert_eq!(e.len() + o.len(), x.len());
        for (i, v) in x.iter().enumerate() {
            let from = if i % 2 == 0 { e[i / 2] } else { o[i / 2] };
            prop_assert_eq!(from, *v);
        }
    }

    /// DC bin equals the signal sum.
    #[test]
    fn dc_bin_is_the_sum(x in arb_signal(8)) {
        let spectrum = fft(&x).expect("pow2");
        let sum = x.iter().fold(Complex::ZERO, |a, b| a + *b);
        prop_assert!((spectrum[0] - sum).abs() < 1e-6 * (1.0 + sum.abs()));
    }
}
