#![warn(missing_docs)]
//! # scsq-fft — radix-2 FFT and signal utilities
//!
//! §2.4 of the paper shows how SCSQL parallelizes FFT with the `radix2`
//! query function: a receiver SP splits each signal array into odd and
//! even samples, two SPs compute FFTs of the halves in parallel, and
//! `radixcombine()` merges the partial results (the classic radix-2
//! decimation-in-time step from Kumar et al., the paper's \[12\]).
//!
//! This crate supplies the *math* those operators execute: an iterative
//! radix-2 FFT, its inverse, the odd/even decimation, the combine step,
//! and deterministic signal generators for the examples and tests.

pub mod complex;
pub mod radix2;
pub mod signal;

pub use complex::Complex;
pub use radix2::{combine, even_samples, fft, fft_real, ifft, odd_samples, FftError};
pub use signal::{chirp, impulse, sine};
