//! Deterministic signal generators for examples and tests.
//!
//! LOFAR's receivers digitize antenna voltages into streams of signal
//! arrays; these generators produce stand-in signals with known spectra
//! so the `radix2` example can verify its output.

use std::f64::consts::PI;

/// A pure sine: `amp · sin(2π · cycles · i / n)` for `i` in `0..n`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn sine(n: usize, cycles: f64, amp: f64) -> Vec<f64> {
    assert!(n > 0, "signal length must be positive");
    (0..n)
        .map(|i| amp * (2.0 * PI * cycles * i as f64 / n as f64).sin())
        .collect()
}

/// A linear chirp sweeping from `f0` to `f1` cycles over the window.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn chirp(n: usize, f0: f64, f1: f64) -> Vec<f64> {
    assert!(n > 0, "signal length must be positive");
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let phase = 2.0 * PI * (f0 * t + 0.5 * (f1 - f0) * t * t);
            phase.sin()
        })
        .collect()
}

/// A unit impulse at `at`.
///
/// # Panics
///
/// Panics if `at >= n`.
pub fn impulse(n: usize, at: usize) -> Vec<f64> {
    assert!(at < n, "impulse position {at} outside signal of length {n}");
    let mut v = vec![0.0; n];
    v[at] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix2::fft_real;

    #[test]
    fn sine_peaks_at_its_frequency_bin() {
        let n = 256;
        let cycles = 12.0;
        let spectrum = fft_real(&sine(n, cycles, 1.0)).unwrap();
        let peak_bin = spectrum
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(peak_bin, 12);
        // Peak magnitude of a unit sine is n/2.
        assert!((spectrum[peak_bin].abs() - n as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn impulse_is_a_single_one() {
        let v = impulse(8, 3);
        assert_eq!(v.iter().sum::<f64>(), 1.0);
        assert_eq!(v[3], 1.0);
    }

    #[test]
    fn chirp_has_unit_amplitude() {
        for x in chirp(128, 1.0, 20.0) {
            assert!(x.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "outside signal")]
    fn impulse_position_is_validated() {
        impulse(4, 4);
    }
}
