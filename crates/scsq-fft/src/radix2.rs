//! Iterative radix-2 FFT, the odd/even decimation, and the combine step.
//!
//! The decomposition here is exactly the one the paper's `radix2` SCSQL
//! function distributes over stream processes:
//!
//! ```text
//! X = fft(x)  ==  combine( fft(even_samples(x)), fft(odd_samples(x)) )
//! ```
//!
//! so the test suite can verify that the *distributed* plan computes the
//! same spectrum as the direct transform.

use crate::complex::Complex;
use std::f64::consts::PI;
use std::fmt;

/// Errors from transform functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// Input length was not a power of two.
    NotPowerOfTwo(usize),
    /// The two halves passed to [`combine`] differ in length.
    MismatchedHalves(usize, usize),
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo(n) => {
                write!(f, "input length {n} is not a power of two")
            }
            FftError::MismatchedHalves(a, b) => {
                write!(f, "combine halves differ in length: {a} vs {b}")
            }
        }
    }
}

impl std::error::Error for FftError {}

fn check_pow2(n: usize) -> Result<(), FftError> {
    if n == 0 || !n.is_power_of_two() {
        Err(FftError::NotPowerOfTwo(n))
    } else {
        Ok(())
    }
}

/// In-place iterative Cooley–Tukey with bit-reversal permutation.
/// `sign` is -1 for the forward transform, +1 for the inverse.
fn transform(data: &mut [Complex], sign: f64) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT of a complex signal.
///
/// # Errors
///
/// [`FftError::NotPowerOfTwo`] unless the length is a power of two.
///
/// ```
/// use scsq_fft::{fft, Complex};
/// let spectrum = fft(&[Complex::ONE; 4])?;
/// assert!((spectrum[0].re - 4.0).abs() < 1e-12); // DC bin
/// # Ok::<(), scsq_fft::FftError>(())
/// ```
pub fn fft(input: &[Complex]) -> Result<Vec<Complex>, FftError> {
    check_pow2(input.len())?;
    let mut data = input.to_vec();
    transform(&mut data, -1.0);
    Ok(data)
}

/// Forward FFT of a real signal.
///
/// # Errors
///
/// [`FftError::NotPowerOfTwo`] unless the length is a power of two.
pub fn fft_real(input: &[f64]) -> Result<Vec<Complex>, FftError> {
    let complex: Vec<Complex> = input.iter().map(|&x| Complex::from_real(x)).collect();
    fft(&complex)
}

/// Inverse FFT (normalized by 1/N).
///
/// # Errors
///
/// [`FftError::NotPowerOfTwo`] unless the length is a power of two.
pub fn ifft(input: &[Complex]) -> Result<Vec<Complex>, FftError> {
    check_pow2(input.len())?;
    let mut data = input.to_vec();
    transform(&mut data, 1.0);
    let scale = 1.0 / data.len() as f64;
    for x in &mut data {
        *x = x.scale(scale);
    }
    Ok(data)
}

/// Even-indexed samples of an array — the paper's `even(x)`.
pub fn even_samples<T: Copy>(x: &[T]) -> Vec<T> {
    x.iter().copied().step_by(2).collect()
}

/// Odd-indexed samples of an array — the paper's `odd(x)`.
pub fn odd_samples<T: Copy>(x: &[T]) -> Vec<T> {
    x.iter().copied().skip(1).step_by(2).collect()
}

/// The radix-2 decimation-in-time combine — the paper's
/// `radixcombine()`: given the FFT of the even samples and the FFT of the
/// odd samples, produce the FFT of the full signal.
///
/// # Errors
///
/// [`FftError::MismatchedHalves`] if the halves differ in length, or
/// [`FftError::NotPowerOfTwo`] if their length is not a power of two.
pub fn combine(even_fft: &[Complex], odd_fft: &[Complex]) -> Result<Vec<Complex>, FftError> {
    if even_fft.len() != odd_fft.len() {
        return Err(FftError::MismatchedHalves(even_fft.len(), odd_fft.len()));
    }
    let half = even_fft.len();
    check_pow2(half.max(1))?;
    let n = half * 2;
    let mut out = vec![Complex::ZERO; n];
    for k in 0..half {
        let twiddle = Complex::cis(-2.0 * PI * k as f64 / n as f64);
        let t = twiddle * odd_fft[k];
        out[k] = even_fft[k] + t;
        out[k + half] = even_fft[k] - t;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "bin {i}: {x} vs {y} (|Δ|={})",
                (*x - *y).abs()
            );
        }
    }

    /// O(n²) reference DFT.
    fn dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (j, &x) in input.iter().enumerate() {
                    acc += x * Complex::cis(-2.0 * PI * (k * j) as f64 / n as f64);
                }
                acc
            })
            .collect()
    }

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos() * 0.5))
            .collect()
    }

    #[test]
    fn fft_matches_reference_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = test_signal(n);
            assert_close(&fft(&x).unwrap(), &dft(&x), 1e-9);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x = test_signal(128);
        let back = ifft(&fft(&x).unwrap()).unwrap();
        assert_close(&back, &x, 1e-10);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let x = test_signal(256);
        let spectrum = fft(&x).unwrap();
        let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = spectrum.iter().map(|c| c.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn odd_even_split_partitions_the_signal() {
        let x: Vec<i32> = (0..10).collect();
        assert_eq!(even_samples(&x), vec![0, 2, 4, 6, 8]);
        assert_eq!(odd_samples(&x), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn radix2_distributed_plan_equals_direct_fft() {
        // This is the correctness claim behind the paper's radix2 query
        // function: fft(odd)/fft(even) in parallel + radixcombine equals
        // fft of the whole signal.
        for n in [2usize, 8, 64, 512] {
            let x = test_signal(n);
            let direct = fft(&x).unwrap();
            let e = fft(&even_samples(&x)).unwrap();
            let o = fft(&odd_samples(&x)).unwrap();
            let combined = combine(&e, &o).unwrap();
            assert_close(&combined, &direct, 1e-9);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let s = fft(&x).unwrap();
        for bin in s {
            assert!((bin - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn non_power_of_two_is_rejected() {
        let x = test_signal(12);
        assert_eq!(fft(&x).unwrap_err(), FftError::NotPowerOfTwo(12));
        assert_eq!(ifft(&x).unwrap_err(), FftError::NotPowerOfTwo(12));
        assert!(fft(&[]).is_err());
    }

    #[test]
    fn combine_rejects_mismatched_halves() {
        let a = vec![Complex::ONE; 4];
        let b = vec![Complex::ONE; 8];
        assert_eq!(
            combine(&a, &b).unwrap_err(),
            FftError::MismatchedHalves(4, 8)
        );
    }

    #[test]
    fn fft_real_matches_complex_path() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let via_real = fft_real(&x).unwrap();
        let via_complex =
            fft(&x.iter().map(|&v| Complex::from_real(v)).collect::<Vec<_>>()).unwrap();
        assert_close(&via_real, &via_complex, 1e-12);
    }
}
