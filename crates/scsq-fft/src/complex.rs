//! A minimal complex number type for the FFT pipeline.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` parts.
///
/// ```
/// use scsq_fft::Complex;
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A pure-real complex number.
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit phasor used for twiddle factors.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl From<(f64, f64)> for Complex {
    fn from((re, im): (f64, f64)) -> Self {
        Complex::new(re, im)
    }
}

impl From<Complex> for (f64, f64) {
    fn from(c: Complex) -> Self {
        (c.re, c.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, -2.0);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        assert_eq!(-a, Complex::new(-3.0, 2.0));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
        assert_eq!(a * b, Complex::new(-5.0, 10.0));
    }

    #[test]
    fn cis_is_on_the_unit_circle() {
        for k in 0..16 {
            let c = Complex::cis(k as f64 * 0.5);
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
        let c = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!((c.re).abs() < 1e-12);
        assert!((c.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.scale(2.0), Complex::new(6.0, 8.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
        assert_eq!(Complex::from((1.0, -1.0)), Complex::new(1.0, -1.0));
        let t: (f64, f64) = Complex::new(5.0, 6.0).into();
        assert_eq!(t, (5.0, 6.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
