#![warn(missing_docs)]
//! # scsq-transport — stream carrier protocols
//!
//! §2.3 of the paper: "Incoming data is buffered in a receiver driver and
//! de-marshaled (materialized) into objects. ... The objects resulting
//! from the operators are passed on to the sender driver, which marshals
//! them and sends the buffer contents to subscribers. ... We have
//! implemented stream carrier protocols based on MPI and TCP. ... MPI is
//! always used inside the BlueGene as that is the only allowed protocol,
//! while TCP is always used when communicating between clusters. The MPI
//! sender and receiver drivers contain double buffers so that one buffer
//! can be processed while the other one is read or written."
//!
//! [`StreamChannel`] implements exactly that driver pair as a
//! deterministic state machine over the simulated hardware
//! ([`scsq_cluster::Environment`]): elements are packed into send buffers
//! of a configurable size, marshaled on the sending node's CPU,
//! transmitted over the MPI (torus) or TCP (Ethernet + I/O node + tree)
//! path, and de-marshaled on the receiving node's CPU. Single vs double
//! buffering changes how soon the next buffer may be marshaled — the knob
//! the paper sweeps in Figures 6 and 8.
//!
//! The channel is generic over the element type `T`; it never inspects
//! elements, only the byte sizes the caller declares — which is how the
//! 3 MB benchmark arrays flow through without 3 MB of host memory each.

pub mod channel;

pub use channel::{
    Carrier, ChannelConfig, ChannelStats, CycleOutput, StreamChannel, MPI_DEFAULT_BUFFER,
};
