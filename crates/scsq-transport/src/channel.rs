//! The buffered stream channel: sender driver + carrier + receiver driver.
//!
//! A [`StreamChannel`] connects one producer RP to one subscriber RP. It
//! is a *pull-free* state machine: the engine enqueues elements as they
//! are produced and repeatedly calls [`StreamChannel::cycle`], which
//! processes **one send buffer per call** and reports when the next call
//! should happen. One event per buffer keeps concurrent flows interleaved
//! at buffer granularity, which is what lets the receiving co-processor's
//! switch penalty emerge the way §3.1 describes.

use scsq_cluster::{CarrierClass, Environment, NodeId};
use scsq_net::FlowId;
use scsq_sim::{SimDur, SimTime, StateProbe};
use std::collections::VecDeque;

/// Default MPI stream buffer size: the paper finds 1000 bytes optimal for
/// point-to-point intra-BlueGene streams (Fig 6).
pub const MPI_DEFAULT_BUFFER: u64 = 1000;

/// How a channel carries its buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Carrier {
    /// MPI over the BlueGene torus, with an explicit stream buffer size
    /// and single or double buffering (§2.3).
    Mpi {
        /// Send buffer size in bytes (the Fig 6 / Fig 8 sweep variable).
        buffer: u64,
        /// Double buffering: marshal the next buffer while the previous
        /// one is injected.
        double: bool,
    },
    /// TCP between clusters: segment size comes from the hardware spec
    /// ("we rely on the buffering of the TCP stack", §3.2); the stack
    /// keeps several segments in flight.
    Tcp,
    /// UDP between clusters (§2.1: the I/O nodes "provide TCP or UDP"):
    /// jumbo datagrams, no flow control — overloaded I/O nodes drop
    /// datagrams, and elements touched by a drop are lost.
    Udp,
}

impl Carrier {
    /// How many buffers may be in flight before marshaling the next one
    /// must wait.
    fn window(self) -> usize {
        match self {
            Carrier::Mpi { double: false, .. } => 1,
            Carrier::Mpi { double: true, .. } => 2,
            Carrier::Tcp => 8,
            // No acknowledgements: only the socket buffer paces the
            // sender.
            Carrier::Udp => 64,
        }
    }
}

/// Static configuration of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConfig {
    /// End-to-end flow identity (used for switch penalties and inbound
    /// registration).
    pub flow: FlowId,
    /// The producing RP's node.
    pub src: NodeId,
    /// The subscribing RP's node.
    pub dst: NodeId,
    /// The carrier protocol.
    pub carrier: Carrier,
}

/// Transfer statistics of one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelStats {
    /// Payload bytes enqueued by the producer.
    pub bytes_enqueued: u64,
    /// Payload bytes delivered to the subscriber.
    pub bytes_delivered: u64,
    /// Send buffers transmitted.
    pub buffers_sent: u64,
    /// Buffers (UDP datagrams) dropped in flight.
    pub buffers_dropped: u64,
    /// Elements lost because a datagram carrying their bytes was
    /// dropped.
    pub elements_lost: u64,
    /// When the first buffer began marshaling (None until then).
    pub first_send: Option<SimTime>,
    /// When the most recent buffer finished de-marshaling.
    pub last_delivery: SimTime,
    /// High-water mark of the send queue, in trains (a run of identical
    /// elements counts once — see the train coalescing notes on
    /// [`StreamChannel::enqueue`]). Gauges how far the producer ran
    /// ahead of the carrier.
    pub queue_peak_trains: u64,
}

impl ChannelStats {
    /// Mean delivered bandwidth in bytes/second measured from `start` to
    /// the last delivery. Returns 0.0 if nothing was delivered.
    pub fn bandwidth_from(&self, start: SimTime) -> f64 {
        if self.bytes_delivered == 0 || self.last_delivery <= start {
            return 0.0;
        }
        self.bytes_delivered as f64 / self.last_delivery.since(start).as_secs_f64()
    }
}

/// A run-length-encoded train of queued elements: `copies` identical
/// elements of `bytes_each` marshaled bytes, ready at the arithmetic
/// progression `head_ready, head_ready + step, ...`.
///
/// The figure workloads enqueue long runs of identical elements; storing
/// them as one train keeps the send queue O(1) instead of O(n) and makes
/// its growth visible to the coalescer as a plain counter. A train of one
/// is exactly the old per-element representation.
///
/// Trains (and their sibling, [`Pack`]) are a transport-side encoding
/// only: delivery hands the receiver a materialized batch per buffer.
/// The payload type is opaque here — a relayed column row travels as
/// just another element whose bytes and ready time drive packing; any
/// columnar reassembly of a delivered batch happens inside the
/// engine's `deliver` step, after transport.
#[derive(Debug)]
struct Train<T> {
    /// The element every copy materializes as. `None` only transiently
    /// while the last copy is being handed out.
    item: Option<T>,
    /// Copies remaining, including the (possibly partially packed) head.
    copies: u64,
    /// Marshaled size of each copy.
    bytes_each: u64,
    /// Unpacked bytes of the head copy.
    head_bytes_left: u64,
    /// Ready time of the head copy.
    head_ready: SimTime,
    /// Ready-time spacing between consecutive copies.
    step: SimDur,
    /// Some of the head copy's bytes rode a dropped datagram; it cannot
    /// be materialized at the receiver. Later copies are unaffected.
    head_corrupted: bool,
}

impl<T> Train<T> {
    /// Ready time of the last copy.
    fn tail_ready(&self) -> SimTime {
        self.head_ready + SimDur::from_nanos(self.step.as_nanos() * (self.copies - 1))
    }
}

/// A pack of *distinct* elements sharing one marshaled size, enqueued
/// in a single call ([`StreamChannel::enqueue_pack`]) with an explicit
/// nondecreasing ready time per element — the complement of [`Train`],
/// which compresses *identical* elements on an arithmetic ready
/// progression. A relayed column batch is the motivating producer:
/// thousands of same-sized, pairwise-distinct rows become ready at
/// jittered (so non-arithmetic) times within one event, and storing
/// them as one queue node instead of one train each keeps the send
/// queue short. Packing and delivery treat each element exactly as if
/// it had been enqueued individually.
#[derive(Debug)]
struct Pack<T> {
    /// The elements, consumed front to back from `next`.
    items: Vec<T>,
    /// Per-element ready times; same length as `items`, nondecreasing.
    readies: Vec<SimTime>,
    /// Index of the head element.
    next: usize,
    /// Marshaled size of each element.
    bytes_each: u64,
    /// Unpacked bytes of the head element.
    head_bytes_left: u64,
    /// Some of the head element's bytes rode a dropped datagram.
    head_corrupted: bool,
}

impl<T> Pack<T> {
    /// Elements not yet fully packed, including the head.
    fn remaining(&self) -> usize {
        self.items.len() - self.next
    }

    /// Bytes not yet packed into buffers.
    fn bytes_left(&self) -> u64 {
        self.head_bytes_left + (self.remaining() as u64 - 1) * self.bytes_each
    }
}

/// One send-queue node: a run-length-encoded train or an explicit pack.
#[derive(Debug)]
enum Node<T> {
    Train(Train<T>),
    Pack(Pack<T>),
}

/// What one [`StreamChannel::cycle`] call produced.
#[derive(Debug)]
pub struct CycleOutput<T> {
    /// Elements whose final byte was de-marshaled in this buffer. All of
    /// them ride the same receive buffer, so they become visible to the
    /// subscriber's operators at one shared instant, `delivered_at`.
    pub delivered: Vec<T>,
    /// When the elements in `delivered` become visible; `None` when the
    /// cycle delivered nothing.
    pub delivered_at: Option<SimTime>,
    /// When `cycle` should be called again; `None` when the channel is
    /// idle (call again after the next `enqueue`/`finish`).
    pub next_cycle: Option<SimTime>,
    /// Set exactly once, when the end-of-stream marker has been
    /// delivered: the time the subscriber learns the stream is finite
    /// (§2.2 control messages).
    pub eos_at: Option<SimTime>,
}

impl<T> Default for CycleOutput<T> {
    fn default() -> Self {
        CycleOutput {
            delivered: Vec::new(),
            delivered_at: None,
            next_cycle: None,
            eos_at: None,
        }
    }
}

/// A producer → subscriber stream link (§2.3's sender driver, carrier,
/// and receiver driver in one state machine).
#[derive(Debug)]
pub struct StreamChannel<T> {
    cfg: ChannelConfig,
    queue: VecDeque<Node<T>>,
    /// Bytes already packed into the currently-filling buffer.
    fill: u64,
    /// Latest ready-time of the bytes in the filling buffer.
    fill_ready: SimTime,
    /// Elements completing inside the currently-filling buffer, with
    /// their corruption flag (UDP losses poison spanning elements).
    fill_items: Vec<(T, bool)>,
    /// Bytes accepted but not yet handed to the carrier: the filling
    /// buffer plus everything still queued. Answers
    /// [`Self::pending_buffers`] in O(1) so the engine can skip
    /// scheduling cycles that could not transmit anything.
    pending_bytes: u64,
    /// Send-completion times of recent buffers, at most `window` entries.
    inflight: VecDeque<SimTime>,
    /// An empty delivery vector donated back by the consumer
    /// ([`Self::recycle`]); the next transmitting cycle reuses its
    /// capacity instead of growing a fresh allocation per buffer.
    spare: Vec<T>,
    eos_queued: bool,
    eos_reported: bool,
    stats: ChannelStats,
    registered_inbound: bool,
}

impl<T: Clone + PartialEq> StreamChannel<T> {
    /// Creates an idle channel. If the channel crosses from a Linux
    /// cluster into the BlueGene it registers itself as an inbound flow so
    /// the I/O-node coordination penalties account for it.
    pub fn new(cfg: ChannelConfig, env: &mut Environment) -> Self {
        let mut registered_inbound = false;
        if cfg.dst.cluster == scsq_cluster::ClusterName::BlueGene
            && cfg.src.cluster != scsq_cluster::ClusterName::BlueGene
        {
            let host = env
                .ether_host_of(cfg.src)
                .expect("linux sender has an ether host");
            let pset = env.pset_of(cfg.dst);
            env.register_inbound(cfg.flow, host, pset);
            registered_inbound = true;
        }
        StreamChannel {
            cfg,
            queue: VecDeque::new(),
            fill: 0,
            fill_ready: SimTime::ZERO,
            fill_items: Vec::new(),
            pending_bytes: 0,
            inflight: VecDeque::new(),
            spare: Vec::new(),
            eos_queued: false,
            eos_reported: false,
            stats: ChannelStats::default(),
            registered_inbound,
        }
    }

    /// The channel's configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Whether end-of-stream has been fully delivered.
    pub fn is_finished(&self) -> bool {
        self.eos_reported
    }

    /// Enqueues an element of `bytes` marshaled size, produced at
    /// `ready`. Returns the time at which `cycle` should next run (the
    /// engine schedules an event there).
    ///
    /// A run of identical elements whose ready times form an arithmetic
    /// progression coalesces into the tail `Train` instead of growing
    /// the queue; packing and delivery are byte-for-byte identical either
    /// way.
    ///
    /// # Panics
    ///
    /// Panics if called after [`StreamChannel::finish`] or with zero
    /// bytes.
    pub fn enqueue(&mut self, item: T, bytes: u64, ready: SimTime) -> SimTime {
        assert!(
            !self.eos_queued,
            "enqueue after finish on flow {:?}",
            self.cfg.flow
        );
        assert!(bytes > 0, "elements must have positive marshaled size");
        self.stats.bytes_enqueued += bytes;
        self.pending_bytes += bytes;
        if let Some(Node::Train(tail)) = self.queue.back_mut() {
            if tail.bytes_each == bytes && tail.item.as_ref() == Some(&item) {
                if tail.copies == 1 && ready >= tail.head_ready {
                    // Second copy fixes the train's spacing.
                    tail.step = ready.since(tail.head_ready);
                    tail.copies = 2;
                    return ready;
                }
                if tail.copies > 1 && ready == tail.tail_ready() + tail.step {
                    tail.copies += 1;
                    return ready;
                }
            }
        }
        // A fast producer can back the queue up by millions of trains
        // (jittered ready times defeat coalescing entirely). VecDeque's
        // doubling growth then re-copies the whole backlog at every
        // step; quadrupling past the first page keeps the amortized
        // copy volume a third of that while wasting at most 3x the
        // peak footprint — simulation state is unaffected either way.
        if self.queue.len() == self.queue.capacity() && self.queue.len() >= 4096 {
            self.queue.reserve(3 * self.queue.len());
        }
        self.queue.push_back(Node::Train(Train {
            item: Some(item),
            copies: 1,
            bytes_each: bytes,
            head_bytes_left: bytes,
            head_ready: ready,
            step: SimDur::ZERO,
            head_corrupted: false,
        }));
        let depth = self.queue.len() as u64;
        if depth > self.stats.queue_peak_trains {
            self.stats.queue_peak_trains = depth;
        }
        ready
    }

    /// Enqueues `items.len()` distinct elements of `bytes_each`
    /// marshaled bytes as one queue node, element `i` ready at
    /// `readies[i]`. Byte-for-byte and instant-for-instant equivalent
    /// to calling [`StreamChannel::enqueue`] once per element in order —
    /// packing, buffer boundaries, delivery grouping and corruption all
    /// treat pack elements individually — but the send queue grows by
    /// one node instead of `items.len()` trains (distinct elements
    /// never coalesce).
    ///
    /// # Panics
    ///
    /// Panics if called after [`StreamChannel::finish`], with zero
    /// `bytes_each`, with empty `items`, or with mismatched lengths.
    /// Ready times must be nondecreasing (debug-asserted): the producer
    /// generates them with one FIFO compute server, whose finish times
    /// are monotone.
    pub fn enqueue_pack(&mut self, items: Vec<T>, bytes_each: u64, readies: Vec<SimTime>) {
        assert!(
            !self.eos_queued,
            "enqueue after finish on flow {:?}",
            self.cfg.flow
        );
        assert!(bytes_each > 0, "elements must have positive marshaled size");
        assert!(!items.is_empty(), "a pack must hold at least one element");
        assert_eq!(items.len(), readies.len(), "one ready time per element");
        debug_assert!(
            readies.windows(2).all(|w| w[0] <= w[1]),
            "pack ready times must be nondecreasing"
        );
        let bytes = bytes_each * items.len() as u64;
        self.stats.bytes_enqueued += bytes;
        self.pending_bytes += bytes;
        self.queue.push_back(Node::Pack(Pack {
            items,
            readies,
            next: 0,
            bytes_each,
            head_bytes_left: bytes_each,
            head_corrupted: false,
        }));
        let depth = self.queue.len() as u64;
        if depth > self.stats.queue_peak_trains {
            self.stats.queue_peak_trains = depth;
        }
    }

    /// Bytes accepted but not yet handed to the carrier. Together with
    /// [`Self::buffer_bytes`] this lets a producer compute which
    /// elements of a prospective pack will complete send buffers.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// The send-buffer size currently in effect.
    pub fn buffer_bytes(&self, env: &Environment) -> u64 {
        self.buffer_size(env)
    }

    /// Marks the stream finite: remaining data (and a final partial
    /// buffer, if any) will be flushed, then an end-of-stream control
    /// message is delivered. Returns the time at which `cycle` should
    /// next run.
    pub fn finish(&mut self, now: SimTime) -> SimTime {
        self.eos_queued = true;
        now
    }

    /// How many complete buffers' worth of bytes are pending (filling
    /// buffer plus queue). A cycle run transmits at most one buffer, so
    /// this is the number of transmits a cycle chain could perform right
    /// now; the engine schedules a cycle only when an enqueue increases
    /// it (each increase is one future transmit, and transmit times are
    /// computed from the data's own ready times, never from when the
    /// cycle runs). Cycles scheduled while the count is flat would only
    /// move bytes from the queue into the filling buffer, which the
    /// next transmitting cycle does anyway. The end-of-stream flush is
    /// driven by [`Self::finish`] and the cycle's own `next_cycle`
    /// chain, not by this count.
    pub fn pending_buffers(&self, env: &Environment) -> u64 {
        self.pending_bytes / self.buffer_size(env)
    }

    /// The buffer size currently in effect.
    fn buffer_size(&self, env: &Environment) -> u64 {
        match self.cfg.carrier {
            Carrier::Mpi { buffer, .. } => buffer,
            Carrier::Tcp => env.spec().tcp_segment,
            Carrier::Udp => env.spec().udp_segment,
        }
    }

    /// Donates an empty vector (typically a processed delivery batch)
    /// whose capacity the next transmitting cycle reuses for its
    /// [`CycleOutput::delivered`] — one warm allocation per channel
    /// instead of a fresh buffer-sized growth per transmit.
    pub fn recycle(&mut self, mut spare: Vec<T>) {
        spare.clear();
        if spare.capacity() > self.spare.capacity() {
            self.spare = spare;
        }
    }

    /// Processes at most one send buffer. See [`CycleOutput`].
    pub fn cycle(&mut self, env: &mut Environment, now: SimTime) -> CycleOutput<T> {
        let mut out = CycleOutput {
            delivered: std::mem::take(&mut self.spare),
            ..CycleOutput::default()
        };
        let buffer_size = self.buffer_size(env);

        // Pack bytes from the queue into the filling buffer, recording
        // completed elements straight into the fill roster.
        while self.fill < buffer_size {
            let Some(node) = self.queue.front_mut() else {
                break;
            };
            let space = buffer_size - self.fill;
            match node {
                Node::Train(front) => {
                    let take = space.min(front.head_bytes_left);
                    front.head_bytes_left -= take;
                    self.fill += take;
                    self.fill_ready = self.fill_ready.max(front.head_ready);
                    if front.head_bytes_left == 0 {
                        let corrupted = std::mem::replace(&mut front.head_corrupted, false);
                        if front.copies == 1 {
                            let item = front.item.take().expect("item present until consumed");
                            self.fill_items.push((item, corrupted));
                            self.queue.pop_front();
                        } else {
                            let item = front.item.clone().expect("item present until consumed");
                            self.fill_items.push((item, corrupted));
                            front.copies -= 1;
                            front.head_bytes_left = front.bytes_each;
                            front.head_ready += front.step;
                        }
                    }
                }
                Node::Pack(front) => {
                    let take = space.min(front.head_bytes_left);
                    front.head_bytes_left -= take;
                    self.fill += take;
                    self.fill_ready = self.fill_ready.max(front.readies[front.next]);
                    if front.head_bytes_left == 0 {
                        let corrupted = std::mem::replace(&mut front.head_corrupted, false);
                        // Cheap clone by construction: pack producers
                        // relay shared column handles (two pointer-sized
                        // fields and a reference-count bump).
                        let item = front.items[front.next].clone();
                        self.fill_items.push((item, corrupted));
                        front.next += 1;
                        if front.next == front.items.len() {
                            self.queue.pop_front();
                        } else {
                            front.head_bytes_left = front.bytes_each;
                        }
                    }
                }
            }
        }

        let flushing = self.eos_queued && self.queue.is_empty();
        if self.fill == buffer_size || (flushing && self.fill > 0) {
            // Transmit one buffer.
            let bytes = self.fill;
            let window = self.cfg.carrier.window();
            let constraint = if self.inflight.len() >= window {
                self.inflight.pop_front().expect("window entry")
            } else {
                SimTime::ZERO
            };
            let start = self.fill_ready.max(constraint);
            let marshal_done = env.marshal(self.cfg.src, bytes, start);
            let (send_done, arrival) = self.transmit(env, bytes, marshal_done);
            self.inflight.push_back(send_done);
            self.stats.buffers_sent += 1;
            self.stats.first_send.get_or_insert(start);

            match arrival {
                Some(arrival) => {
                    let class = match self.cfg.carrier {
                        Carrier::Mpi { .. } => CarrierClass::Mpi,
                        Carrier::Tcp | Carrier::Udp => CarrierClass::Tcp,
                    };
                    let visible = env.demarshal(self.cfg.dst, self.cfg.flow, bytes, arrival, class);
                    self.stats.bytes_delivered += bytes;
                    self.stats.last_delivery = self.stats.last_delivery.max(visible);
                    for (item, corrupted) in self.fill_items.drain(..) {
                        if corrupted {
                            self.stats.elements_lost += 1;
                        } else {
                            out.delivered.push(item);
                        }
                    }
                    if !out.delivered.is_empty() {
                        out.delivered_at = Some(visible);
                    }
                }
                None => {
                    // The datagram was dropped: every element completing
                    // in it is lost, and a partially-packed element at
                    // the queue front is poisoned.
                    self.stats.buffers_dropped += 1;
                    self.stats.elements_lost += self.fill_items.len() as u64;
                    self.fill_items.clear();
                    if self.fill > 0 {
                        match self.queue.front_mut() {
                            Some(Node::Train(front))
                                if front.head_bytes_left > 0 && front.item.is_some() =>
                            {
                                front.head_corrupted = true;
                            }
                            Some(Node::Pack(front)) if front.head_bytes_left > 0 => {
                                front.head_corrupted = true;
                            }
                            _ => {}
                        }
                    }
                }
            }
            self.pending_bytes -= bytes;
            self.fill = 0;
            self.fill_ready = SimTime::ZERO;

            if let Some(data_ready) = self.next_buffer_ready(buffer_size) {
                // Another buffer is (or will become) ready: next cycle at
                // the earliest instant its marshal could start.
                let next_constraint = if self.inflight.len() >= window {
                    self.inflight[self.inflight.len() - window]
                } else {
                    SimTime::ZERO
                };
                out.next_cycle = Some(data_ready.max(next_constraint).max(now));
            } else if self.eos_queued && !self.eos_reported {
                self.eos_reported = true;
                out.eos_at = Some(self.stats.last_delivery.max(now));
                self.teardown(env);
            }
        } else if flushing && !self.eos_reported {
            // Nothing left to send: deliver EOS immediately.
            self.eos_reported = true;
            out.eos_at = Some(self.stats.last_delivery.max(now));
            self.teardown(env);
        }
        if out.delivered.is_empty() {
            // Nothing was delivered: keep the warm capacity for the
            // next transmitting cycle instead of handing back an empty
            // vector the consumer would drop.
            self.spare = std::mem::take(&mut out.delivered);
        }
        out
    }

    /// Whether a further buffer can be assembled (full buffer available,
    /// or EOS flush of a partial one), and if so, the ready time of the
    /// byte that completes it (or of the last queued byte when flushing
    /// a partial buffer). One walk answers both questions — this runs
    /// once per buffer cycle.
    fn next_buffer_ready(&self, buffer_size: u64) -> Option<SimTime> {
        let mut acc = self.fill;
        let mut ready = self.fill_ready;
        for node in &self.queue {
            match node {
                Node::Train(t) => {
                    ready = ready.max(t.head_ready);
                    acc += t.head_bytes_left;
                    if acc >= buffer_size {
                        return Some(ready);
                    }
                    if t.copies > 1 {
                        // Later copies are ready at head_ready + k*step;
                        // only as many as the buffer still needs
                        // contribute.
                        let k = (buffer_size - acc).div_ceil(t.bytes_each).min(t.copies - 1);
                        acc += k * t.bytes_each;
                        ready = ready.max(t.head_ready + SimDur::from_nanos(t.step.as_nanos() * k));
                        if acc >= buffer_size {
                            return Some(ready);
                        }
                    }
                }
                Node::Pack(p) => {
                    ready = ready.max(p.readies[p.next]);
                    acc += p.head_bytes_left;
                    if acc >= buffer_size {
                        return Some(ready);
                    }
                    let left = (p.remaining() - 1) as u64;
                    if left > 0 {
                        // Ready times are nondecreasing, so the k-th
                        // further element bounds the prefix max.
                        let k = (buffer_size - acc).div_ceil(p.bytes_each).min(left);
                        acc += k * p.bytes_each;
                        ready = ready.max(p.readies[p.next + k as usize]);
                        if acc >= buffer_size {
                            return Some(ready);
                        }
                    }
                }
            }
        }
        (self.eos_queued && acc > 0).then_some(ready)
    }

    fn transmit(
        &mut self,
        env: &mut Environment,
        bytes: u64,
        ready: SimTime,
    ) -> (SimTime, Option<SimTime>) {
        match self.cfg.carrier {
            Carrier::Mpi { .. } => {
                let o = env.mpi_transmit(self.cfg.flow, self.cfg.src, self.cfg.dst, bytes, ready);
                (o.inject_done, Some(o.delivered))
            }
            Carrier::Tcp => {
                let o = env.tcp_transmit(self.cfg.flow, self.cfg.src, self.cfg.dst, bytes, ready);
                (o.sent, Some(o.delivered))
            }
            Carrier::Udp => {
                env.udp_transmit(self.cfg.flow, self.cfg.src, self.cfg.dst, bytes, ready)
            }
        }
    }

    fn teardown(&mut self, env: &mut Environment) {
        if self.registered_inbound {
            env.unregister_inbound(self.cfg.flow);
            self.registered_inbound = false;
        }
    }

    /// Walks the channel's full state through a coalescing probe.
    ///
    /// Train copy counts, packed byte counts and all clocks are
    /// extrapolatable; element payloads (via `probe_item`), queue
    /// structure and protocol flags are shape. The buffer fill level is
    /// bounded by the buffer size so a jump can never carry it across a
    /// transmit boundary.
    pub fn probe(
        &mut self,
        env: &Environment,
        p: &mut StateProbe<'_>,
        mut probe_item: impl FnMut(&T, &mut StateProbe<'_>),
    ) {
        let buffer_size = self.buffer_size(env);
        p.shape(self.queue.len() as u64);
        for node in &mut self.queue {
            match node {
                Node::Train(t) => {
                    p.shape(0);
                    p.num(&mut t.copies);
                    p.shape(t.bytes_each);
                    p.num(&mut t.head_bytes_left);
                    p.time(&mut t.head_ready);
                    p.dur(&mut t.step);
                    p.shape(t.head_corrupted as u64);
                    p.shape(t.item.is_some() as u64);
                    if let Some(item) = &t.item {
                        probe_item(item, p);
                    }
                }
                Node::Pack(pk) => {
                    p.shape(1);
                    p.shape(pk.remaining() as u64);
                    p.shape(pk.bytes_each);
                    p.num(&mut pk.head_bytes_left);
                    p.shape(pk.head_corrupted as u64);
                    for i in pk.next..pk.items.len() {
                        p.time(&mut pk.readies[i]);
                        probe_item(&pk.items[i], p);
                    }
                }
            }
        }
        p.bounded(&mut self.fill, buffer_size);
        p.time(&mut self.fill_ready);
        p.shape(self.fill_items.len() as u64);
        for (item, corrupted) in &self.fill_items {
            p.shape(*corrupted as u64);
            probe_item(item, p);
        }
        p.shape(self.inflight.len() as u64);
        for t in &mut self.inflight {
            p.time(t);
        }
        p.shape(self.eos_queued as u64);
        p.shape(self.eos_reported as u64);
        p.shape(self.registered_inbound as u64);
        let s = &mut self.stats;
        p.num(&mut s.bytes_enqueued);
        p.num(&mut s.bytes_delivered);
        p.num(&mut s.buffers_sent);
        p.num(&mut s.buffers_dropped);
        p.num(&mut s.elements_lost);
        // A monotone max over the queue length, which is probed as shape
        // above: constant across a jumped period, so extrapolating its
        // (zero) delta is exact.
        p.num(&mut s.queue_peak_trains);
        p.shape(s.first_send.is_some() as u64);
        if let Some(t) = &mut s.first_send {
            p.time(t);
        }
        p.time(&mut s.last_delivery);
        // `pending_bytes` is derived state (filling buffer plus queue);
        // rebuild it from the possibly-extrapolated fields above rather
        // than probing it independently, so it can never drift from
        // what it summarizes.
        self.pending_bytes = self.fill
            + self
                .queue
                .iter()
                .map(|node| match node {
                    Node::Train(t) => t.head_bytes_left + (t.copies - 1) * t.bytes_each,
                    Node::Pack(pk) => pk.bytes_left(),
                })
                .sum::<u64>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scsq_cluster::NodeId;

    fn mpi_cfg(buffer: u64, double: bool) -> ChannelConfig {
        ChannelConfig {
            flow: FlowId(1),
            src: NodeId::bg(1),
            dst: NodeId::bg(0),
            carrier: Carrier::Mpi { buffer, double },
        }
    }

    fn tcp_cfg() -> ChannelConfig {
        ChannelConfig {
            flow: FlowId(1),
            src: NodeId::be(0),
            dst: NodeId::bg(0),
            carrier: Carrier::Tcp,
        }
    }

    /// Runs a channel to completion, returning (deliveries, eos time).
    fn drain<T: Clone + PartialEq>(
        ch: &mut StreamChannel<T>,
        env: &mut Environment,
    ) -> (Vec<(SimTime, T)>, SimTime) {
        let mut deliveries = Vec::new();
        let mut at = SimTime::ZERO;
        loop {
            let out = ch.cycle(env, at);
            if let Some(t) = out.delivered_at {
                deliveries.extend(out.delivered.into_iter().map(|v| (t, v)));
            }
            if let Some(eos) = out.eos_at {
                return (deliveries, eos);
            }
            match out.next_cycle {
                Some(t) => at = t.max(at),
                None => panic!("channel stalled without EOS"),
            }
        }
    }

    #[test]
    fn small_elements_batch_into_one_buffer() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(1000, false), &mut env);
        for i in 0..4 {
            ch.enqueue(i, 250, SimTime::ZERO);
        }
        ch.finish(SimTime::ZERO);
        let (deliveries, _) = drain(&mut ch, &mut env);
        assert_eq!(deliveries.len(), 4);
        // All four elements ride the same buffer: same delivery time.
        let t0 = deliveries[0].0;
        assert!(deliveries.iter().all(|(t, _)| *t == t0));
        assert_eq!(ch.stats().buffers_sent, 1);
    }

    #[test]
    fn large_element_spans_many_buffers() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(1000, true), &mut env);
        ch.enqueue("big", 10_000, SimTime::ZERO);
        ch.finish(SimTime::ZERO);
        let (deliveries, _) = drain(&mut ch, &mut env);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(ch.stats().buffers_sent, 10);
        assert_eq!(ch.stats().bytes_delivered, 10_000);
    }

    #[test]
    fn partial_buffer_is_flushed_at_eos() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(1000, false), &mut env);
        ch.enqueue((), 1500, SimTime::ZERO);
        ch.finish(SimTime::ZERO);
        let (deliveries, eos) = drain(&mut ch, &mut env);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(ch.stats().buffers_sent, 2, "1000 + 500 flush");
        assert!(eos >= deliveries[0].0);
        assert!(ch.is_finished());
    }

    #[test]
    fn empty_stream_still_delivers_eos() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::<u32>::new(mpi_cfg(1000, false), &mut env);
        ch.finish(SimTime::from_micros(7));
        let out = ch.cycle(&mut env, SimTime::from_micros(7));
        assert_eq!(out.eos_at, Some(SimTime::from_micros(7)));
        assert!(out.delivered.is_empty());
        assert_eq!(out.delivered_at, None);
    }

    #[test]
    fn double_buffering_is_faster_for_large_buffers() {
        let total_elems = 20;
        let elem = 300_000u64;
        let run = |double: bool| {
            let mut env = Environment::lofar();
            let mut ch = StreamChannel::new(mpi_cfg(100_000, double), &mut env);
            for i in 0..total_elems {
                ch.enqueue(i, elem, SimTime::ZERO);
            }
            ch.finish(SimTime::ZERO);
            let (_, eos) = drain(&mut ch, &mut env);
            eos
        };
        let single = run(false);
        let double = run(true);
        assert!(
            double < single,
            "double buffering must overlap marshal with injection: single={single} double={double}"
        );
    }

    #[test]
    fn single_and_double_converge_for_tiny_buffers() {
        let run = |double: bool| {
            let mut env = Environment::lofar();
            let mut ch = StreamChannel::new(mpi_cfg(100, double), &mut env);
            for i in 0..5 {
                ch.enqueue(i, 10_000, SimTime::ZERO);
            }
            ch.finish(SimTime::ZERO);
            drain(&mut ch, &mut env).1
        };
        let single = run(false).as_nanos() as f64;
        let double = run(true).as_nanos() as f64;
        let gain = single / double;
        assert!(
            gain < 1.25,
            "sub-1K buffers are dominated by the padded transmit; gain={gain:.3}"
        );
    }

    #[test]
    fn tcp_channel_registers_and_unregisters_inbound() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(tcp_cfg(), &mut env);
        assert_eq!(env.inbound_streams(0), 1);
        assert_eq!(env.inbound_hosts(), 1);
        ch.enqueue((), 100_000, SimTime::ZERO);
        ch.finish(SimTime::ZERO);
        drain(&mut ch, &mut env);
        assert_eq!(env.inbound_streams(0), 0);
        assert_eq!(env.inbound_hosts(), 0);
    }

    #[test]
    fn stats_track_bandwidth() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(100_000, true), &mut env);
        for i in 0..10 {
            ch.enqueue(i, 1_000_000, SimTime::ZERO);
        }
        ch.finish(SimTime::ZERO);
        drain(&mut ch, &mut env);
        let bw = ch.stats().bandwidth_from(SimTime::ZERO);
        // Must be within physical range: positive, below the 175 MB/s
        // torus link rate.
        assert!(bw > 10e6 && bw < 175e6, "bw={bw}");
    }

    #[test]
    fn deliveries_are_monotone_in_time() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(1000, true), &mut env);
        for i in 0..50 {
            ch.enqueue(i, 3_000, SimTime::from_micros(i as u64 * 10));
        }
        ch.finish(SimTime::from_millis(10));
        let (deliveries, eos) = drain(&mut ch, &mut env);
        assert_eq!(deliveries.len(), 50);
        let mut prev = SimTime::ZERO;
        for (t, i) in &deliveries {
            assert!(*t >= prev, "delivery of {i} went back in time");
            prev = *t;
        }
        assert!(eos >= prev);
    }

    #[test]
    fn udp_drops_under_backlog_and_accounts_losses() {
        let mut env = Environment::lofar();
        let cfg = ChannelConfig {
            flow: FlowId(1),
            src: NodeId::be(0),
            dst: NodeId::bg(0),
            carrier: Carrier::Udp,
        };
        let mut ch = StreamChannel::new(cfg, &mut env);
        // Offer far more than the I/O node forwards: everything is
        // ready at t=0, so the backlog blows past the drop threshold.
        let n = 600usize;
        for i in 0..n {
            ch.enqueue(i, 8_000, SimTime::ZERO);
        }
        ch.finish(SimTime::ZERO);
        let (deliveries, _) = drain_udp(&mut ch, &mut env);
        let stats = ch.stats();
        assert!(stats.buffers_dropped > 0, "overload must drop datagrams");
        assert_eq!(
            deliveries.len() as u64 + stats.elements_lost,
            n as u64,
            "every element is delivered or accounted lost"
        );
        assert!(
            stats.bytes_delivered < stats.bytes_enqueued,
            "lost bytes must not count as delivered"
        );
        // Delivered elements keep their order.
        let ids: Vec<usize> = deliveries.iter().map(|(_, i)| *i).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    fn drain_udp(
        ch: &mut StreamChannel<usize>,
        env: &mut Environment,
    ) -> (Vec<(SimTime, usize)>, SimTime) {
        let mut deliveries = Vec::new();
        let mut at = SimTime::ZERO;
        loop {
            let out = ch.cycle(env, at);
            if let Some(t) = out.delivered_at {
                deliveries.extend(out.delivered.into_iter().map(|v| (t, v)));
            }
            if let Some(eos) = out.eos_at {
                return (deliveries, eos);
            }
            at = out.next_cycle.expect("progress until EOS").max(at);
        }
    }

    #[test]
    fn identical_elements_coalesce_into_one_train() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(1000, false), &mut env);
        for _ in 0..100 {
            ch.enqueue("x", 250, SimTime::ZERO);
        }
        assert_eq!(ch.queue.len(), 1, "identical elements form one train");
        let Node::Train(t) = &ch.queue[0] else {
            panic!("coalesced elements stay a train");
        };
        assert_eq!(t.copies, 100);
        ch.finish(SimTime::ZERO);
        let (deliveries, _) = drain(&mut ch, &mut env);
        assert_eq!(deliveries.len(), 100);
        assert_eq!(ch.stats().buffers_sent, 25, "4 x 250 bytes per buffer");
    }

    #[test]
    fn arithmetic_ready_progression_extends_a_train() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(1000, false), &mut env);
        for i in 0..50u64 {
            ch.enqueue("x", 500, SimTime::from_micros(i * 10));
        }
        assert_eq!(ch.queue.len(), 1);
        let Node::Train(t) = &ch.queue[0] else {
            panic!("arithmetic run stays a train");
        };
        assert_eq!(t.step, SimDur::from_micros(10));
        // Breaking the progression starts a new train.
        ch.enqueue("x", 500, SimTime::from_millis(10));
        assert_eq!(ch.queue.len(), 2);
        // A different payload always starts a new train.
        ch.enqueue("y", 500, SimTime::from_millis(10));
        assert_eq!(ch.queue.len(), 3);
    }

    #[test]
    fn trains_and_singletons_deliver_identically() {
        // The same workload enqueued as one mergeable run vs. forcibly
        // distinct elements must produce identical timing.
        let run = |distinct: bool| {
            let mut env = Environment::lofar();
            let mut ch = StreamChannel::new(mpi_cfg(1000, true), &mut env);
            for i in 0..200u64 {
                let tag = if distinct { i } else { 0 };
                ch.enqueue(tag, 300, SimTime::from_nanos(i * 2_500));
            }
            ch.finish(SimTime::from_millis(1));
            let (deliveries, eos) = drain(&mut ch, &mut env);
            let times: Vec<SimTime> = deliveries.iter().map(|(t, _)| *t).collect();
            (times, eos)
        };
        let (t_merged, eos_merged) = run(false);
        let (t_distinct, eos_distinct) = run(true);
        assert_eq!(t_merged, t_distinct);
        assert_eq!(eos_merged, eos_distinct);
    }

    #[test]
    fn pack_matches_per_element_enqueues() {
        // The relay hand-off's pack node: the same workload — distinct
        // same-sized elements with nondecreasing per-element ready
        // times — enqueued one node at a time vs. as a single pack
        // must produce identical delivery batches, delivery times, and
        // byte accounting. (Only the queue high-water mark may differ:
        // a pack is one node.)
        let n = 500u64;
        let readies: Vec<SimTime> = (0..n)
            .map(|i| SimTime::from_nanos(i * i * 17)) // uneven, jitter-like gaps
            .collect();
        let run = |packed: bool| {
            let mut env = Environment::lofar();
            let mut ch = StreamChannel::new(mpi_cfg(1000, true), &mut env);
            if packed {
                ch.enqueue_pack((0..n).collect(), 300, readies.clone());
            } else {
                for i in 0..n {
                    ch.enqueue(i, 300, readies[i as usize]);
                }
            }
            ch.finish(SimTime::from_millis(5));
            let (deliveries, eos) = drain(&mut ch, &mut env);
            let mut stats = *ch.stats();
            stats.queue_peak_trains = 0;
            (deliveries, eos, stats)
        };
        let (d_each, eos_each, s_each) = run(false);
        let (d_pack, eos_pack, s_pack) = run(true);
        assert_eq!(d_each, d_pack);
        assert_eq!(eos_each, eos_pack);
        assert_eq!(s_each, s_pack);
    }

    #[test]
    fn queue_peak_tracks_the_deepest_backlog() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(1000, false), &mut env);
        // Three distinct payloads → three trains queued at once.
        ch.enqueue("a", 250, SimTime::ZERO);
        ch.enqueue("b", 250, SimTime::ZERO);
        ch.enqueue("c", 250, SimTime::ZERO);
        assert_eq!(ch.stats().queue_peak_trains, 3);
        ch.finish(SimTime::ZERO);
        drain(&mut ch, &mut env);
        // Draining never lowers the mark.
        assert_eq!(ch.stats().queue_peak_trains, 3);
        // Extending a train does not count as extra depth.
        let mut ch2 = StreamChannel::new(mpi_cfg(1000, false), &mut env);
        for _ in 0..100 {
            ch2.enqueue("x", 250, SimTime::ZERO);
        }
        assert_eq!(ch2.stats().queue_peak_trains, 1);
    }

    #[test]
    #[should_panic(expected = "enqueue after finish")]
    fn enqueue_after_finish_panics() {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(1000, false), &mut env);
        ch.finish(SimTime::ZERO);
        ch.enqueue((), 10, SimTime::ZERO);
    }
}
