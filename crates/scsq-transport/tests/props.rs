//! Property-based tests for the stream channel drivers.

use proptest::prelude::*;
use scsq_cluster::{Environment, NodeId};
use scsq_net::FlowId;
use scsq_sim::SimTime;
use scsq_transport::{Carrier, ChannelConfig, CycleOutput, StreamChannel};

/// Drives a channel to EOS, collecting all deliveries.
fn drain(ch: &mut StreamChannel<usize>, env: &mut Environment) -> (Vec<(SimTime, usize)>, SimTime) {
    let mut deliveries = Vec::new();
    let mut at = SimTime::ZERO;
    for _ in 0..1_000_000 {
        let CycleOutput {
            delivered,
            delivered_at,
            next_cycle,
            eos_at,
        } = ch.cycle(env, at);
        if let Some(t) = delivered_at {
            deliveries.extend(delivered.into_iter().map(|v| (t, v)));
        }
        if let Some(eos) = eos_at {
            return (deliveries, eos);
        }
        match next_cycle {
            Some(t) => at = t.max(at),
            None => panic!("channel stalled without EOS"),
        }
    }
    panic!("channel did not finish within the cycle budget");
}

fn mpi_cfg(buffer: u64, double: bool) -> ChannelConfig {
    ChannelConfig {
        flow: FlowId(1),
        src: NodeId::bg(1),
        dst: NodeId::bg(0),
        carrier: Carrier::Mpi { buffer, double },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every enqueued element is delivered exactly once,
    /// in order, and all payload bytes are accounted for.
    #[test]
    fn channels_conserve_elements_and_bytes(
        sizes in proptest::collection::vec(1u64..50_000, 1..40),
        buffer in 100u64..200_000,
        double in any::<bool>(),
    ) {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(buffer, double), &mut env);
        let mut total = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            ch.enqueue(i, s, SimTime::ZERO);
            total += s;
        }
        ch.finish(SimTime::ZERO);
        let (deliveries, eos) = drain(&mut ch, &mut env);
        // Exactly once, in order.
        let ids: Vec<usize> = deliveries.iter().map(|(_, i)| *i).collect();
        prop_assert_eq!(ids, (0..sizes.len()).collect::<Vec<_>>());
        // Monotone delivery times, EOS last.
        let mut prev = SimTime::ZERO;
        for (t, _) in &deliveries {
            prop_assert!(*t >= prev);
            prev = *t;
        }
        prop_assert!(eos >= prev);
        prop_assert_eq!(ch.stats().bytes_delivered, total);
        prop_assert_eq!(ch.stats().bytes_enqueued, total);
    }

    /// Double buffering never loses to single buffering for the same
    /// workload and buffer size.
    #[test]
    fn double_buffering_never_loses(
        elem in 1_000u64..300_000,
        count in 1u64..20,
        buffer in 500u64..100_000,
    ) {
        let run = |double: bool| {
            let mut env = Environment::lofar();
            let mut ch = StreamChannel::new(mpi_cfg(buffer, double), &mut env);
            for i in 0..count {
                ch.enqueue(i as usize, elem, SimTime::ZERO);
            }
            ch.finish(SimTime::ZERO);
            drain(&mut ch, &mut env).1
        };
        prop_assert!(run(true) <= run(false));
    }

    /// The buffer count matches the byte math: ceil(total / buffer)
    /// full-or-flushed buffers.
    #[test]
    fn buffer_count_matches_byte_math(
        sizes in proptest::collection::vec(1u64..10_000, 1..30),
        buffer in 100u64..20_000,
    ) {
        let mut env = Environment::lofar();
        let mut ch = StreamChannel::new(mpi_cfg(buffer, true), &mut env);
        let mut total = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            ch.enqueue(i, s, SimTime::ZERO);
            total += s;
        }
        ch.finish(SimTime::ZERO);
        drain(&mut ch, &mut env);
        prop_assert_eq!(ch.stats().buffers_sent, total.div_ceil(buffer));
    }

    /// TCP channels across clusters conserve elements too, and register
    /// / unregister their inbound flow.
    #[test]
    fn tcp_channels_conserve(sizes in proptest::collection::vec(1u64..200_000, 1..20)) {
        let mut env = Environment::lofar();
        let cfg = ChannelConfig {
            flow: FlowId(9),
            src: NodeId::be(0),
            dst: NodeId::bg(3),
            carrier: Carrier::Tcp,
        };
        let mut ch = StreamChannel::new(cfg, &mut env);
        prop_assert_eq!(env.inbound_streams(0), 1);
        for (i, &s) in sizes.iter().enumerate() {
            ch.enqueue(i, s, SimTime::ZERO);
        }
        ch.finish(SimTime::ZERO);
        let (deliveries, _) = drain(&mut ch, &mut env);
        prop_assert_eq!(deliveries.len(), sizes.len());
        prop_assert_eq!(env.inbound_streams(0), 0);
    }
}
