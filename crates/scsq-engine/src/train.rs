//! The train-coalescing execution driver.
//!
//! Long streaming phases of a query schedule the same events over and
//! over: generate an array, marshal a buffer, cycle a channel, deliver
//! a batch. This driver watches the event schedule for such periodic
//! phases (anchored on a recurring event key), fingerprints the entire
//! simulation state at each recurrence, and — once consecutive periods
//! provably apply the same per-coordinate deltas — fast-forwards whole
//! trains of periods analytically instead of dispatching each event.
//!
//! The fast path is bit-identical to per-event execution by
//! construction: a jump is only taken when every changed coordinate is
//! a pure counter advancing by a fixed delta per period, every bounded
//! coordinate provably stays inside its bound for the whole train, and
//! all other state (the "shape": value payloads, queue membership,
//! branch-relevant flags) is exactly unchanged between periods.
//! Anything else — a buffer filling up, an EOS, a UDP drop decision
//! approaching its threshold, a changed tuple — breaks the shape or a
//! cap and falls back to ordinary event dispatch.

use crate::runtime::{Ev, Sim, World};
use scsq_sim::{CoalesceStats, Coalescer, SimTime, StateProbe};

/// Runs the simulation to completion, coalescing periodic phases.
/// Returns the final simulation time and what the coalescer did.
pub(crate) fn run_coalesced(sim: &mut Sim) -> (SimTime, CoalesceStats) {
    let mut co = Coalescer::new();
    while let Some(key) = sim.peek_key(Ev::key) {
        if co.note_event(key) {
            let mut p = StateProbe::digest();
            sim.probe_state(&mut p, Ev::probe, World::probe);
            if let Some(plan) = co.observe(p.finish()) {
                let t0 = sim.now();
                let mut adv = StateProbe::advance(&plan.deltas, plan.periods);
                sim.probe_state(&mut adv, Ev::probe, World::probe);
                co.after_jump(&plan);
                // Flight recorder: the advance probe moved simulated
                // time across the whole coalesced train — record the
                // skipped interval as one span.
                if scsq_sim::obs::enabled() {
                    let t1 = sim.now();
                    scsq_sim::obs::record_span(scsq_sim::Span {
                        name: "coalesce-jump",
                        cat: "coalesce",
                        tid: 4000,
                        ts_ns: t0.as_nanos(),
                        dur_ns: t1.since(t0).as_nanos(),
                    });
                }
            }
        }
        if !sim.step() {
            break;
        }
    }
    (sim.now(), co.stats())
}
