//! Query set-up: binding, stream-process creation, and placement.
//!
//! This is the client manager's front half (§2.2): given a parsed
//! statement, the [`QueryBuilder`] solves the `where`-clause equations in
//! dependency order, evaluates `sp()`/`spv()` calls into stream
//! processes (compiling each sub-query into a [`Pipeline`]), evaluates
//! allocation-sequence arguments against the CNDB vocabulary, registers
//! every SP with its cluster coordinator for node selection, and returns
//! the complete [`QueryGraph`] ready for execution.
//!
//! The paper's RPs can also start new RPs dynamically at run time; since
//! all the paper's queries have statically-known process structure, this
//! reproduction expands the full SP graph at set-up time (the observable
//! behaviour — who runs where, connected how — is identical).

use crate::coordinator::Coordinator;
use crate::error::EngineError;
use crate::funcs;
use crate::fused::FusedProgram;
use crate::ops::{AggKind, ArithOp, CmpOp, InputKind, MapFunc, Pipeline, Stage};
use crate::placement::PlacementPolicy;
use crate::runtime::RunOptions;
use crate::window::WindowSpec;
use scsq_cluster::{AllocSeq, ClusterName, Environment, NodeId};
use scsq_ql::{
    Builtin, Catalog, Expr, PredOp, Predicate, Resolved, SelectQuery, SpHandle, Statement,
    TypeName, Value, VarDecl,
};
use std::collections::HashMap;
use std::str::FromStr;

/// A fully-specified stream process: its compiled sub-query and the node
/// its RP will run on.
#[derive(Debug, Clone, PartialEq)]
pub struct SpSpec {
    /// The SP's handle (referenced by subscribers' `Receive` inputs).
    pub handle: SpHandle,
    /// The compiled SQEP.
    pub pipeline: Pipeline,
    /// The pipeline's fused lowering, prepared once at build time and
    /// reused by every run of the graph.
    pub program: FusedProgram,
    /// Where the RP runs.
    pub node: NodeId,
}

/// The complete set-up of one continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryGraph {
    /// All stream processes, in creation order (producers before
    /// subscribers).
    pub sps: Vec<SpSpec>,
    /// The client manager's own pipeline (the top select head).
    pub client: Pipeline,
    /// The client pipeline's fused lowering.
    pub client_program: FusedProgram,
    /// Where the client manager runs.
    pub client_node: NodeId,
}

type Bindings = HashMap<String, Value>;

/// Builds a [`QueryGraph`] from a parsed statement.
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    env: &'a mut Environment,
    catalog: &'a Catalog,
    policy: PlacementPolicy,
    options: &'a RunOptions,
    coordinators: HashMap<ClusterName, Coordinator>,
    sps: Vec<SpSpec>,
    next_handle: u64,
    fn_depth: u32,
}

/// The cluster an `sp()` call without a cluster argument runs in (the
/// client manager's own cluster).
const DEFAULT_CLUSTER: ClusterName = ClusterName::FrontEnd;

/// Recursion guard for user-defined function expansion.
const MAX_FN_DEPTH: u32 = 32;

impl<'a> QueryBuilder<'a> {
    /// Creates a builder over an idle environment.
    pub fn new(
        env: &'a mut Environment,
        catalog: &'a Catalog,
        policy: PlacementPolicy,
        options: &'a RunOptions,
    ) -> Self {
        let coordinators = ClusterName::ALL
            .into_iter()
            .map(|c| (c, Coordinator::for_cluster(c)))
            .collect();
        QueryBuilder {
            env,
            catalog,
            policy,
            options,
            coordinators,
            sps: Vec::new(),
            next_handle: 0,
            fn_depth: 0,
        }
    }

    /// Builds the query graph for a statement, with optional pre-bound
    /// query variables (overriding `var = literal` predicates).
    ///
    /// # Errors
    ///
    /// Binder, type, catalog, or placement errors.
    pub fn build(
        mut self,
        stmt: &Statement,
        prebound: &[(String, Value)],
    ) -> Result<QueryGraph, EngineError> {
        let mut bindings: Bindings = prebound.iter().cloned().collect();
        let client = match stmt {
            Statement::Select(q) => {
                if q.head.len() != 1 {
                    return Err(EngineError::bind(format!(
                        "continuous queries have exactly one select-head expression, found {}",
                        q.head.len()
                    )));
                }
                self.bind_where(q, &mut bindings)?;
                self.compile_stream(&q.head[0], &bindings)?
            }
            Statement::Expr(e) => self.compile_stream(e, &bindings)?,
            Statement::CreateFunction(def) => {
                return Err(EngineError::bind(format!(
                    "`create function {}` must be executed through the client manager catalog",
                    def.name
                )))
            }
            Statement::Prepare { body, .. } => return self.build(body, prebound),
            Statement::Run(name) => {
                return Err(EngineError::bind(format!(
                    "`run {name}` needs a session catalog; execute it through a `Session`"
                )))
            }
            Statement::ShowCatalog => {
                return Err(EngineError::bind(
                    "`show catalog` needs a session catalog; execute it through a `Session`"
                        .to_string(),
                ))
            }
        };
        let client_node = self
            .coordinators
            .get_mut(&ClusterName::FrontEnd)
            .expect("fe coordinator")
            .register(self.env, &AllocSeq::Any)?;
        let client_program = FusedProgram::compile(&client);
        Ok(QueryGraph {
            sps: self.sps,
            client,
            client_program,
            client_node,
        })
    }

    // ----- where-clause solving ---------------------------------------

    /// Solves all `=` predicates of a select query in dependency order.
    /// Pre-bound variables skip their defining equation (the paper's
    /// "altering a query variable n").
    fn bind_where(&mut self, q: &SelectQuery, bindings: &mut Bindings) -> Result<(), EngineError> {
        let mut remaining: Vec<&Predicate> = q.preds.iter().collect();
        loop {
            let mut progress = false;
            let mut next = Vec::new();
            for pred in remaining {
                match self.try_solve(q, pred, bindings)? {
                    true => progress = true,
                    false => next.push(pred),
                }
            }
            if next.is_empty() {
                // Every declared variable must now be bound.
                for d in &q.decls {
                    if !bindings.contains_key(&d.name) {
                        return Err(EngineError::bind(format!(
                            "variable `{}` is declared but never bound",
                            d.name
                        )));
                    }
                }
                return Ok(());
            }
            if !progress {
                let unbound: Vec<&str> = next
                    .iter()
                    .filter_map(|p| match &p.lhs {
                        Expr::Var(v) if !bindings.contains_key(v) => Some(v.as_str()),
                        _ => None,
                    })
                    .collect();
                return Err(EngineError::bind(format!(
                    "cannot resolve query variables (circular or underdetermined): {}",
                    if unbound.is_empty() {
                        "no variable side in remaining predicates".to_string()
                    } else {
                        unbound.join(", ")
                    }
                )));
            }
            remaining = next;
        }
    }

    /// Attempts one predicate; returns whether it was consumed.
    fn try_solve(
        &mut self,
        q: &SelectQuery,
        pred: &Predicate,
        bindings: &mut Bindings,
    ) -> Result<bool, EngineError> {
        if pred.op == PredOp::In {
            return Err(EngineError::bind(
                "`in` predicates are only supported inside sub-queries passed to spv()".to_string(),
            ));
        }
        // Identify the variable side.
        let (var, expr) = match (&pred.lhs, &pred.rhs) {
            (Expr::Var(v), rhs) => (v, rhs),
            (lhs, Expr::Var(v)) => (v, lhs),
            _ => {
                return Err(EngineError::bind(
                    "each `where` conjunct must bind a variable".to_string(),
                ))
            }
        };
        if bindings.contains_key(var) {
            // Pre-bound override or duplicate equation: consumed.
            return Ok(true);
        }
        let free = expr.free_vars();
        if !free.iter().all(|v| bindings.contains_key(v)) {
            return Ok(false);
        }
        let value = self.eval(expr, bindings)?;
        if let Some(decl) = q.decl(var) {
            check_decl(decl, &value)?;
        }
        bindings.insert(var.clone(), value);
        Ok(true)
    }

    // ----- value evaluation -------------------------------------------

    /// Evaluates an expression to a value at set-up time. Stream
    /// operators are not values; they only appear inside sub-queries
    /// compiled by [`QueryBuilder::compile_stream`].
    fn eval(&mut self, expr: &Expr, bindings: &Bindings) -> Result<Value, EngineError> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Var(name) => bindings
                .get(name)
                .cloned()
                .ok_or_else(|| EngineError::bind(format!("unbound variable `{name}`"))),
            Expr::Set(items) => Ok(Value::Bag(
                items
                    .iter()
                    .map(|e| self.eval(e, bindings))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::Select(_) => Err(EngineError::bind(
                "a sub-query is not a value; pass it to sp() or spv()".to_string(),
            )),
            Expr::Call { name, args } => match self.catalog.resolve(name, args.len())? {
                Resolved::Builtin(b) => self.eval_builtin(b, name, args, bindings),
                Resolved::User(def) => {
                    let def = def.clone();
                    let local = self.bind_params(&def, args, bindings)?;
                    self.with_fn_depth(|this| this.eval(&def.body, &local))
                }
            },
        }
    }

    fn eval_builtin(
        &mut self,
        b: Builtin,
        name: &str,
        args: &[Expr],
        bindings: &Bindings,
    ) -> Result<Value, EngineError> {
        match b {
            Builtin::Sp => {
                let handle = self.create_sp(&args[0], args.get(1), args.get(2), bindings)?;
                Ok(Value::Sp(handle))
            }
            Builtin::Spv => {
                let handles = self.create_spv(&args[0], args.get(1), args.get(2), bindings)?;
                Ok(Value::Bag(handles.into_iter().map(Value::Sp).collect()))
            }
            Builtin::Iota => {
                let lo = self.eval_integer(&args[0], bindings, "iota lower bound")?;
                let hi = self.eval_integer(&args[1], bindings, "iota upper bound")?;
                Ok(Value::Bag((lo..=hi).map(Value::Integer).collect()))
            }
            Builtin::Filename => {
                let i = self.eval_integer(&args[0], bindings, "filename index")?;
                Ok(Value::Str(funcs::filename(i)))
            }
            Builtin::Urr | Builtin::InPset | Builtin::PsetRr => Err(EngineError::bind(format!(
                "`{name}` is a node allocation query and only valid as the allocation-sequence \
                 argument of sp() or spv()"
            ))),
            Builtin::Nodes => {
                let s = self.eval_string(&args[0], bindings, "nodes cluster argument")?;
                let cluster =
                    ClusterName::from_str(&s).map_err(|e| EngineError::bind(e.to_string()))?;
                let available: Vec<Value> = self
                    .env
                    .cndb(cluster)
                    .iter()
                    .filter(|n| n.available())
                    .map(|n| Value::Integer(n.id.index as i64))
                    .collect();
                Ok(Value::Bag(available))
            }
            _ => Err(EngineError::bind(format!(
                "stream function `{name}` used in value position; wrap it in sp()"
            ))),
        }
    }

    fn eval_integer(
        &mut self,
        expr: &Expr,
        bindings: &Bindings,
        context: &str,
    ) -> Result<i64, EngineError> {
        let v = self.eval(expr, bindings)?;
        v.as_integer()
            .ok_or_else(|| EngineError::type_error("integer", &v, context))
    }

    fn eval_string(
        &mut self,
        expr: &Expr,
        bindings: &Bindings,
        context: &str,
    ) -> Result<String, EngineError> {
        let v = self.eval(expr, bindings)?;
        match v {
            Value::Str(s) => Ok(s),
            other => Err(EngineError::type_error("string", &other, context)),
        }
    }

    fn bind_params(
        &mut self,
        def: &scsq_ql::FunctionDef,
        args: &[Expr],
        bindings: &Bindings,
    ) -> Result<Bindings, EngineError> {
        let mut local = Bindings::new();
        for ((pname, _ty), arg) in def.params.iter().zip(args) {
            let v = self.eval(arg, bindings)?;
            local.insert(pname.clone(), v);
        }
        Ok(local)
    }

    fn with_fn_depth<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        self.fn_depth += 1;
        if self.fn_depth > MAX_FN_DEPTH {
            return Err(EngineError::bind(
                "user-defined function expansion exceeded the recursion limit".to_string(),
            ));
        }
        let r = f(self);
        self.fn_depth -= 1;
        r
    }

    // ----- stream process creation -------------------------------------

    fn cluster_arg(
        &mut self,
        arg: Option<&Expr>,
        bindings: &Bindings,
    ) -> Result<ClusterName, EngineError> {
        match arg {
            None => Ok(DEFAULT_CLUSTER),
            Some(e) => {
                let s = self.eval_string(e, bindings, "sp cluster argument")?;
                ClusterName::from_str(&s).map_err(|err| EngineError::bind(err.to_string()))
            }
        }
    }

    /// Evaluates an allocation-sequence argument (§2.4: "a node
    /// allocation query ... returns a stream of allowable compute nodes
    /// in preferred allocation order").
    fn alloc_seq(
        &mut self,
        arg: Option<&Expr>,
        bindings: &Bindings,
    ) -> Result<AllocSeq, EngineError> {
        let Some(expr) = arg else {
            return Ok(AllocSeq::Any);
        };
        if let Expr::Call { name, args } = expr {
            match Builtin::lookup(name) {
                Some(Builtin::Urr) => {
                    // The argument names the cluster whose CNDB feeds the
                    // sequence; it must parse as a cluster name.
                    let s = self.eval_string(&args[0], bindings, "urr cluster argument")?;
                    ClusterName::from_str(&s).map_err(|e| EngineError::bind(e.to_string()))?;
                    return Ok(AllocSeq::UniformRoundRobin);
                }
                Some(Builtin::InPset) => {
                    let k = self.eval_integer(&args[0], bindings, "inPset argument")?;
                    if k < 1 {
                        return Err(EngineError::bind(format!(
                            "inPset psets are numbered from 1, got {k}"
                        )));
                    }
                    return Ok(AllocSeq::InPset((k - 1) as usize));
                }
                Some(Builtin::PsetRr) => return Ok(AllocSeq::PsetRoundRobin),
                _ => {}
            }
        }
        // Otherwise the argument evaluates to explicit node number(s).
        let v = self.eval(expr, bindings)?;
        explicit_alloc(&v)
    }

    fn create_sp(
        &mut self,
        subquery: &Expr,
        cluster_arg: Option<&Expr>,
        alloc_arg: Option<&Expr>,
        bindings: &Bindings,
    ) -> Result<SpHandle, EngineError> {
        let cluster = self.cluster_arg(cluster_arg, bindings)?;
        let alloc = self.alloc_seq(alloc_arg, bindings)?;
        let pipeline = self.compile_stream(subquery, bindings)?;
        self.register_sp(pipeline, cluster, &alloc)
    }

    fn create_spv(
        &mut self,
        subqueries: &Expr,
        cluster_arg: Option<&Expr>,
        alloc_arg: Option<&Expr>,
        bindings: &Bindings,
    ) -> Result<Vec<SpHandle>, EngineError> {
        let cluster = self.cluster_arg(cluster_arg, bindings)?;
        // "This allocation sequence stream is later shipped back to the
        // cluster coordinator by the spv() call" (§3.2): evaluated once,
        // consumed per SP by the node-selection algorithm.
        let alloc = self.alloc_seq(alloc_arg, bindings)?;
        let Expr::Select(sub) = subqueries else {
            return Err(EngineError::bind(
                "spv() takes a sub-query (select …) as its first argument".to_string(),
            ));
        };
        if sub.head.len() != 1 {
            return Err(EngineError::bind(
                "spv() sub-queries have exactly one head expression".to_string(),
            ));
        }
        let instances = self.enumerate(sub, bindings.clone())?;
        let mut handles = Vec::with_capacity(instances.len());
        for inst in &instances {
            let pipeline = self.compile_stream(&sub.head[0], inst)?;
            handles.push(self.register_sp(pipeline, cluster, &alloc)?);
        }
        Ok(handles)
    }

    fn register_sp(
        &mut self,
        pipeline: Pipeline,
        cluster: ClusterName,
        alloc: &AllocSeq,
    ) -> Result<SpHandle, EngineError> {
        let effective = self.policy.effective(cluster, alloc);
        let node = self
            .coordinators
            .get_mut(&cluster)
            .expect("coordinator per cluster")
            .register(self.env, &effective)?;
        let handle = SpHandle(self.next_handle);
        self.next_handle += 1;
        let program = FusedProgram::compile(&pipeline);
        self.sps.push(SpSpec {
            handle,
            pipeline,
            program,
            node,
        });
        Ok(handle)
    }

    /// Enumerates the binding instances of a sub-query: solves ready `=`
    /// predicates, then expands each `in` predicate over its bag — the
    /// degree-of-parallelism mechanism of the paper's queries
    /// (`where i in iota(1,n)` / `where p in a`).
    fn enumerate(
        &mut self,
        q: &SelectQuery,
        bindings: Bindings,
    ) -> Result<Vec<Bindings>, EngineError> {
        let preds: Vec<Predicate> = q.preds.clone();
        let mut out = Vec::new();
        self.enumerate_rec(q, &preds, bindings, &mut out)?;
        Ok(out)
    }

    fn enumerate_rec(
        &mut self,
        q: &SelectQuery,
        remaining: &[Predicate],
        mut bindings: Bindings,
        out: &mut Vec<Bindings>,
    ) -> Result<(), EngineError> {
        // Solve every ready `=` predicate first.
        let mut rest: Vec<Predicate> = Vec::new();
        for pred in remaining {
            if pred.op == PredOp::Eq {
                let (var, expr) = match (&pred.lhs, &pred.rhs) {
                    (Expr::Var(v), rhs) => (v, rhs),
                    (lhs, Expr::Var(v)) => (v, lhs),
                    _ => {
                        return Err(EngineError::bind(
                            "each `where` conjunct must bind a variable".to_string(),
                        ))
                    }
                };
                if bindings.contains_key(var) {
                    continue;
                }
                if expr.free_vars().iter().all(|v| bindings.contains_key(v)) {
                    let value = self.eval(expr, &bindings)?;
                    if let Some(decl) = q.decl(var) {
                        check_decl(decl, &value)?;
                    }
                    bindings.insert(var.clone(), value);
                    continue;
                }
            }
            rest.push(pred.clone());
        }
        // Find an expandable `in` predicate.
        let pos = rest.iter().position(|p| {
            p.op == PredOp::In
                && matches!(&p.lhs, Expr::Var(v) if !bindings.contains_key(v))
                && p.rhs.free_vars().iter().all(|v| bindings.contains_key(v))
        });
        match pos {
            Some(i) => {
                let pred = rest.remove(i);
                let Expr::Var(var) = &pred.lhs else {
                    unreachable!("position() checked lhs is a var")
                };
                let bag = self.eval(&pred.rhs, &bindings)?;
                let items = match bag {
                    Value::Bag(items) => items,
                    other => return Err(EngineError::type_error("bag", &other, "`in` predicate")),
                };
                for item in items {
                    if let Some(decl) = q.decl(var) {
                        check_decl(decl, &item)?;
                    }
                    let mut b = bindings.clone();
                    b.insert(var.clone(), item);
                    self.enumerate_rec(q, &rest, b, out)?;
                }
                Ok(())
            }
            None if rest.is_empty() => {
                out.push(bindings);
                Ok(())
            }
            None => Err(EngineError::bind(
                "sub-query predicates are circular or underdetermined".to_string(),
            )),
        }
    }

    // ----- stream compilation -------------------------------------------

    /// Compiles an expression into an SQEP [`Pipeline`].
    fn compile_stream(
        &mut self,
        expr: &Expr,
        bindings: &Bindings,
    ) -> Result<Pipeline, EngineError> {
        match expr {
            Expr::Call { name, args } => match self.catalog.resolve(name, args.len())? {
                Resolved::Builtin(b) => self.compile_builtin(b, name, args, bindings),
                Resolved::User(def) => {
                    let def = def.clone();
                    let local = self.bind_params(&def, args, bindings)?;
                    self.with_fn_depth(|this| this.compile_stream(&def.body, &local))
                }
            },
            Expr::Select(q) => {
                // A select used as a stream (user-function bodies): solve
                // its where clause, compile its head.
                if q.head.len() != 1 {
                    return Err(EngineError::bind(
                        "stream sub-queries have exactly one head expression".to_string(),
                    ));
                }
                let mut local = bindings.clone();
                self.bind_where(q, &mut local)?;
                self.compile_stream(&q.head[0], &local)
            }
            // Everything else evaluates to a value and streams from there.
            other => {
                let v = self.eval(other, bindings)?;
                Ok(value_pipeline(v))
            }
        }
    }

    fn compile_builtin(
        &mut self,
        b: Builtin,
        name: &str,
        args: &[Expr],
        bindings: &Bindings,
    ) -> Result<Pipeline, EngineError> {
        match b {
            Builtin::Extract => {
                let v = self.eval(&args[0], bindings)?;
                let h = v
                    .as_sp()
                    .ok_or_else(|| EngineError::type_error("sp", &v, "extract()"))?;
                Ok(Pipeline::relay(vec![h]))
            }
            Builtin::Merge => {
                let v = self.eval(&args[0], bindings)?;
                Ok(Pipeline::relay(sp_handles(&v, "merge()")?))
            }
            Builtin::Count | Builtin::Sum | Builtin::Max | Builtin::Min | Builtin::Avg => {
                let mut p = self.compile_stream(&args[0], bindings)?;
                let kind = match b {
                    Builtin::Count => AggKind::Count,
                    Builtin::Sum => AggKind::Sum,
                    Builtin::Max => AggKind::Max,
                    Builtin::Min => AggKind::Min,
                    _ => AggKind::Avg,
                };
                p.stages.push(Stage::Agg(kind));
                Ok(p)
            }
            Builtin::Streamof => {
                let mut p = self.compile_stream(&args[0], bindings)?;
                p.stages.push(Stage::StreamOf);
                Ok(p)
            }
            Builtin::GenArray => {
                let bytes = self.eval_integer(&args[0], bindings, "gen_array size")?;
                let count = self.eval_integer(&args[1], bindings, "gen_array count")?;
                if bytes <= 0 || count <= 0 {
                    return Err(EngineError::bind(format!(
                        "gen_array needs positive size and count, got ({bytes}, {count})"
                    )));
                }
                Ok(Pipeline {
                    input: InputKind::Gen {
                        bytes: bytes as u64,
                        count: count as u64,
                    },
                    stages: Vec::new(),
                })
            }
            Builtin::Fft | Builtin::Power | Builtin::Odd | Builtin::Even => {
                let mut p = self.compile_stream(&args[0], bindings)?;
                let f = match b {
                    Builtin::Fft => MapFunc::Fft,
                    Builtin::Power => MapFunc::Power,
                    Builtin::Odd => MapFunc::Odd,
                    _ => MapFunc::Even,
                };
                p.stages.push(Stage::Map(f));
                Ok(p)
            }
            Builtin::RadixCombine => {
                let p = self.compile_stream(&args[0], bindings)?;
                if !p.stages.is_empty() || p.producers().len() != 2 {
                    return Err(EngineError::bind(
                        "radixcombine takes merge({odd_fft_sp, even_fft_sp}) — exactly two \
                         producers"
                            .to_string(),
                    ));
                }
                let first = p.producers()[0];
                let second = p.producers()[1];
                Ok(Pipeline {
                    input: p.input,
                    stages: vec![Stage::RadixCombine { first, second }],
                })
            }
            Builtin::Grep => {
                let pattern = self.eval_string(&args[0], bindings, "grep pattern")?;
                let file = self.eval_string(&args[1], bindings, "grep file")?;
                Ok(Pipeline {
                    input: InputKind::Grep { pattern, file },
                    stages: Vec::new(),
                })
            }
            Builtin::Receiver => {
                let source = self.eval_string(&args[0], bindings, "receiver source")?;
                Ok(Pipeline {
                    input: InputKind::Receiver {
                        name: source,
                        arrays: self.options.receiver_arrays,
                        samples: self.options.receiver_samples,
                    },
                    stages: Vec::new(),
                })
            }
            Builtin::WindowAgg => {
                let mut p = self.compile_stream(&args[0], bindings)?;
                let size = self.eval_integer(&args[1], bindings, "winagg size")?;
                let slide = self.eval_integer(&args[2], bindings, "winagg slide")?;
                let agg = match self
                    .eval_string(&args[3], bindings, "winagg function")?
                    .as_str()
                {
                    "count" => AggKind::Count,
                    "sum" => AggKind::Sum,
                    "max" => AggKind::Max,
                    "min" => AggKind::Min,
                    "avg" => AggKind::Avg,
                    other => {
                        return Err(EngineError::bind(format!(
                            "winagg supports 'count', 'sum', 'max', 'min', 'avg'; got '{other}'"
                        )))
                    }
                };
                if size <= 0 || slide <= 0 {
                    return Err(EngineError::bind(
                        "winagg size and slide must be positive".to_string(),
                    ));
                }
                p.stages.push(Stage::Window(WindowSpec::new(
                    size as usize,
                    slide as usize,
                    agg,
                )?));
                Ok(p)
            }
            Builtin::Take => {
                let mut p = self.compile_stream(&args[0], bindings)?;
                let limit = self.eval_integer(&args[1], bindings, "take limit")?;
                if limit < 0 {
                    return Err(EngineError::bind(format!(
                        "take limit must be non-negative, got {limit}"
                    )));
                }
                p.stages.push(Stage::Take {
                    limit: limit as u64,
                });
                Ok(p)
            }
            // sp()/spv() in stream position: evaluate (creating the SPs)
            // and subscribe to the result.
            Builtin::Sp | Builtin::Spv => {
                let v = self.eval_builtin(b, name, args, bindings)?;
                Ok(value_pipeline(v))
            }
            Builtin::Metrics => {
                let v = self.eval(&args[0], bindings)?;
                let targets = sp_handles(&v, "metrics()")?;
                Ok(Pipeline {
                    input: InputKind::Metrics { targets },
                    stages: Vec::new(),
                })
            }
            Builtin::Bandwidth => {
                let mut p = self.compile_stream(&args[0], bindings)?;
                p.stages.push(Stage::Bandwidth);
                Ok(p)
            }
            Builtin::Latency => {
                let v = self.eval(&args[0], bindings)?;
                let targets = sp_handles(&v, "latency()")?;
                Ok(Pipeline {
                    input: InputKind::Latency { targets },
                    stages: Vec::new(),
                })
            }
            Builtin::Quantile => {
                let mut p = self.compile_stream(&args[0], bindings)?;
                let qv = self.eval(&args[1], bindings)?;
                let q = qv
                    .as_real()
                    .ok_or_else(|| EngineError::type_error("number", &qv, "quantile level"))?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(EngineError::bind(format!(
                        "quantile level must be in [0, 1], got {q}"
                    )));
                }
                p.stages.push(Stage::Quantile { q });
                Ok(p)
            }
            Builtin::Arith => {
                let mut p = self.compile_stream(&args[0], bindings)?;
                let spelled = self.eval_string(&args[1], bindings, "arith operator")?;
                let op = ArithOp::parse(&spelled).ok_or_else(|| {
                    EngineError::bind(format!("arith supports '+', '-', '*'; got '{spelled}'"))
                })?;
                let rhs = self.eval(&args[2], bindings)?;
                if !matches!(rhs, Value::Integer(_) | Value::Real(_)) {
                    return Err(EngineError::type_error("number", &rhs, "arith constant"));
                }
                p.stages.push(Stage::Arith { op, rhs });
                Ok(p)
            }
            Builtin::Cmp | Builtin::Filter => {
                let mut p = self.compile_stream(&args[0], bindings)?;
                let spelled = self.eval_string(&args[1], bindings, "comparison operator")?;
                let op = CmpOp::parse(&spelled).ok_or_else(|| {
                    EngineError::bind(format!(
                        "{name} supports '<', '<=', '>', '>=', '=', '!='; got '{spelled}'"
                    ))
                })?;
                let rhs = self.eval(&args[2], bindings)?;
                if !matches!(rhs, Value::Integer(_) | Value::Real(_) | Value::Str(_)) {
                    return Err(EngineError::type_error(
                        "number or string",
                        &rhs,
                        "comparison constant",
                    ));
                }
                p.stages.push(if b == Builtin::Cmp {
                    Stage::Cmp { op, rhs }
                } else {
                    Stage::Filter { op, rhs }
                });
                Ok(p)
            }
            Builtin::Iota | Builtin::Filename | Builtin::Nodes => {
                let v = self.eval_builtin(b, name, args, bindings)?;
                Ok(value_pipeline(v))
            }
            Builtin::Urr | Builtin::InPset | Builtin::PsetRr => Err(EngineError::bind(format!(
                "`{name}` is a node allocation query and cannot be used as a stream"
            ))),
        }
    }
}

/// Turns an already-evaluated value into a pipeline: SP handles become
/// subscriptions, anything else becomes a constant stream.
fn value_pipeline(v: Value) -> Pipeline {
    match &v {
        Value::Sp(h) => Pipeline::relay(vec![*h]),
        Value::Bag(items) if !items.is_empty() && items.iter().all(|i| i.as_sp().is_some()) => {
            Pipeline::relay(items.iter().map(|i| i.as_sp().expect("all sps")).collect())
        }
        Value::Bag(items) => Pipeline {
            input: InputKind::Const {
                values: items.clone(),
            },
            stages: Vec::new(),
        },
        _ => Pipeline {
            input: InputKind::Const { values: vec![v] },
            stages: Vec::new(),
        },
    }
}

fn sp_handles(v: &Value, context: &str) -> Result<Vec<SpHandle>, EngineError> {
    match v {
        Value::Sp(h) => Ok(vec![*h]),
        Value::Bag(items) => items
            .iter()
            .map(|i| {
                i.as_sp()
                    .ok_or_else(|| EngineError::type_error("sp", i, context))
            })
            .collect(),
        other => Err(EngineError::type_error("sp or bag of sp", other, context)),
    }
}

fn explicit_alloc(v: &Value) -> Result<AllocSeq, EngineError> {
    let to_index = |v: &Value| -> Result<usize, EngineError> {
        let i = v
            .as_integer()
            .ok_or_else(|| EngineError::type_error("integer", v, "allocation sequence"))?;
        usize::try_from(i).map_err(|_| {
            EngineError::bind(format!(
                "allocation sequence node numbers must be ≥ 0, got {i}"
            ))
        })
    };
    match v {
        Value::Integer(_) => Ok(AllocSeq::Explicit(vec![to_index(v)?])),
        Value::Bag(items) => Ok(AllocSeq::Explicit(
            items.iter().map(to_index).collect::<Result<_, _>>()?,
        )),
        other => Err(EngineError::type_error(
            "integer or bag of integers",
            other,
            "allocation sequence",
        )),
    }
}

fn check_decl(decl: &VarDecl, value: &Value) -> Result<(), EngineError> {
    let context = format!("binding of `{}`", decl.name);
    if decl.bag {
        if !matches!(value, Value::Bag(_)) {
            return Err(EngineError::type_error("bag", value, &context));
        }
        return Ok(());
    }
    let ok = match decl.ty {
        TypeName::Sp => matches!(value, Value::Sp(_)),
        TypeName::Integer => matches!(value, Value::Integer(_)),
        TypeName::Real => matches!(value, Value::Real(_) | Value::Integer(_)),
        TypeName::String => matches!(value, Value::Str(_)),
        TypeName::Stream => matches!(value, Value::Stream(_) | Value::Sp(_)),
        TypeName::Object => true,
    };
    if ok {
        Ok(())
    } else {
        Err(EngineError::Type {
            expected: decl.ty.as_str(),
            found: value.type_name().to_string(),
            context,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scsq_ql::parse_statement;

    fn build(src: &str) -> Result<QueryGraph, EngineError> {
        build_with(src, &[])
    }

    fn build_with(src: &str, pre: &[(String, Value)]) -> Result<QueryGraph, EngineError> {
        let mut env = Environment::lofar();
        let catalog = Catalog::new();
        let options = RunOptions::default();
        let stmt = parse_statement(src).expect("parses");
        QueryBuilder::new(&mut env, &catalog, PlacementPolicy::Naive, &options).build(&stmt, pre)
    }

    #[test]
    fn p2p_query_builds_two_sps_on_requested_nodes() {
        let g = build(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(3000000,100),'bg',1);",
        )
        .unwrap();
        assert_eq!(g.sps.len(), 2);
        // a is created first (b depends on it) and pinned to bg node 1.
        assert_eq!(g.sps[0].node, NodeId::bg(1));
        assert!(matches!(
            g.sps[0].pipeline.input,
            InputKind::Gen {
                bytes: 3_000_000,
                count: 100
            }
        ));
        // b is pinned to bg node 0 and counts a's stream.
        assert_eq!(g.sps[1].node, NodeId::bg(0));
        assert_eq!(g.sps[1].pipeline.producers(), &[g.sps[0].handle]);
        assert_eq!(
            g.sps[1].pipeline.stages,
            vec![Stage::Agg(AggKind::Count), Stage::StreamOf]
        );
        // The client subscribes to b.
        assert_eq!(g.client.producers(), &[g.sps[1].handle]);
        assert_eq!(g.client_node, NodeId::fe(0));
    }

    #[test]
    fn spv_expands_in_predicates() {
        let g = build(
            "select extract(c) from
             bag of sp a, sp b, sp c, integer n
             where c=sp(extract(b), 'bg')
             and b=sp(count(merge(a)), 'bg')
             and a=spv(
               (select gen_array(3000000,100)
                from integer i where i in iota(1,n)),
               'be', 1)
             and n=4;",
        )
        .unwrap();
        // 4 generators + b + c.
        assert_eq!(g.sps.len(), 6);
        // All four generators co-located on back-end node 1 (Query 1).
        for sp in &g.sps[..4] {
            assert_eq!(sp.node, NodeId::be(1));
        }
        // b merges the four generators.
        assert_eq!(g.sps[4].pipeline.producers().len(), 4);
    }

    #[test]
    fn prebound_variables_override_equations() {
        let g = build_with(
            "select extract(b) from bag of sp a, sp b, integer n
             where b=sp(count(merge(a)), 'bg')
             and a=spv((select gen_array(1000,1) from integer i where i in iota(1,n)), 'be', 1)
             and n=2;",
            &[("n".to_string(), Value::Integer(7))],
        )
        .unwrap();
        // 7 generators + b, despite n=4... n=2 in the text.
        assert_eq!(g.sps.len(), 8);
    }

    #[test]
    fn urr_spreads_spv_over_nodes() {
        let g = build(
            "select extract(b) from bag of sp a, sp b, integer n
             where b=sp(count(merge(a)), 'bg')
             and a=spv((select gen_array(1000,1) from integer i where i in iota(1,n)), 'be', urr('be'))
             and n=6;",
        )
        .unwrap();
        let nodes: Vec<usize> = g.sps[..6].iter().map(|s| s.node.index).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 0, 1], "round-robin over 4 be nodes");
    }

    #[test]
    fn in_pset_confines_and_psetrr_spreads() {
        let confined = build(
            "select extract(c) from bag of sp a, bag of sp b, sp c, integer n
             where c=sp(streamof(sum(merge(b))), 'bg')
             and b=spv((select streamof(count(extract(p))) from sp p where p in a), 'bg', inPset(1))
             and a=spv((select gen_array(1000,1) from integer i where i in iota(1,n)), 'be', 1)
             and n=3;",
        )
        .unwrap();
        // b's three receivers all in pset 0 (1-based pset 1).
        let b_nodes: Vec<usize> = confined.sps[3..6].iter().map(|s| s.node.index).collect();
        assert!(b_nodes.iter().all(|&i| i < 8), "{b_nodes:?}");

        let spread = build(
            "select extract(c) from bag of sp a, bag of sp b, sp c, integer n
             where c=sp(streamof(sum(merge(b))), 'bg')
             and b=spv((select streamof(count(extract(p))) from sp p where p in a), 'bg', psetrr())
             and a=spv((select gen_array(1000,1) from integer i where i in iota(1,n)), 'be', 1)
             and n=3;",
        )
        .unwrap();
        let b_nodes: Vec<usize> = spread.sps[3..6].iter().map(|s| s.node.index).collect();
        assert_eq!(b_nodes, vec![0, 8, 16], "one node per pset");
    }

    #[test]
    fn explicit_node_conflict_fails_like_the_paper_says() {
        // Two SPs pinned to the same CNK node: "the query will fail".
        let err = build(
            "select extract(b) from sp a, sp b
             where a=sp(gen_array(1000,1),'bg',3)
             and b=sp(count(extract(a)),'bg',3);",
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::Placement(_)), "{err}");
    }

    #[test]
    fn circular_bindings_are_reported() {
        let err = build(
            "select extract(a) from sp a, sp b
             where a=sp(extract(b),'bg') and b=sp(extract(a),'bg');",
        )
        .unwrap_err();
        assert!(err.to_string().contains("circular"), "{err}");
    }

    #[test]
    fn type_mismatch_against_declaration_is_reported() {
        let err = build(
            "select extract(a) from sp a, integer n
             where a=sp(gen_array(1000,1),'bg') and n=sp(gen_array(1000,1),'bg');",
        )
        .unwrap_err();
        assert!(err.to_string().contains("expected integer"), "{err}");
    }

    #[test]
    fn bare_expression_statement_compiles_as_client_pipeline() {
        let g = build(
            "merge(spv(
                select grep(\"pulsar\", filename(i))
                from integer i
                where i in iota(1,5)));",
        )
        .unwrap();
        assert_eq!(g.sps.len(), 5);
        assert_eq!(g.client.producers().len(), 5);
        for sp in &g.sps {
            assert!(matches!(sp.pipeline.input, InputKind::Grep { .. }));
        }
    }

    #[test]
    fn radix2_function_body_builds_three_sps() {
        let mut env = Environment::lofar();
        let mut catalog = Catalog::new();
        let options = RunOptions::default();
        let Statement::CreateFunction(def) = parse_statement(
            "create function radix2(string s) -> stream
             as select radixcombine(merge({a,b}))
             from sp a, sp b, sp c
             where a=sp(fft(odd (extract(c))))
             and b=sp(fft(even(extract(c))))
             and c=sp(receiver(s));",
        )
        .unwrap() else {
            panic!()
        };
        catalog.define(def).unwrap();
        let stmt = parse_statement("radix2('lofar-antenna-7');").unwrap();
        let g = QueryBuilder::new(&mut env, &catalog, PlacementPolicy::Naive, &options)
            .build(&stmt, &[])
            .unwrap();
        // c (receiver), a (fft∘odd), b (fft∘even).
        assert_eq!(g.sps.len(), 3);
        assert!(matches!(
            g.sps[0].pipeline.input,
            InputKind::Receiver { .. }
        ));
        assert_eq!(
            g.sps[1].pipeline.stages,
            vec![Stage::Map(MapFunc::Odd), Stage::Map(MapFunc::Fft)]
        );
        // The client pipeline pairs a (odd) and b (even).
        assert_eq!(
            g.client.stages,
            vec![Stage::RadixCombine {
                first: g.sps[1].handle,
                second: g.sps[2].handle,
            }]
        );
    }

    #[test]
    fn unknown_cluster_is_reported() {
        let err =
            build("select extract(a) from sp a where a=sp(gen_array(1,1),'xx');").unwrap_err();
        assert!(err.to_string().contains("unknown cluster name"), "{err}");
    }

    #[test]
    fn alloc_functions_are_rejected_in_value_position() {
        let err = build(
            "select extract(a) from sp a, integer n
             where a=sp(gen_array(1,1),'bg') and n=psetrr();",
        )
        .unwrap_err();
        assert!(err.to_string().contains("node allocation"), "{err}");
    }
}
