//! Sessions and the shared prepared-plan cache behind the serving
//! front door.
//!
//! The paper's SCSQ is a long-lived service: "users interact with SCSQ
//! on a Linux front-end cluster" (§2.1), posing stream queries to a
//! client manager that serves many users at once. This module is the
//! engine-side state of that service shape, shared by the interactive
//! shell and the `scsqd` daemon:
//!
//! * [`SessionHub`] — what every client of one server shares: the
//!   [`ClientManager`] (function catalog + the `compilations` counter)
//!   and an **interning cache** of compiled plans keyed by canonical
//!   statement text. Two sessions preparing the same query text get the
//!   *same* [`PreparedQuery`] `Arc`, and the second one costs zero
//!   compilations — `tests/server.rs` pins exactly that.
//! * [`Session`] — one client's view: a private catalog of **named
//!   prepared queries** (`prepare name as …` / `run name` /
//!   `show catalog`) plus the client's runtime options. Dropping a
//!   session releases its names without touching any other session or
//!   the shared cache.
//!
//! Execution stays fully deterministic: every run replays an immutable
//! plan on a fresh simulated environment, so a served query is
//! byte-identical to the same query run one-shot.

use crate::coordinator::{ClientManager, PreparedQuery};
use crate::error::EngineError;
use crate::measure::QueryResult;
use crate::profile::ProfileReport;
use crate::runtime::RunOptions;
use scsq_cluster::HardwareSpec;
use scsq_ql::{parse_program, statement_to_scsql, Statement};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The state every session of one server shares: the client manager
/// (function catalog, compilation counter) and the interned plan cache.
///
/// All methods take `&self`; the hub is designed to sit behind an
/// [`Arc`] with one thread per connected client.
#[derive(Debug, Default)]
pub struct SessionHub {
    manager: Mutex<ClientManager>,
    plans: Mutex<HashMap<String, Arc<PreparedQuery>>>,
    plan_hits: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_open: AtomicU64,
    statements: AtomicU64,
}

impl SessionHub {
    /// A fresh hub with an empty function catalog and plan cache.
    pub fn new() -> SessionHub {
        SessionHub::default()
    }

    /// How many query statements have been parsed, bound, and placed by
    /// this hub — the PR-1 `compilations` counter, shared by every
    /// session. Cache hits and plan reruns leave it untouched.
    pub fn compilations(&self) -> u64 {
        self.manager
            .lock()
            .expect("session hub poisoned")
            .compilations()
    }

    /// Distinct compiled plans currently interned.
    pub fn plan_cache_len(&self) -> usize {
        self.plans.lock().expect("session hub poisoned").len()
    }

    /// How many prepare/query requests were answered from the interned
    /// cache instead of compiling.
    pub fn plan_cache_hits(&self) -> u64 {
        self.plan_hits.load(Ordering::Relaxed)
    }

    /// Sessions opened over the hub's lifetime.
    pub fn sessions_opened(&self) -> u64 {
        self.sessions_opened.load(Ordering::Relaxed)
    }

    /// Sessions currently open (opened minus dropped).
    pub fn sessions_open(&self) -> u64 {
        self.sessions_open.load(Ordering::Relaxed)
    }

    /// Statements executed across all of the hub's sessions.
    pub fn statements(&self) -> u64 {
        self.statements.load(Ordering::Relaxed)
    }

    /// Registers a user-defined query function in the shared catalog.
    ///
    /// # Errors
    ///
    /// Catalog errors on name collisions (functions are hub-global, so
    /// two sessions cannot define the same name twice).
    pub fn define(&self, def: scsq_ql::FunctionDef) -> Result<(), EngineError> {
        self.manager
            .lock()
            .expect("session hub poisoned")
            .define(def)
    }

    /// The user-defined functions currently registered, sorted by name.
    pub fn functions(&self) -> Vec<scsq_ql::FunctionDef> {
        self.manager
            .lock()
            .expect("session hub poisoned")
            .catalog()
            .definitions()
            .into_iter()
            .cloned()
            .collect()
    }

    /// Explains a query's set-up without running it (the shell's
    /// `.explain`).
    ///
    /// # Errors
    ///
    /// Parse, binder, or placement errors.
    pub fn explain(
        &self,
        spec: &HardwareSpec,
        src: &str,
        options: &RunOptions,
    ) -> Result<String, EngineError> {
        self.manager
            .lock()
            .expect("session hub poisoned")
            .explain(spec, src, options)
    }

    /// Returns the interned plan for `stmt`, compiling it at most once
    /// per distinct (compile-relevant options, canonical text) pair.
    /// The `bool` reports whether the plan came from the cache.
    ///
    /// The cache key includes the options that participate in
    /// compilation — the placement policy and the `receiver()` source
    /// shape — so sessions with different *runtime* knobs (MPI buffer
    /// size, buffering mode, executor tiers) still share one plan.
    ///
    /// # Errors
    ///
    /// Parse, binder, or placement errors.
    pub fn intern(
        &self,
        spec: &HardwareSpec,
        options: &RunOptions,
        stmt: &Statement,
    ) -> Result<(Arc<PreparedQuery>, bool), EngineError> {
        let canonical = statement_to_scsql(stmt);
        let key = format!(
            "{:?}|{}|{}|{canonical}",
            options.placement, options.receiver_arrays, options.receiver_samples
        );
        // Compile under the cache lock: concurrent sessions preparing
        // the same text must observe exactly one compilation.
        let mut plans = self.plans.lock().expect("session hub poisoned");
        if let Some(plan) = plans.get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(plan), true));
        }
        let plan = self.manager.lock().expect("session hub poisoned").prepare(
            spec,
            &canonical,
            options,
            &[],
        )?;
        let plan = Arc::new(plan);
        plans.insert(key, Arc::clone(&plan));
        Ok((plan, false))
    }

    /// Opens a session on this hub.
    pub fn session(self: &Arc<Self>, spec: HardwareSpec, options: RunOptions) -> Session {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
        self.sessions_open.fetch_add(1, Ordering::Relaxed);
        Session {
            hub: Arc::clone(self),
            spec,
            options,
            prepared: BTreeMap::new(),
            profile: false,
        }
    }
}

/// A named prepared query in a session's catalog.
#[derive(Debug, Clone)]
pub struct NamedPlan {
    /// Canonical SCSQL text of the prepared query.
    pub text: String,
    /// The (possibly shared) compiled plan.
    pub plan: Arc<PreparedQuery>,
}

/// One row of a `show catalog` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The catalog name.
    pub name: String,
    /// `"prepared"` for session plans, `"function"` for shared
    /// user-defined query functions.
    pub kind: &'static str,
    /// Canonical SCSQL text.
    pub text: String,
}

impl CatalogEntry {
    /// The entry's one-line listing form, shared verbatim by the shell
    /// and the server's `ROW` frames (`kind name: text`).
    pub fn render(&self) -> String {
        format!("{} {}: {}", self.kind, self.name, self.text)
    }
}

/// What one executed statement produced.
#[derive(Debug)]
pub enum SessionReply {
    /// A query ran; optionally with its explain-analyze profile (when
    /// [`Session::set_profile`] is on).
    Result {
        /// The query's result.
        result: QueryResult,
        /// Per-stage profile of the run, when profiling is on.
        profile: Option<Box<ProfileReport>>,
    },
    /// A `prepare name as …` statement registered a plan; `shared` is
    /// true when the compilation was reused from the hub cache.
    Prepared {
        /// The registered name.
        name: String,
        /// Whether another prepare already paid the compilation.
        shared: bool,
    },
    /// A `show catalog` listing: the session's prepared queries, then
    /// the shared functions, each sorted by name.
    Catalog(Vec<CatalogEntry>),
    /// `create function` statements extended the shared catalog.
    Defined,
}

impl SessionReply {
    /// The reply's output rows — result values or catalog entries, one
    /// string per line. The shell prints these; the server sends each
    /// as one `ROW` frame. Both surfaces therefore emit byte-identical
    /// text for the same statement.
    pub fn rows(&self) -> Vec<String> {
        match self {
            SessionReply::Result { result, .. } => {
                result.values().iter().map(|v| v.to_string()).collect()
            }
            SessionReply::Catalog(entries) => entries.iter().map(CatalogEntry::render).collect(),
            _ => Vec::new(),
        }
    }

    /// The statement's one-line completion summary (the shell's
    /// `-- …` line; the server's `OK` payload).
    pub fn summary(&self) -> String {
        match self {
            SessionReply::Result { result, .. } => {
                let n = result.values().len();
                format!(
                    "-- {n} value{} in {}",
                    if n == 1 { "" } else { "s" },
                    result.total_time()
                )
            }
            SessionReply::Prepared { name, .. } => format!("-- prepared {name}"),
            SessionReply::Catalog(entries) => {
                let n = entries.len();
                format!("-- {n} catalog entr{}", if n == 1 { "y" } else { "ies" })
            }
            SessionReply::Defined => "-- function defined".to_string(),
        }
    }
}

/// One client's session: private named-plan catalog plus runtime
/// options, over a shared [`SessionHub`].
#[derive(Debug)]
pub struct Session {
    hub: Arc<SessionHub>,
    spec: HardwareSpec,
    options: RunOptions,
    prepared: BTreeMap<String, NamedPlan>,
    profile: bool,
}

impl Session {
    /// A self-contained session on the paper's LOFAR configuration —
    /// its own private hub, for embedding and for the one-shot shell.
    pub fn lofar() -> Session {
        Arc::new(SessionHub::new()).session(HardwareSpec::lofar(), RunOptions::default())
    }

    /// The hub this session shares.
    pub fn hub(&self) -> &Arc<SessionHub> {
        &self.hub
    }

    /// The hardware specification queries run on.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// The session's execution options.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Mutable access to the session's execution options (takes effect
    /// on the next statement).
    pub fn options_mut(&mut self) -> &mut RunOptions {
        &mut self.options
    }

    /// Turns explain-analyze profiling of this session's queries on or
    /// off; when on, every [`SessionReply::Result`] carries the
    /// per-stage profile (results stay byte-identical).
    pub fn set_profile(&mut self, on: bool) {
        self.profile = on;
    }

    /// The session's named prepared queries, in name order.
    pub fn prepared(&self) -> impl Iterator<Item = (&String, &NamedPlan)> {
        self.prepared.iter()
    }

    /// Explains a query's set-up without running it.
    ///
    /// # Errors
    ///
    /// Parse, binder, or placement errors.
    pub fn explain(&self, src: &str) -> Result<String, EngineError> {
        self.hub.explain(&self.spec, src, &self.options)
    }

    /// Executes an SCSQL program — session statements (`prepare`,
    /// `run`, `show catalog`), `create function` definitions, and
    /// ordinary queries — returning the reply of the **last**
    /// statement.
    ///
    /// Ad-hoc queries go through the hub's interning cache exactly like
    /// prepared ones, so identical query texts across sessions compile
    /// once.
    ///
    /// # Errors
    ///
    /// Parse, binder, placement, catalog, or runtime errors; an error
    /// if `src` contains no statement.
    pub fn execute(&mut self, src: &str) -> Result<SessionReply, EngineError> {
        let statements = parse_program(src)?;
        let mut last = None;
        for stmt in statements {
            last = Some(self.execute_statement(&stmt)?);
        }
        last.ok_or_else(|| EngineError::Runtime("program contained no statement".to_string()))
    }

    /// Executes one parsed statement.
    ///
    /// # Errors
    ///
    /// See [`Session::execute`].
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<SessionReply, EngineError> {
        self.hub.statements.fetch_add(1, Ordering::Relaxed);
        match stmt {
            Statement::CreateFunction(def) => {
                self.hub.define(def.clone())?;
                Ok(SessionReply::Defined)
            }
            Statement::Prepare { name, body } => {
                let (plan, shared) = self.hub.intern(&self.spec, &self.options, body)?;
                self.prepared.insert(
                    name.clone(),
                    NamedPlan {
                        text: statement_to_scsql(body),
                        plan,
                    },
                );
                Ok(SessionReply::Prepared {
                    name: name.clone(),
                    shared,
                })
            }
            Statement::Run(name) => {
                let plan = Arc::clone(
                    &self
                        .prepared
                        .get(name)
                        .ok_or_else(|| {
                            EngineError::Runtime(format!(
                                "unknown prepared query `{name}` (try `show catalog`)"
                            ))
                        })?
                        .plan,
                );
                self.run_plan(&plan)
            }
            Statement::ShowCatalog => {
                let mut entries: Vec<CatalogEntry> = self
                    .prepared
                    .iter()
                    .map(|(name, np)| CatalogEntry {
                        name: name.clone(),
                        kind: "prepared",
                        text: np.text.clone(),
                    })
                    .collect();
                entries.extend(self.hub.functions().into_iter().map(|def| CatalogEntry {
                    name: def.name.clone(),
                    kind: "function",
                    text: statement_to_scsql(&Statement::CreateFunction(def)),
                }));
                Ok(SessionReply::Catalog(entries))
            }
            query => {
                let (plan, _) = self.hub.intern(&self.spec, &self.options, query)?;
                self.run_plan(&plan)
            }
        }
    }

    fn run_plan(&self, plan: &PreparedQuery) -> Result<SessionReply, EngineError> {
        if self.profile {
            let (result, profile) = plan.explain_analyze(&self.spec, &self.options)?;
            Ok(SessionReply::Result {
                result,
                profile: Some(Box::new(profile)),
            })
        } else {
            Ok(SessionReply::Result {
                result: plan.run(&self.spec, &self.options)?,
                profile: None,
            })
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.hub.sessions_open.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scsq_ql::Value;

    const Q: &str = "select extract(b) from sp a, sp b
                     where b=sp(streamof(count(extract(a))), 'bg', 0)
                     and a=sp(gen_array(10000,4),'bg',1);";

    fn hub() -> Arc<SessionHub> {
        Arc::new(SessionHub::new())
    }

    fn session(hub: &Arc<SessionHub>) -> Session {
        hub.session(HardwareSpec::lofar(), RunOptions::default())
    }

    fn values(reply: &SessionReply) -> &[Value] {
        match reply {
            SessionReply::Result { result, .. } => result.values(),
            other => panic!("expected a result, got {other:?}"),
        }
    }

    #[test]
    fn prepare_run_and_show_catalog() {
        let hub = hub();
        let mut s = session(&hub);
        let reply = s.execute(&format!("prepare q as {Q}")).unwrap();
        assert!(matches!(
            reply,
            SessionReply::Prepared { ref name, shared: false } if name == "q"
        ));
        let reply = s.execute("run q;").unwrap();
        assert_eq!(values(&reply), &[Value::Integer(4)]);
        let SessionReply::Catalog(entries) = s.execute("show catalog;").unwrap() else {
            panic!("expected catalog");
        };
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "q");
        assert_eq!(entries[0].kind, "prepared");
        assert!(entries[0].text.starts_with("select extract(b)"));
    }

    #[test]
    fn two_sessions_share_one_compilation() {
        let hub = hub();
        let mut a = session(&hub);
        let mut b = session(&hub);
        a.execute(&format!("prepare q as {Q}")).unwrap();
        assert_eq!(hub.compilations(), 1);
        let reply = b.execute(&format!("prepare mine as {Q}")).unwrap();
        assert!(matches!(reply, SessionReply::Prepared { shared: true, .. }));
        assert_eq!(hub.compilations(), 1, "second prepare reuses the plan");
        assert_eq!(hub.plan_cache_hits(), 1);
        assert_eq!(hub.plan_cache_len(), 1);
        // Both sessions run the shared plan and agree byte for byte.
        let ra = a.execute("run q;").unwrap();
        let rb = b.execute("run mine;").unwrap();
        assert_eq!(values(&ra), values(&rb));
        assert_eq!(hub.compilations(), 1, "runs never recompile");
    }

    #[test]
    fn whitespace_variants_intern_to_one_plan() {
        let hub = hub();
        let mut s = session(&hub);
        s.execute("prepare a as select extract(b) from sp a, sp b where b=sp(streamof(count(extract(a))), 'bg', 0) and a=sp(gen_array(10000,4),'bg',1);")
            .unwrap();
        // Same query, different whitespace: canonicalization dedupes.
        s.execute(&format!("prepare b as {Q}")).unwrap();
        assert_eq!(hub.compilations(), 1);
        assert_eq!(hub.plan_cache_hits(), 1);
    }

    #[test]
    fn adhoc_queries_intern_too() {
        let hub = hub();
        let mut s = session(&hub);
        let r1 = s.execute(Q).unwrap();
        let r2 = s.execute(Q).unwrap();
        assert_eq!(values(&r1), values(&r2));
        assert_eq!(hub.compilations(), 1, "identical ad-hoc texts compile once");
        assert_eq!(hub.plan_cache_hits(), 1);
    }

    #[test]
    fn dropping_a_session_releases_only_its_catalog() {
        let hub = hub();
        let mut a = session(&hub);
        let mut b = session(&hub);
        assert_eq!(hub.sessions_open(), 2);
        a.execute(&format!("prepare q as {Q}")).unwrap();
        b.execute(&format!("prepare q as {Q}")).unwrap();
        drop(a);
        assert_eq!(hub.sessions_open(), 1);
        assert_eq!(hub.sessions_opened(), 2);
        // B's name survives; the shared plan is untouched.
        let reply = b.execute("run q;").unwrap();
        assert_eq!(values(&reply), &[Value::Integer(4)]);
        assert_eq!(hub.plan_cache_len(), 1);
    }

    #[test]
    fn run_of_unknown_name_errors() {
        let hub = hub();
        let mut s = session(&hub);
        let err = s.execute("run nope;").unwrap_err();
        assert!(err.to_string().contains("unknown prepared query"), "{err}");
        // Another session's names are invisible.
        let mut a = session(&hub);
        a.execute(&format!("prepare mine as {Q}")).unwrap();
        let err = s.execute("run mine;").unwrap_err();
        assert!(err.to_string().contains("unknown prepared query"), "{err}");
    }

    #[test]
    fn functions_are_shared_and_listed() {
        let hub = hub();
        let mut a = session(&hub);
        let mut b = session(&hub);
        a.execute("create function g(integer k) -> stream as gen_array(10000, k);")
            .unwrap();
        // Visible from the other session, and in its catalog listing.
        let reply = b
            .execute(
                "select extract(b) from sp a, sp b
                 where b=sp(streamof(count(extract(a))), 'bg', 0)
                 and a=sp(g(6),'bg',1);",
            )
            .unwrap();
        assert_eq!(values(&reply), &[Value::Integer(6)]);
        let SessionReply::Catalog(entries) = b.execute("show catalog;").unwrap() else {
            panic!("expected catalog");
        };
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, "function");
        assert!(entries[0].text.starts_with("create function g("));
        // Collisions error (functions are hub-global).
        let err = b
            .execute("create function g(integer k) -> stream as gen_array(1, k);")
            .unwrap_err();
        assert!(err.to_string().contains("already defined"), "{err}");
    }

    #[test]
    fn profiled_sessions_return_identical_results() {
        let hub = hub();
        let mut s = session(&hub);
        let plain = s.execute(Q).unwrap();
        s.set_profile(true);
        let profiled = s.execute(Q).unwrap();
        assert_eq!(values(&plain), values(&profiled));
        let SessionReply::Result { profile, .. } = profiled else {
            panic!()
        };
        assert!(profile.is_some(), "profiling attaches the report");
    }

    #[test]
    fn served_equals_one_shot() {
        // The serving front door's core promise: a query answered
        // through a session is byte-identical to the same query run
        // one-shot through `ClientManager::execute`.
        let hub = hub();
        let mut s = session(&hub);
        let served = s.execute(Q).unwrap();
        let mut manager = ClientManager::new();
        let one_shot = manager
            .execute(&HardwareSpec::lofar(), Q, &RunOptions::default())
            .unwrap();
        assert_eq!(values(&served), one_shot.values());
        let SessionReply::Result { result, .. } = served else {
            panic!()
        };
        assert_eq!(result.finished(), one_shot.finished());
        assert_eq!(result.total_time(), one_shot.total_time());
    }
}
