//! Engine self-measurement: structured snapshots of a query's own
//! execution statistics.
//!
//! The paper's central idea is that the measurement infrastructure *is*
//! the query system — SCSQ measures its communication performance by
//! running stream queries over its own traffic (§1: "the system is used
//! for measuring its own communication performance"). This module is the
//! engine-side half of that idea: [`MetricsSnapshot`] turns the
//! counters every run already collects
//! ([`QueryStats`](crate::measure::QueryStats)) into a stable,
//! serialisable record that the benchmark harnesses write next to their
//! figure data (`--metrics out.json`), and that
//! [`scsq_core::metrics`](../../scsq_core/metrics/index.html)
//! aggregates across runs.
//!
//! The query-language-side half is the `metrics()` source operator (see
//! [`crate::ops::InputKind::Metrics`]), which exposes the same
//! measurements *as a stream* queryable from SCSQL while the query runs.
//!
//! No external serialisation crate is used anywhere in this workspace;
//! [`MetricsSnapshot::to_json`] renders by hand like the figure bins do.

use crate::measure::QueryResult;
use std::fmt::Write;

/// Per-channel metrics extracted from one query execution.
///
/// One record per stream channel, in channel-creation order — the same
/// order as [`crate::measure::QueryStats::channels`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelMetrics {
    /// Producing node, rendered (`"bg:1"`).
    pub src: String,
    /// Subscribing node, rendered (`"bg:0"`).
    pub dst: String,
    /// `"mpi"`, `"tcp"` or `"udp"`.
    pub carrier: String,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Payload bytes enqueued by the producer (≥ `bytes`).
    pub bytes_enqueued: u64,
    /// Send buffers transmitted.
    pub buffers_sent: u64,
    /// Buffers dropped in flight (UDP only).
    pub buffers_dropped: u64,
    /// Elements lost to dropped buffers.
    pub elements_lost: u64,
    /// Send-queue high-water mark, in trains.
    pub queue_peak_trains: u64,
    /// Mean delivered bandwidth in bytes/s over the channel's active
    /// window (first send to last delivery); `0.0` for idle channels.
    pub bandwidth: f64,
    /// Elements with a closed ingress→delivery latency measurement
    /// (0 unless the run tracked latency: a `latency(p)` observer
    /// watched the channel or `RunOptions::observe_latency` was set).
    pub lat_count: u64,
    /// Median ingress→delivery latency in simulated nanoseconds
    /// (log-bucket upper bound; 0 when untracked).
    pub lat_p50_ns: u64,
    /// 95th-percentile latency in simulated nanoseconds.
    pub lat_p95_ns: u64,
    /// 99th-percentile latency in simulated nanoseconds.
    pub lat_p99_ns: u64,
    /// Maximum observed latency in simulated nanoseconds (exact, not
    /// bucketed).
    pub lat_max_ns: u64,
}

/// A structured, serialisable summary of one query execution.
///
/// Everything here is derived from the [`QueryResult`] — taking a
/// snapshot costs a few allocations and never perturbs a measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Query completion time in seconds.
    pub total_time_s: f64,
    /// Result values delivered to the client.
    pub values: u64,
    /// Simulator events executed.
    pub events: u64,
    /// Peak pending-event population of the event kernel.
    pub events_pending_hwm: u64,
    /// Running processes (including the client's).
    pub rps: usize,
    /// Whether stage chains ran fused.
    pub fused: bool,
    /// Coalescer digests recognised.
    pub coalesce_digests: u64,
    /// Coalescer jumps taken.
    pub coalesce_jumps: u64,
    /// Events skipped analytically by the coalescer.
    pub coalesce_events_skipped: u64,
    /// Per-channel metrics.
    pub channels: Vec<ChannelMetrics>,
}

impl MetricsSnapshot {
    /// Extracts a snapshot from a finished query.
    pub fn from_result(r: &QueryResult) -> MetricsSnapshot {
        let stats = r.stats();
        let channels = stats
            .channels
            .iter()
            .map(|c| {
                let active = c
                    .first_send
                    .map(|t0| c.last_delivery.since(t0).as_secs_f64())
                    .unwrap_or(0.0);
                ChannelMetrics {
                    src: c.src.to_string(),
                    dst: c.dst.to_string(),
                    carrier: c.carrier.clone(),
                    bytes: c.bytes,
                    bytes_enqueued: c.bytes_enqueued,
                    buffers_sent: c.buffers_sent,
                    buffers_dropped: c.buffers_dropped,
                    elements_lost: c.elements_lost,
                    queue_peak_trains: c.queue_peak_trains,
                    bandwidth: if active > 0.0 {
                        c.bytes as f64 / active
                    } else {
                        0.0
                    },
                    lat_count: c.latency.count(),
                    lat_p50_ns: c.latency.quantile(0.50),
                    lat_p95_ns: c.latency.quantile(0.95),
                    lat_p99_ns: c.latency.quantile(0.99),
                    lat_max_ns: c.latency.max(),
                }
            })
            .collect();
        MetricsSnapshot {
            total_time_s: r.total_time().as_secs_f64(),
            values: r.values().len() as u64,
            events: stats.events,
            events_pending_hwm: stats.events_pending_hwm,
            rps: stats.rps,
            fused: stats.fused,
            coalesce_digests: stats.coalesce.digests,
            coalesce_jumps: stats.coalesce.jumps,
            coalesce_events_skipped: stats.coalesce.events_skipped,
            channels,
        }
    }

    /// Total payload bytes delivered across all channels.
    pub fn total_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.bytes).sum()
    }

    /// Renders the snapshot as a JSON object (hand-formatted; the
    /// workspace deliberately has no serialisation dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"total_time_s\": {},", self.total_time_s);
        let _ = writeln!(out, "  \"values\": {},", self.values);
        let _ = writeln!(out, "  \"events\": {},", self.events);
        let _ = writeln!(
            out,
            "  \"events_pending_hwm\": {},",
            self.events_pending_hwm
        );
        let _ = writeln!(out, "  \"rps\": {},", self.rps);
        let _ = writeln!(out, "  \"fused\": {},", self.fused);
        let _ = writeln!(out, "  \"coalesce_digests\": {},", self.coalesce_digests);
        let _ = writeln!(out, "  \"coalesce_jumps\": {},", self.coalesce_jumps);
        let _ = writeln!(
            out,
            "  \"coalesce_events_skipped\": {},",
            self.coalesce_events_skipped
        );
        let _ = writeln!(out, "  \"total_bytes\": {},", self.total_bytes());
        let _ = writeln!(out, "  \"channels\": [");
        for (i, c) in self.channels.iter().enumerate() {
            let comma = if i + 1 < self.channels.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"src\": \"{}\", \"dst\": \"{}\", \"carrier\": \"{}\", \
                 \"bytes\": {}, \"bytes_enqueued\": {}, \"buffers_sent\": {}, \
                 \"buffers_dropped\": {}, \"elements_lost\": {}, \
                 \"queue_peak_trains\": {}, \"bandwidth\": {}, \
                 \"lat_count\": {}, \"lat_p50_ns\": {}, \"lat_p95_ns\": {}, \
                 \"lat_p99_ns\": {}, \"lat_max_ns\": {}}}{comma}",
                c.src,
                c.dst,
                c.carrier,
                c.bytes,
                c.bytes_enqueued,
                c.buffers_sent,
                c.buffers_dropped,
                c.elements_lost,
                c.queue_peak_trains,
                c.bandwidth,
                c.lat_count,
                c.lat_p50_ns,
                c.lat_p95_ns,
                c.lat_p99_ns,
                c.lat_max_ns,
            );
        }
        let _ = writeln!(out, "  ]");
        out.push('}');
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::placement::PlacementPolicy;
    use crate::runtime::{run_graph, RunOptions};
    use scsq_cluster::Environment;
    use scsq_ql::{parse_statement, Catalog};

    fn run(src: &str) -> QueryResult {
        let mut env = Environment::lofar();
        let catalog = Catalog::new();
        let options = RunOptions::default();
        let stmt = parse_statement(src).expect("parses");
        let graph = QueryBuilder::new(&mut env, &catalog, PlacementPolicy::Naive, &options)
            .build(&stmt, &[])
            .expect("builds");
        run_graph(env, &graph, &options).expect("runs")
    }

    #[test]
    fn snapshot_mirrors_the_query_stats() {
        let r = run("select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(100000,10),'bg',1);");
        let snap = MetricsSnapshot::from_result(&r);
        assert_eq!(snap.values, 1);
        assert_eq!(snap.events, r.stats().events);
        assert_eq!(snap.events_pending_hwm, r.stats().events_pending_hwm);
        assert_eq!(snap.channels.len(), r.stats().channels.len());
        let mpi = snap.channels.iter().find(|c| c.carrier == "mpi").unwrap();
        assert_eq!(mpi.bytes, 10 * 100_009);
        assert!(mpi.bandwidth > 0.0);
    }

    #[test]
    fn json_is_structurally_sound() {
        let r = run("select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(1000,2),'bg',1);");
        let json = MetricsSnapshot::from_result(&r).to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("]\n}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"events_pending_hwm\""));
        assert!(json.contains("\"carrier\": \"mpi\""));
    }
}
