//! Sliding-window aggregation.
//!
//! §4 notes that "SCSQ features all common stream operators including
//! window aggregation"; the evaluation queries do not use it, but the
//! operator is part of the system. `winagg(s, size, slide, 'fn')`
//! computes `fn` over each window of `size` elements, advancing by
//! `slide`.

use crate::error::EngineError;
use crate::ops::AggKind;
use scsq_ql::Value;
use std::collections::VecDeque;

/// Static description of a window aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window length in elements.
    pub size: usize,
    /// Slide in elements (tumbling when `slide == size`).
    pub slide: usize,
    /// Aggregate applied to each window.
    pub agg: AggKind,
}

impl WindowSpec {
    /// Creates a spec, validating the parameters.
    ///
    /// # Errors
    ///
    /// [`EngineError::Bind`] if size or slide is zero.
    pub fn new(size: usize, slide: usize, agg: AggKind) -> Result<WindowSpec, EngineError> {
        if size == 0 || slide == 0 {
            return Err(EngineError::bind(format!(
                "window size and slide must be positive (got size={size}, slide={slide})"
            )));
        }
        Ok(WindowSpec { size, slide, agg })
    }
}

/// Runtime state of a window aggregate.
#[derive(Debug)]
pub struct WindowState {
    spec: WindowSpec,
    buffer: VecDeque<Value>,
    /// Elements consumed since the last emitted window.
    since_emit: usize,
    emitted_any: bool,
}

impl WindowState {
    /// Fresh state for a spec.
    pub fn new(spec: WindowSpec) -> WindowState {
        WindowState {
            spec,
            buffer: VecDeque::new(),
            since_emit: 0,
            emitted_any: false,
        }
    }

    /// Feeds one element; returns any completed window aggregates.
    ///
    /// # Errors
    ///
    /// Type error when summing non-numeric elements.
    pub fn push(&mut self, value: Value) -> Result<Vec<Value>, EngineError> {
        self.buffer.push_back(value);
        if self.buffer.len() > self.spec.size {
            self.buffer.pop_front();
        }
        self.since_emit += 1;
        let due = if self.emitted_any {
            self.since_emit >= self.spec.slide
        } else {
            self.buffer.len() >= self.spec.size
        };
        if due {
            self.since_emit = 0;
            self.emitted_any = true;
            Ok(vec![self.aggregate()?])
        } else {
            Ok(Vec::new())
        }
    }

    /// End of stream: emits a final partial window over the elements
    /// that arrived since the last emission, if any.
    pub fn finish(&mut self) -> Vec<Value> {
        let tail = self.since_emit.min(self.buffer.len());
        if tail == 0 {
            return Vec::new();
        }
        self.since_emit = 0;
        let skip = self.buffer.len() - tail;
        let partial: Vec<Value> = self.buffer.iter().skip(skip).cloned().collect();
        self.buffer = partial.into();
        vec![self.aggregate().unwrap_or(Value::Integer(0))]
    }

    /// Walks the window's mutable state through a coalescing probe.
    pub(crate) fn probe(
        &mut self,
        p: &mut scsq_sim::StateProbe<'_>,
        probe_value: &mut dyn FnMut(&Value, &mut scsq_sim::StateProbe<'_>),
    ) {
        p.shape(self.buffer.len() as u64);
        for v in &self.buffer {
            probe_value(v, p);
        }
        p.num_usize(&mut self.since_emit);
        p.shape(self.emitted_any as u64);
    }

    fn aggregate(&self) -> Result<Value, EngineError> {
        if self.spec.agg == AggKind::Count {
            return Ok(Value::Integer(self.buffer.len() as i64));
        }
        let mut acc = 0.0;
        let mut all_int = true;
        let mut int_acc = 0i64;
        let mut best: Option<&Value> = None;
        for v in &self.buffer {
            let x = match v {
                Value::Integer(i) => {
                    int_acc += i;
                    *i as f64
                }
                Value::Real(r) => {
                    all_int = false;
                    *r
                }
                other => return Err(EngineError::type_error("number", other, "winagg")),
            };
            acc += if matches!(v, Value::Real(_)) { x } else { 0.0 };
            let replace = match (self.spec.agg, best.and_then(Value::as_real)) {
                (AggKind::Max, Some(b)) => x > b,
                (AggKind::Min, Some(b)) => x < b,
                (_, None) => true,
                _ => false,
            };
            if replace {
                best = Some(v);
            }
        }
        let total = acc + int_acc as f64;
        Ok(match self.spec.agg {
            AggKind::Count => unreachable!("handled above"),
            AggKind::Sum => {
                if all_int {
                    Value::Integer(int_acc)
                } else {
                    Value::Real(total)
                }
            }
            AggKind::Avg => Value::Real(total / self.buffer.len() as f64),
            AggKind::Max | AggKind::Min => best.expect("non-empty window").clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(state: &mut WindowState, values: &[i64]) -> Vec<Value> {
        let mut out = Vec::new();
        for &v in values {
            out.extend(state.push(Value::Integer(v)).unwrap());
        }
        out
    }

    #[test]
    fn tumbling_count_window() {
        let mut w = WindowState::new(WindowSpec::new(3, 3, AggKind::Count).unwrap());
        let out = ints(&mut w, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(out, vec![Value::Integer(3), Value::Integer(3)]);
    }

    #[test]
    fn sliding_sum_window() {
        let mut w = WindowState::new(WindowSpec::new(3, 1, AggKind::Sum).unwrap());
        let out = ints(&mut w, &[1, 2, 3, 4]);
        // Windows: [1,2,3]=6, [2,3,4]=9.
        assert_eq!(out, vec![Value::Integer(6), Value::Integer(9)]);
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut w = WindowState::new(WindowSpec::new(4, 4, AggKind::Sum).unwrap());
        assert!(ints(&mut w, &[5, 7]).is_empty());
        assert_eq!(w.finish(), vec![Value::Integer(12)]);
        // Second finish is a no-op.
        assert!(w.finish().is_empty());
    }

    #[test]
    fn finish_covers_only_unemitted_elements() {
        // Tumbling size 4 over 10 elements: two full windows emit, then
        // the flush covers only [9, 10], not the window buffer's stale
        // tail.
        let mut w = WindowState::new(WindowSpec::new(4, 4, AggKind::Sum).unwrap());
        let emitted = ints(&mut w, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(emitted, vec![Value::Integer(10), Value::Integer(26)]);
        assert_eq!(w.finish(), vec![Value::Integer(19)]);
    }

    #[test]
    fn real_values_widen_the_sum() {
        let mut w = WindowState::new(WindowSpec::new(2, 2, AggKind::Sum).unwrap());
        w.push(Value::Integer(1)).unwrap();
        let out = w.push(Value::Real(0.25)).unwrap();
        assert_eq!(out, vec![Value::Real(1.25)]);
    }

    #[test]
    fn zero_size_is_rejected() {
        assert!(WindowSpec::new(0, 1, AggKind::Count).is_err());
        assert!(WindowSpec::new(1, 0, AggKind::Count).is_err());
    }

    #[test]
    fn sum_window_rejects_strings() {
        let mut w = WindowState::new(WindowSpec::new(1, 1, AggKind::Sum).unwrap());
        assert!(w.push(Value::from("x")).is_err());
    }
}
