//! Query-level explain-analyze: per-stage execution profiles.
//!
//! `explain` (see [`crate::explain`]) describes what a plan *would* do;
//! the profiler reports what a run *did*: for every stage of every RP,
//! how many times it was invoked, how many elements flowed in and out,
//! and — per RP — the simulated CPU busy time and the real (wall-clock)
//! time spent inside the stage chain. Counts are maintained by the
//! executors themselves ([`StageTally`] slots inside the stage chain),
//! so they are exact for all three tiers: the interpreted recursion
//! counts per element, the fused jump table per scratch pass, and the
//! columnar folds per admitted batch (with semantic element counts —
//! a filter's output is its selection length, a `take`'s the rows it
//! kept).
//!
//! Cost discipline: tallies are allocated only when
//! [`RunOptions::profile`](crate::runtime::RunOptions) is set; with
//! profiling off the executors consult an empty slice and the
//! per-element overhead is one bounds check. Wall time is sampled with
//! [`std::time::Instant`] only when profiling — it is observational
//! (never probed by the coalescer, never feeds simulated time), so a
//! profiled run still produces byte-identical query results.

use scsq_cluster::NodeId;
use scsq_sim::SimDur;
use std::fmt::Write;

/// Per-stage invocation and element counters, updated by whichever
/// executor tier drives the stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTally {
    /// Executor invocations: one per element on the per-element tiers,
    /// one per admitted batch on the columnar tier.
    pub calls: u64,
    /// Elements that entered the stage.
    pub elems_in: u64,
    /// Elements the stage emitted downstream.
    pub elems_out: u64,
}

/// One stage's row of the explain-analyze table.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// The stage, rendered like `explain` renders it (`"filter(> 150)"`).
    pub stage: String,
    /// Executor invocations (elements or batches; see [`StageTally`]).
    pub calls: u64,
    /// Elements in.
    pub elems_in: u64,
    /// Elements out.
    pub elems_out: u64,
}

/// One RP's section of the explain-analyze report.
#[derive(Debug, Clone, PartialEq)]
pub struct RpProfile {
    /// RP index in creation order (the client last).
    pub rp: usize,
    /// Where the RP ran.
    pub node: NodeId,
    /// Whether this is the client manager's RP.
    pub is_client: bool,
    /// The RP's input, rendered like `explain` renders it.
    pub input: String,
    /// Elements that entered the RP's SQEP.
    pub elements_in: u64,
    /// Elements the SQEP emitted.
    pub elements_out: u64,
    /// Simulated CPU busy time on the RP's node (shared by co-located
    /// RPs on Linux nodes).
    pub sim_busy: SimDur,
    /// Real time spent inside the RP's stage chain (scoped spans around
    /// chain execution; excludes channel and simulator bookkeeping).
    pub wall_ns: u64,
    /// Per-stage rows, in chain order.
    pub stages: Vec<StageProfile>,
}

/// The full explain-analyze report for one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Per-RP sections, in RP creation order.
    pub rps: Vec<RpProfile>,
}

impl ProfileReport {
    /// Total wall time across all RPs' chains (the denominator of the
    /// per-RP wall share).
    pub fn total_wall_ns(&self) -> u64 {
        self.rps.iter().map(|r| r.wall_ns).sum()
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let total_wall = self.total_wall_ns().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>12} {:>12} {:>14} {:>8}",
            "stage", "calls", "elems_in", "elems_out", "sim_busy", "wall%"
        );
        for rp in &self.rps {
            let who = if rp.is_client {
                format!("rp#{} client @ {}", rp.rp, rp.node)
            } else {
                format!("rp#{} @ {}", rp.rp, rp.node)
            };
            let _ = writeln!(
                out,
                "{who}: {} | in {} out {}",
                rp.input, rp.elements_in, rp.elements_out
            );
            let _ = writeln!(
                out,
                "{:<26} {:>12} {:>12} {:>12} {:>14.6} {:>7.2}%",
                "  (chain)",
                "",
                "",
                "",
                rp.sim_busy.as_secs_f64(),
                rp.wall_ns as f64 * 100.0 / total_wall as f64,
            );
            for s in &rp.stages {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>12} {:>12} {:>12}",
                    s.stage, s.calls, s.elems_in, s.elems_out
                );
            }
        }
        out
    }

    /// Renders the report as a JSON array (hand-formatted, like every
    /// other serialisation in the workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("[\n");
        for (i, rp) in self.rps.iter().enumerate() {
            let comma = if i + 1 < self.rps.len() { "," } else { "" };
            let _ = write!(
                out,
                "  {{\"rp\": {}, \"node\": \"{}\", \"is_client\": {}, \
                 \"input\": \"{}\", \"elements_in\": {}, \"elements_out\": {}, \
                 \"sim_busy_s\": {}, \"wall_ns\": {}, \"stages\": [",
                rp.rp,
                rp.node,
                rp.is_client,
                rp.input.replace('"', "\\\""),
                rp.elements_in,
                rp.elements_out,
                rp.sim_busy.as_secs_f64(),
                rp.wall_ns,
            );
            for (j, s) in rp.stages.iter().enumerate() {
                let sc = if j + 1 < rp.stages.len() { "," } else { "" };
                let _ = write!(
                    out,
                    "{{\"stage\": \"{}\", \"calls\": {}, \"elems_in\": {}, \"elems_out\": {}}}{sc}",
                    s.stage.replace('"', "\\\""),
                    s.calls,
                    s.elems_in,
                    s.elems_out
                );
            }
            let _ = writeln!(out, "]}}{comma}");
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileReport {
        ProfileReport {
            rps: vec![RpProfile {
                rp: 0,
                node: NodeId::bg(1),
                is_client: false,
                input: "gen_array(1000 B x 10)".to_string(),
                elements_in: 10,
                elements_out: 1,
                sim_busy: SimDur::from_millis(2),
                wall_ns: 5_000,
                stages: vec![StageProfile {
                    stage: "count".to_string(),
                    calls: 10,
                    elems_in: 10,
                    elems_out: 0,
                }],
            }],
        }
    }

    #[test]
    fn render_shows_every_stage_row() {
        let r = sample();
        let text = r.render();
        assert!(text.contains("rp#0 @ bg:1"), "{text}");
        assert!(text.contains("count"), "{text}");
        assert!(text.contains("gen_array"), "{text}");
        assert_eq!(r.total_wall_ns(), 5_000);
    }

    #[test]
    fn json_is_balanced() {
        let json = sample().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"elements_in\": 10"));
    }
}
