#![deny(missing_docs)]
//! # scsq-engine — the SCSQ query engine and distributed runtime
//!
//! This crate turns parsed SCSQL (from `scsq-ql`) into running stream
//! computations on the simulated LOFAR hardware (from `scsq-cluster`),
//! reproducing the architecture of §2.2–2.3 of the paper:
//!
//! * [`builder`] — the **client manager**'s query set-up: solves the
//!   `where`-clause equations, creates stream processes (`sp` / `spv`),
//!   evaluates allocation sequences against the CNDB, and registers each
//!   sub-query with the owning **cluster coordinator** for placement.
//! * [`ops`] — the stream query execution plan (**SQEP**) operators: a
//!   sub-query compiles to a source (gen_array / receive / receiver /
//!   grep), a stage chain (map, fft, window aggregate, radix combine) and
//!   a terminal aggregate (count / sum) or passthrough.
//! * [`runtime`] — the discrete-event execution of all **running
//!   processes (RPs)**: generators pace element production on their
//!   node's CPU, stream channels move buffers over MPI or TCP, receivers
//!   de-marshal and process, aggregates emit on end-of-stream, and the
//!   client sink collects the result values and the completion time.
//! * [`coordinator`] — cluster coordinators; the BlueGene coordinator
//!   *polls* the front-end for new sub-queries because CNK has no server
//!   capability (§2.2), which delays BlueGene RP start-up to the next
//!   poll tick.
//! * [`placement`] — node-selection policies: the paper's naïve
//!   next-available algorithm and a topology-aware policy encoding the
//!   five observations of §3.2 (the paper's proposed future work), used
//!   by the ablation benchmark.
//! * [`measure`] — query results plus the bandwidth bookkeeping used to
//!   regenerate the paper's figures.
//! * [`introspect`] — structured snapshots of a run's own statistics
//!   ([`MetricsSnapshot`]); with the `metrics()` SCSQL source it forms
//!   the paper's self-measurement story: the system measures its own
//!   communication performance.

pub mod builder;
pub mod columnar;
pub mod coordinator;
pub mod error;
pub mod explain;
pub mod funcs;
pub mod fused;
pub mod introspect;
pub mod measure;
pub mod ops;
pub mod placement;
pub mod profile;
pub mod runtime;
pub mod session;
mod train;
pub mod window;

pub use builder::{QueryBuilder, QueryGraph, SpSpec};
pub use coordinator::{ClientManager, Coordinator, PreparedQuery};
pub use error::EngineError;
pub use explain::{describe_pipeline, explain_graph};
pub use fused::{
    admission_verdicts, ColumnarAdmit, CostModel, FusedChain, FusedProgram, RelayAdmit,
};
pub use introspect::{ChannelMetrics, MetricsSnapshot};
pub use measure::{ChannelReport, QueryResult, QueryStats, RpReport};
pub use ops::{AggKind, ArithOp, CmpOp, InputKind, MapFunc, Pipeline, Stage};
pub use placement::PlacementPolicy;
pub use profile::{ProfileReport, RpProfile, StageProfile, StageTally};
pub use runtime::{run_graph, RunOptions};
pub use session::{CatalogEntry, NamedPlan, Session, SessionHub, SessionReply};
