//! Cluster coordinators and the client manager.
//!
//! §2.2: "When the client manager identifies an SP, the sub-query of that
//! SP is registered with the coordinator of the cluster where the
//! sub-query is to be executed (feCC, bgCC, or beCC). Then, the
//! coordinator starts an RP to execute the sub-query." The BlueGene is
//! special: "since the BlueGene lacks server functionality, sub-queries
//! ... are registered with the feCC. The bgCC retrieves new sub-queries
//! from the feCC by polling" — so BlueGene RPs only come alive at the
//! next poll tick.

use crate::builder::QueryGraph;
use crate::error::EngineError;
use crate::measure::QueryResult;
use crate::runtime::{run_graph, RunOptions};
use scsq_cluster::{AllocSeq, ClusterName, CndbError, Environment, HardwareSpec, NodeId};
use scsq_ql::{parse_program, Catalog, Statement, Value};
use scsq_sim::{SimDur, SimTime};
use std::sync::Arc;

/// A cluster coordinator: owns node selection for its cluster and the
/// RP start-up discipline.
#[derive(Debug, Clone)]
pub struct Coordinator {
    cluster: ClusterName,
    /// Polling interval with which this coordinator retrieves new
    /// sub-queries (zero = push, i.e. direct registration).
    poll: SimDur,
    registrations: u64,
}

impl Coordinator {
    /// The coordinator for a cluster, with the paper's start-up
    /// discipline: the bgCC polls (we use a 1 ms tick), feCC and beCC are
    /// reached directly.
    pub fn for_cluster(cluster: ClusterName) -> Coordinator {
        let poll = match cluster {
            ClusterName::BlueGene => SimDur::from_millis(1),
            _ => SimDur::ZERO,
        };
        Coordinator {
            cluster,
            poll,
            registrations: 0,
        }
    }

    /// The cluster this coordinator manages.
    pub fn cluster(&self) -> ClusterName {
        self.cluster
    }

    /// Number of sub-queries registered so far.
    pub fn registrations(&self) -> u64 {
        self.registrations
    }

    /// Registers a sub-query and selects a node for its RP via the
    /// cluster's CNDB.
    ///
    /// # Errors
    ///
    /// Propagates [`CndbError`] when the allocation sequence has no
    /// available node.
    pub fn register(&mut self, env: &mut Environment, seq: &AllocSeq) -> Result<NodeId, CndbError> {
        self.registrations += 1;
        env.place(self.cluster, seq)
    }

    /// When an RP registered at `registered_at` actually starts running:
    /// immediately for push coordinators, at the next poll tick for the
    /// polling bgCC.
    pub fn rp_start_time(&self, registered_at: SimTime) -> SimTime {
        if self.poll == SimDur::ZERO {
            return registered_at;
        }
        let tick = self.poll.as_nanos();
        let at = registered_at.as_nanos();
        let next = at.div_ceil(tick).max(1) * tick;
        SimTime::from_nanos(next)
    }
}

/// A compiled, placed query plan, decoupled from any particular run.
///
/// Produced by [`ClientManager::prepare`]. The plan is immutable and
/// cheaply cloneable (the graph lives behind an [`Arc`]), and it is
/// `Send + Sync`, so one prepared plan can be executed concurrently from
/// many worker threads. Each [`PreparedQuery::run`] instantiates fresh
/// per-run state (a new simulated environment, stage chains, channel
/// buffers), so repeated runs are bit-identical to compiling from
/// scratch: the builder only touches the environment to *allocate*
/// nodes, and the allocations are recorded in the graph itself.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    graph: Arc<QueryGraph>,
}

impl PreparedQuery {
    /// Executes the plan on a fresh instance of `spec`'s hardware.
    ///
    /// `options` is consulted only for runtime knobs (MPI buffer size,
    /// double buffering, transport selection, event limit); the plan's
    /// shape — placements and receiver source parameters — was fixed at
    /// prepare time.
    ///
    /// # Errors
    ///
    /// Runtime errors only; the query is already compiled.
    pub fn run(
        &self,
        spec: &HardwareSpec,
        options: &RunOptions,
    ) -> Result<QueryResult, EngineError> {
        let env = Environment::new(spec.clone());
        run_graph(env, &self.graph, options)
    }

    /// Executes the plan with explain-analyze profiling forced on and
    /// returns the per-stage profile alongside the result.
    ///
    /// Runs exactly like [`PreparedQuery::run`] with
    /// `options.profile = true`: tallies are exact per-stage counts
    /// from whichever executor tier ran, and the query result is
    /// byte-identical to an unprofiled run.
    ///
    /// # Errors
    ///
    /// Runtime errors only; the query is already compiled.
    pub fn explain_analyze(
        &self,
        spec: &HardwareSpec,
        options: &RunOptions,
    ) -> Result<(QueryResult, crate::profile::ProfileReport), EngineError> {
        let mut opts = options.clone();
        opts.profile = true;
        let env = Environment::new(spec.clone());
        let result = run_graph(env, &self.graph, &opts)?;
        let profile = result
            .stats()
            .profile
            .clone()
            .expect("profiled run carries a profile");
        Ok((result, profile))
    }

    /// The plan's set-up picture (same rendering as
    /// [`ClientManager::explain`]).
    pub fn explain(&self) -> String {
        crate::explain::explain_graph(&self.graph)
    }
}

/// The client manager: the front-end component users submit SCSQL to
/// (§2.2). Holds the persistent function catalog and executes statements
/// against a fresh environment per query.
#[derive(Debug, Default)]
pub struct ClientManager {
    catalog: Catalog,
    compilations: u64,
}

impl ClientManager {
    /// A client manager with an empty user catalog.
    pub fn new() -> ClientManager {
        ClientManager::default()
    }

    /// The current catalog (built-ins plus registered functions).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// How many query statements this manager has parsed, bound, and
    /// compiled so far (across [`ClientManager::execute_with`] and
    /// [`ClientManager::prepare`]). Sweeps that reuse a prepared plan
    /// leave this counter untouched — the test suite asserts exactly one
    /// compilation per distinct query text.
    pub fn compilations(&self) -> u64 {
        self.compilations
    }

    /// Registers a user-defined query function (the effect of a
    /// `create function` statement).
    ///
    /// # Errors
    ///
    /// Catalog errors on name collisions.
    pub fn define(&mut self, def: scsq_ql::FunctionDef) -> Result<(), EngineError> {
        self.catalog.define(def)?;
        Ok(())
    }

    /// Executes an SCSQL program: `create function` statements extend the
    /// catalog; query statements run on a fresh instance of `spec`'s
    /// hardware and return their result. Returns the result of the last
    /// query statement.
    ///
    /// # Errors
    ///
    /// Parse, binder, placement, or runtime errors; also an error when
    /// the program contains no query statement.
    pub fn execute(
        &mut self,
        spec: &HardwareSpec,
        src: &str,
        options: &RunOptions,
    ) -> Result<QueryResult, EngineError> {
        self.execute_with(spec, src, options, &[])
    }

    /// Like [`ClientManager::execute`], with pre-bound query variables —
    /// the paper's "altering a query variable n" (§3.2) without editing
    /// the query text.
    ///
    /// # Errors
    ///
    /// See [`ClientManager::execute`].
    pub fn execute_with(
        &mut self,
        spec: &HardwareSpec,
        src: &str,
        options: &RunOptions,
        bindings: &[(String, Value)],
    ) -> Result<QueryResult, EngineError> {
        let statements = parse_program(src)?;
        let mut last = None;
        for stmt in statements {
            match stmt {
                Statement::CreateFunction(def) => {
                    self.catalog.define(def)?;
                }
                other => {
                    let (env, graph) = self.compile(spec, &other, options, bindings)?;
                    last = Some(run_graph(env, &graph, options)?);
                }
            }
        }
        last.ok_or_else(|| EngineError::Runtime("program contained no query statement".to_string()))
    }

    /// Compiles a program's query statement into a reusable plan without
    /// running it. `create function` statements in the program extend
    /// the catalog, exactly as in [`ClientManager::execute_with`]; the
    /// last query statement becomes the plan. Placement runs once, here:
    /// every subsequent [`PreparedQuery::run`] replays the same graph on
    /// a fresh environment.
    ///
    /// # Errors
    ///
    /// Parse, binder, or placement errors; also an error when the
    /// program contains no query statement.
    pub fn prepare(
        &mut self,
        spec: &HardwareSpec,
        src: &str,
        options: &RunOptions,
        bindings: &[(String, Value)],
    ) -> Result<PreparedQuery, EngineError> {
        let statements = parse_program(src)?;
        let mut prepared = None;
        for stmt in statements {
            match stmt {
                Statement::CreateFunction(def) => {
                    self.catalog.define(def)?;
                }
                other => {
                    let (_, graph) = self.compile(spec, &other, options, bindings)?;
                    prepared = Some(PreparedQuery {
                        graph: Arc::new(graph),
                    });
                }
            }
        }
        prepared
            .ok_or_else(|| EngineError::Runtime("program contained no query statement".to_string()))
    }

    /// Parse → bind → place one query statement, counting the
    /// compilation. Returns the environment the builder placed against
    /// so `execute_with` can run on it directly.
    fn compile(
        &mut self,
        spec: &HardwareSpec,
        stmt: &Statement,
        options: &RunOptions,
        bindings: &[(String, Value)],
    ) -> Result<(Environment, QueryGraph), EngineError> {
        let mut env = Environment::new(spec.clone());
        let graph =
            crate::builder::QueryBuilder::new(&mut env, &self.catalog, options.placement, options)
                .build(stmt, bindings)?;
        self.compilations += 1;
        Ok((env, graph))
    }

    /// Explains a query's set-up (the paper's Fig 2 picture): stream
    /// processes, placements, and connecting streams — without running
    /// it. Placement happens against a scratch environment, so node
    /// allocations are not retained.
    ///
    /// # Errors
    ///
    /// Parse, binder, or placement errors.
    pub fn explain(
        &self,
        spec: &HardwareSpec,
        src: &str,
        options: &RunOptions,
    ) -> Result<String, EngineError> {
        let stmt = scsq_ql::parse_statement(src)?;
        let mut env = Environment::new(spec.clone());
        let graph =
            crate::builder::QueryBuilder::new(&mut env, &self.catalog, options.placement, options)
                .build(&stmt, &[])?;
        Ok(crate::explain::explain_graph(&graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bg_coordinator_polls() {
        let c = Coordinator::for_cluster(ClusterName::BlueGene);
        assert_eq!(
            c.rp_start_time(SimTime::ZERO),
            SimTime::from_millis(1),
            "registration at t=0 is picked up at the first tick"
        );
        assert_eq!(
            c.rp_start_time(SimTime::from_micros(1500)),
            SimTime::from_millis(2)
        );
        assert_eq!(
            c.rp_start_time(SimTime::from_millis(3)),
            SimTime::from_millis(3),
            "a registration exactly on a tick is picked up then"
        );
    }

    #[test]
    fn linux_coordinators_start_immediately() {
        for cl in [ClusterName::FrontEnd, ClusterName::BackEnd] {
            let c = Coordinator::for_cluster(cl);
            let t = SimTime::from_micros(123);
            assert_eq!(c.rp_start_time(t), t);
        }
    }

    #[test]
    fn register_allocates_nodes() {
        let mut env = Environment::lofar();
        let mut c = Coordinator::for_cluster(ClusterName::BlueGene);
        let a = c.register(&mut env, &AllocSeq::Any).unwrap();
        let b = c.register(&mut env, &AllocSeq::Any).unwrap();
        assert_ne!(a, b, "CNK nodes take one RP each");
        assert_eq!(c.registrations(), 2);
    }
}
