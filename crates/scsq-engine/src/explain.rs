//! Query explanation: the set-up of a CQ, rendered as text.
//!
//! The paper's Figure 2 shows "the set-up of a CQ for execution in
//! SCSQ": which stream processes exist, where their RPs run, and which
//! streams connect them. [`explain_graph`] renders exactly that picture
//! for any query, without running it — the placement side effects (CNDB
//! allocations) happen against a scratch environment.

use crate::builder::QueryGraph;
use crate::ops::{InputKind, Pipeline, Stage};
use scsq_cluster::ClusterName;
use scsq_ql::SpHandle;
use std::fmt::Write;

/// Renders a query graph as a human-readable set-up report.
pub fn explain_graph(graph: &QueryGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "continuous query set-up ({} stream processes):",
        graph.sps.len()
    );
    for sp in &graph.sps {
        let _ = writeln!(
            out,
            "  sp#{} @ {:<6} {}",
            sp.handle.0,
            sp.node.to_string(),
            describe_pipeline(&sp.pipeline)
        );
        write_verdicts(&mut out, &sp.pipeline);
    }
    let _ = writeln!(
        out,
        "  client @ {:<6} {}",
        graph.client_node.to_string(),
        describe_pipeline(&graph.client)
    );
    write_verdicts(&mut out, &graph.client);
    let mut streams = Vec::new();
    let mut collect = |producers: &[SpHandle], dst: String, dst_cluster: ClusterName| {
        for p in producers {
            let src = graph
                .sps
                .iter()
                .find(|s| s.handle == *p)
                .expect("producer exists");
            let carrier = if src.node.cluster == ClusterName::BlueGene
                && dst_cluster == ClusterName::BlueGene
            {
                "mpi"
            } else {
                "tcp"
            };
            streams.push(format!(
                "  sp#{} ({}) ={}=> {}",
                p.0, src.node, carrier, dst
            ));
        }
    };
    for sp in &graph.sps {
        collect(
            sp.pipeline.producers(),
            format!("sp#{} ({})", sp.handle.0, sp.node),
            sp.node.cluster,
        );
    }
    collect(
        graph.client.producers(),
        format!("client ({})", graph.client_node),
        graph.client_node.cluster,
    );
    let _ = writeln!(out, "streams ({}):", streams.len());
    for s in streams {
        let _ = writeln!(out, "{s}");
    }
    out
}

/// Appends one indented line per stage with its static
/// columnar-admission verdict (`columnar` / `columnar (relay)` /
/// `scalar: <reason>`), so rejected shapes are diagnosable from the
/// set-up report alone.
fn write_verdicts(out: &mut String, p: &Pipeline) {
    let verdicts = crate::fused::admission_verdicts(&p.stages);
    for (stage, verdict) in p.stages.iter().zip(&verdicts) {
        let _ = writeln!(out, "      {:<20} {}", describe_stage(stage), verdict);
    }
}

/// One-line description of a compiled SQEP.
pub fn describe_pipeline(p: &Pipeline) -> String {
    let mut s = describe_input(&p.input);
    for stage in &p.stages {
        s.push_str(" | ");
        s.push_str(&describe_stage(stage));
    }
    s
}

/// One-token description of a SQEP source.
pub(crate) fn describe_input(input: &InputKind) -> String {
    match input {
        InputKind::Gen { bytes, count } => format!("gen_array({bytes} B x {count})"),
        InputKind::Receive { producers } => {
            let ids: Vec<String> = producers.iter().map(|h| format!("sp#{}", h.0)).collect();
            format!("receive[{}]", ids.join(", "))
        }
        InputKind::Const { values } => format!("const[{} values]", values.len()),
        InputKind::Receiver {
            name,
            arrays,
            samples,
        } => {
            format!("receiver('{name}', {arrays} x {samples} samples)")
        }
        InputKind::Grep { pattern, file } => format!("grep('{pattern}', '{file}')"),
        InputKind::Metrics { targets } => {
            let ids: Vec<String> = targets.iter().map(|h| format!("sp#{}", h.0)).collect();
            format!("metrics[{}]", ids.join(", "))
        }
        InputKind::Latency { targets } => {
            let ids: Vec<String> = targets.iter().map(|h| format!("sp#{}", h.0)).collect();
            format!("latency[{}]", ids.join(", "))
        }
    }
}

/// One-token description of a single SQEP stage.
pub(crate) fn describe_stage(stage: &Stage) -> String {
    match stage {
        Stage::Map(f) => format!("{f:?}").to_lowercase(),
        Stage::Agg(k) => format!("{k:?}").to_lowercase(),
        Stage::StreamOf => "streamof".to_string(),
        Stage::RadixCombine { first, second } => {
            format!("radixcombine(sp#{}, sp#{})", first.0, second.0)
        }
        Stage::Window(w) => format!("winagg({}, {}, {:?})", w.size, w.slide, w.agg).to_lowercase(),
        Stage::Take { limit } => format!("take({limit})"),
        Stage::Bandwidth => "bandwidth".to_string(),
        Stage::Quantile { q } => format!("quantile({q})"),
        Stage::Arith { op, rhs } => format!("arith({} {rhs})", op.symbol()),
        Stage::Cmp { op, rhs } => format!("cmp({} {rhs})", op.symbol()),
        Stage::Filter { op, rhs } => format!("filter({} {rhs})", op.symbol()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use crate::placement::PlacementPolicy;
    use crate::runtime::RunOptions;
    use scsq_cluster::Environment;
    use scsq_ql::{parse_statement, Catalog};

    fn explain(src: &str) -> String {
        let mut env = Environment::lofar();
        let catalog = Catalog::new();
        let options = RunOptions::default();
        let stmt = parse_statement(src).expect("parses");
        let graph = QueryBuilder::new(&mut env, &catalog, PlacementPolicy::Naive, &options)
            .build(&stmt, &[])
            .expect("builds");
        explain_graph(&graph)
    }

    #[test]
    fn explains_the_p2p_query() {
        let text = explain(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(3000000,100),'bg',1);",
        );
        assert!(text.contains("2 stream processes"), "{text}");
        assert!(
            text.contains("sp#0 @ bg:1   gen_array(3000000 B x 100)"),
            "{text}"
        );
        assert!(text.contains("receive[sp#0] | count | streamof"), "{text}");
        assert!(text.contains("=mpi=>"), "{text}");
        assert!(text.contains("=tcp=> client (fe:0)"), "{text}");
    }

    #[test]
    fn explains_inbound_topology() {
        let text = explain(
            "select extract(c) from bag of sp a, sp b, sp c, integer n
             where c=sp(extract(b), 'bg')
             and b=sp(count(merge(a)), 'bg')
             and a=spv((select gen_array(1000,1)
                        from integer i where i in iota(1,n)), 'be', 1)
             and n=3;",
        );
        assert!(text.contains("5 stream processes"), "{text}");
        assert!(text.contains("receive[sp#0, sp#1, sp#2] | count"), "{text}");
        // Three TCP streams cross be -> bg.
        assert_eq!(text.matches("=tcp=> sp#3").count(), 3, "{text}");
    }

    #[test]
    fn describes_metrics_observers() {
        let text = explain(
            "select extract(m) from sp a, sp b, sp m
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(1000000,10),'bg',1)
             and m=sp(streamof(bandwidth(metrics(a))), 'bg', 2);",
        );
        assert!(text.contains("metrics[sp#0]"), "{text}");
        assert!(text.contains("| bandwidth | streamof"), "{text}");
    }

    #[test]
    fn annotates_absorbing_chains_with_columnar_verdicts() {
        let text = explain(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(count(extract(a))), 'bg', 0)
             and a=sp(gen_array(3000000,100),'bg',1);",
        );
        // count absorbs columnar; streamof only ever sees the flush.
        assert!(text.contains("count                columnar"), "{text}");
        assert!(
            text.contains("streamof             scalar: after the absorber (sees only the flush)"),
            "{text}"
        );
    }

    #[test]
    fn annotates_relay_chains_and_blocked_chains() {
        let text = explain(
            "select extract(b) from sp a, sp b
             where b=sp(filter(arith(extract(a), '*', 3), '>', 10), 'bg', 0)
             and a=sp(streamof(iota(1,100)),'bg',1);",
        );
        assert!(
            text.contains("arith(* 3)           columnar (relay)"),
            "{text}"
        );
        assert!(
            text.contains("filter(> 10)         columnar (relay)"),
            "{text}"
        );

        let text = explain(
            "select extract(b) from sp a, sp b
             where b=sp(streamof(winagg(extract(a), 2, 2, 'count')), 'bg', 0)
             and a=sp(gen_array(10000,6),'bg',1);",
        );
        assert!(
            text.contains("winagg(2, 2, count)  scalar: no whole-column kernel"),
            "{text}"
        );
        assert!(
            text.contains("streamof             scalar: chain blocked by a non-vectorizable stage"),
            "{text}"
        );

        let text = explain(
            "select extract(b) from sp a, sp b
             where b=sp(take(extract(a), 3), 'bg', 0)
             and a=sp(gen_array(10000,9),'bg',1);",
        );
        assert!(
            text.contains("take(3)              scalar: chain neither absorbs nor transforms"),
            "{text}"
        );
    }

    #[test]
    fn describes_every_stage_kind() {
        let text = explain(
            "select extract(w) from sp src, sp w
             where w=sp(winagg(take(extract(src), 5), 2, 2, 'sum'), 'bg')
             and src=sp(streamof(iota(1,9)), 'be');",
        );
        assert!(text.contains("take(5)"), "{text}");
        assert!(text.contains("winagg(2, 2, sum)"), "{text}");
        assert!(text.contains("const[9 values] | streamof"), "{text}");
    }
}
