//! Fused stage programs: the per-event fast path.
//!
//! The interpreted [`StageChain`] re-matches on every stage enum for
//! every element and allocates a fresh `Vec<Value>` per stage per call.
//! That is fine at end-of-stream flush rates but dominates the
//! per-event execution path whenever train coalescing cannot fire
//! (jittered service times, data-dependent stages). A [`FusedProgram`]
//! is the `Scsq::prepare`-time lowering of a pipeline: each stage is
//! resolved once to a direct jump-table entry (`StageFn`) and the
//! compute-cost accounting is compiled to a compact op list with a
//! one-entry memo, so the inner loop is a straight call chain with no
//! enum dispatch, no re-validation, and — together with the chain's
//! reusable ping-pong scratch buffers — no allocation per tuple.
//!
//! Correctness bar: the fused executor mutates the *same*
//! `StageState` representation as the interpreter, feeds every stage
//! the same input sequence in the same order (stages are
//! order-preserving stateful flat-maps, so breadth-first scratch
//! passes and the interpreter's depth-first recursion produce the same
//! outputs), and delegates end-of-stream flushing and coalescer probes
//! to the interpreted chain. Byte-identical figure CSVs with fusion on
//! or off are enforced by `tests/fuse_csv.rs`.

use crate::columnar;
use crate::error::EngineError;
use crate::funcs;
use crate::ops::{
    arith_apply, cmp_apply, AggKind, CmpOp, MapFunc, Pipeline, Stage, StageChain, StageState,
};
use scsq_ql::column::{Column, SelectionVector, METRIC_COLUMNS};
use scsq_ql::{Batch, ColumnarBatch, SpHandle, Value};
use scsq_sim::StateProbe;

/// One compiled compute-cost operation. Only stages that charge CPU
/// time appear; everything else is dropped at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostOp {
    /// An elementwise function charged via `funcs::map_cost_bytes`;
    /// decimating maps halve the element size seen downstream.
    Map(MapFunc),
    /// A radix combine charged one unit per element byte.
    Radix,
    /// An elementwise arithmetic transform charged one unit per element
    /// byte; numeric in, numeric out, so the size is unchanged.
    Arith,
    /// An elementwise comparison charged one unit per element byte; the
    /// boolean it emits is what downstream stages see.
    Cmp,
    /// An elementwise predicate charged one unit per element byte.
    /// Survivors keep their size; the model charges every *input*
    /// element, so elements the predicate drops still paid to be
    /// examined.
    Filter,
}

/// A pipeline lowered at prepare time: the validated stage list plus
/// the compiled cost ops. Pure data (no function pointers), so it can
/// live inside the shared [`crate::builder::QueryGraph`] and be
/// compared/cloned like the rest of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    /// The stage list this program was lowered from.
    pub stages: Vec<Stage>,
    cost_ops: Vec<CostOp>,
}

impl FusedProgram {
    /// Lowers a pipeline's stage chain into a fused program.
    pub fn compile(pipeline: &Pipeline) -> FusedProgram {
        let cost_ops = pipeline
            .stages
            .iter()
            .filter_map(|s| match s {
                Stage::Map(f) => Some(CostOp::Map(*f)),
                Stage::RadixCombine { .. } => Some(CostOp::Radix),
                Stage::Arith { .. } => Some(CostOp::Arith),
                Stage::Cmp { .. } => Some(CostOp::Cmp),
                Stage::Filter { .. } => Some(CostOp::Filter),
                _ => None,
            })
            .collect();
        FusedProgram {
            stages: pipeline.stages.clone(),
            cost_ops,
        }
    }

    /// Instantiates the per-run cost accounting for this program.
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            ops: self.cost_ops.clone(),
            memo: None,
        }
    }
}

/// Per-run compute-cost accounting: the compiled op list plus a
/// single-entry memo. Streaming workloads feed long runs of
/// identically-sized elements, so the memo turns the per-element cost
/// walk into one comparison.
#[derive(Debug)]
pub struct CostModel {
    ops: Vec<CostOp>,
    memo: Option<(u64, u64)>,
}

impl CostModel {
    /// CPU cost (in byte-equivalents) of pushing one element of
    /// `elem_bytes` marshaled bytes through the chain. Identical to
    /// walking the stage list per element: decimation halves the size
    /// seen by later stages.
    pub fn cost(&mut self, elem_bytes: u64) -> u64 {
        if self.ops.is_empty() {
            return 0;
        }
        if let Some((b, c)) = self.memo {
            if b == elem_bytes {
                return c;
            }
        }
        let mut bytes = elem_bytes;
        let mut cost = 0u64;
        for op in &self.ops {
            match op {
                CostOp::Map(f) => {
                    cost += funcs::map_cost_bytes(*f, bytes);
                    if matches!(f, MapFunc::Odd | MapFunc::Even) {
                        bytes /= 2;
                    }
                }
                CostOp::Radix | CostOp::Arith | CostOp::Filter => cost += bytes,
                CostOp::Cmp => {
                    cost += bytes;
                    // A comparison emits a marshaled boolean (tag +
                    // payload) whatever went in.
                    bytes = 2;
                }
            }
        }
        self.memo = Some((elem_bytes, cost));
        cost
    }
}

/// One fused stage step: consume `value`, mutate the stage's state,
/// append any outputs. Resolved once per stage at chain build time.
type StageFn =
    fn(&mut StageState, Value, Option<SpHandle>, &mut Vec<Value>) -> Result<(), EngineError>;

/// The fused executor: the interpreter's stage states driven by a
/// pre-resolved jump table over reusable scratch buffers.
#[derive(Debug)]
pub struct FusedChain {
    chain: StageChain,
    ops: Vec<StageFn>,
    cur: Vec<Value>,
    nxt: Vec<Value>,
    /// Whether columnar admission may apply at all: every stage has a
    /// whole-column kernel (aggregate / `streamof` / `take` /
    /// `bandwidth` / `map` / `arith` / `cmp` / `filter`) and the chain
    /// ends in an absorbing aggregate, so a columnar pass never has to
    /// reconstruct leftover tuples. Per-batch typing is checked by
    /// [`FusedChain::columnar_admit`].
    columnar_ok: bool,
    /// Whether relay admission may apply: no absorber, every stage is a
    /// re-emitting vectorizable stage (`streamof` / `take` / `arith` /
    /// `cmp` / `filter`), and at least one actually transforms or
    /// filters — the chain then rewrites a column and re-emits it
    /// downstream as shared column rows instead of reconstructing
    /// tuples. Per-batch typing is checked by
    /// [`FusedChain::relay_admit_cols`].
    relay_ok: bool,
    /// Whether any stage charges modeled compute cost. Costly chains
    /// only admit batches whose elements share one marshaled size, so
    /// the runtime can charge the whole batch in bulk (same total, same
    /// jitter draws as charging element by element).
    costly: bool,
}

/// A batch cleared for whole-column execution by
/// [`FusedChain::columnar_admit`]: the transposed columns plus the two
/// facts the runtime needs to charge the chain's modeled compute cost
/// in bulk *before* running the kernels, mirroring the per-element
/// path's charge-then-process order.
#[derive(Debug)]
pub struct ColumnarAdmit {
    cols: ColumnarBatch,
    /// Number of elements in the admitted batch.
    pub rows: usize,
    /// Marshaled size shared by every element, or 0 when the chain
    /// charges no compute cost (then no size is needed — the cost walk
    /// is empty either way).
    pub elem_bytes: u64,
}

/// A batch cleared for relay execution by
/// [`FusedChain::relay_admit_cols`]: a typed single-column view the
/// chain will rewrite and re-emit downstream, plus the bulk
/// cost-accounting facts (relay chains always contain a cost op, so
/// the uniform-stride requirement always applies).
#[derive(Debug)]
pub struct RelayAdmit {
    cols: ColumnarBatch,
    /// Number of elements in the admitted batch.
    pub rows: usize,
    /// Marshaled size shared by every input element.
    pub elem_bytes: u64,
}

/// Column type flowing between stages during the admission walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColType {
    Int,
    Float,
    Bool,
    Str,
    Synthetic,
    Metric,
    /// A non-metric multi-column batch: tuples flowing as parallel
    /// typed columns. Pass-through and counting stages admit it;
    /// elementwise transforms and numeric folds decline.
    Record,
    Other,
}

/// The type a batch presents to the first stage: the three-column
/// metric shape, a multi-column record, a typed single column, or the
/// opaque fallback (which only `count` absorbs). Columns with invalid
/// rows are opaque — scalar semantics have no notion of a masked row
/// entering a chain.
fn batch_col_type(cols: &ColumnarBatch) -> ColType {
    if cols.width() == 3
        && METRIC_COLUMNS
            .iter()
            .zip(cols.columns())
            .all(|(want, (name, _))| name == want)
    {
        return ColType::Metric;
    }
    if cols.width() > 1 {
        return if cols.columns().iter().all(|(_, c)| c.all_valid()) {
            ColType::Record
        } else {
            ColType::Other
        };
    }
    match cols.single() {
        Some(c) if !c.all_valid() => ColType::Other,
        Some(c) if c.as_i64().is_some() => ColType::Int,
        Some(c) if c.as_f64().is_some() => ColType::Float,
        Some(c) if c.as_bool().is_some() => ColType::Bool,
        Some(c) if c.as_synthetic().is_some() => ColType::Synthetic,
        Some(c) if c.as_utf8().is_some() => ColType::Str,
        _ => ColType::Other,
    }
}

/// One step of the admission type flow for a non-absorbing stage:
/// the column type a stage emits given the type flowing into it, or
/// `None` when the stage has no kernel for that type (the batch then
/// falls back to the per-element path). Shared by the absorber and
/// relay admission walks so the two lattices cannot drift apart.
fn transform_type(state: &StageState, ty: ColType) -> Option<ColType> {
    match state {
        StageState::StreamOf | StageState::Take { .. } => Some(ty),
        StageState::Map(_) => (ty == ColType::Synthetic).then_some(ty),
        StageState::Arith { rhs, .. } => match (ty, rhs) {
            (ColType::Int, Value::Integer(_)) => Some(ColType::Int),
            (ColType::Int, Value::Real(_)) => Some(ColType::Float),
            (ColType::Float, Value::Integer(_) | Value::Real(_)) => Some(ColType::Float),
            _ => None,
        },
        StageState::Cmp { rhs, .. } | StageState::Filter { rhs, .. } => {
            let ok = matches!(
                (ty, rhs),
                (
                    ColType::Int | ColType::Float,
                    Value::Integer(_) | Value::Real(_)
                ) | (ColType::Str, Value::Str(_))
            );
            if !ok {
                None
            } else if matches!(state, StageState::Cmp { .. }) {
                Some(ColType::Bool)
            } else {
                Some(ty)
            }
        }
        _ => None,
    }
}

impl FusedChain {
    /// Instantiates runtime state for a fused program.
    pub fn new(program: &FusedProgram) -> FusedChain {
        let ops = program.stages.iter().map(resolve).collect();
        let vectorizable = |s: &Stage| {
            matches!(
                s,
                Stage::Agg(_)
                    | Stage::StreamOf
                    | Stage::Take { .. }
                    | Stage::Bandwidth
                    | Stage::Quantile { .. }
                    | Stage::Map(_)
                    | Stage::Arith { .. }
                    | Stage::Cmp { .. }
                    | Stage::Filter { .. }
            )
        };
        let absorber =
            |s: &Stage| matches!(s, Stage::Agg(_) | Stage::Bandwidth | Stage::Quantile { .. });
        let columnar_ok =
            program.stages.iter().all(vectorizable) && program.stages.iter().any(absorber);
        let relayable = |s: &Stage| {
            matches!(
                s,
                Stage::StreamOf
                    | Stage::Take { .. }
                    | Stage::Arith { .. }
                    | Stage::Cmp { .. }
                    | Stage::Filter { .. }
            )
        };
        let transform = |s: &Stage| {
            matches!(
                s,
                Stage::Arith { .. } | Stage::Cmp { .. } | Stage::Filter { .. }
            )
        };
        let relay_ok = program.stages.iter().all(relayable) && program.stages.iter().any(transform);
        FusedChain {
            chain: StageChain::from_stages(&program.stages),
            ops,
            cur: Vec::new(),
            nxt: Vec::new(),
            columnar_ok,
            relay_ok,
            costly: !program.cost_ops.is_empty(),
        }
    }

    /// Feeds one element through the chain, appending whatever falls
    /// out the end to `out`. Equivalent to [`StageChain::process`] but
    /// allocation-free after warm-up: elements move between the two
    /// scratch buffers, one stage at a time.
    ///
    /// # Errors
    ///
    /// Type errors when an elementwise function meets an incompatible
    /// value.
    pub fn process_into(
        &mut self,
        value: Value,
        from: Option<SpHandle>,
        out: &mut Vec<Value>,
    ) -> Result<(), EngineError> {
        if self.ops.is_empty() {
            out.push(value);
            return Ok(());
        }
        self.cur.clear();
        self.cur.push(value);
        for (i, op) in self.ops.iter().enumerate() {
            if self.cur.is_empty() {
                return Ok(());
            }
            self.nxt.clear();
            let n_in = self.cur.len() as u64;
            for v in self.cur.drain(..) {
                op(&mut self.chain.stages[i], v, from, &mut self.nxt)?;
            }
            if let Some(t) = self.chain.tally.get_mut(i) {
                t.calls += n_in;
                t.elems_in += n_in;
                t.elems_out += self.nxt.len() as u64;
            }
            std::mem::swap(&mut self.cur, &mut self.nxt);
        }
        out.append(&mut self.cur);
        Ok(())
    }

    /// Feeds a whole delivered batch through the chain as columns,
    /// dispatching once per column instead of once per element.
    ///
    /// Returns `Ok(true)` when the batch was absorbed columnar-ly —
    /// the chain's stage states then hold exactly what feeding the
    /// elements one at a time would have left (see the fold contracts
    /// in [`crate::columnar`]) and, because the chain ends in an
    /// absorbing aggregate, nothing is emitted before end of stream.
    /// Returns `Ok(false)` without touching any state when the chain
    /// or the batch's column shape is not vectorizable; the caller
    /// falls back to the per-element path, which also reproduces
    /// type-error semantics for ill-typed runs.
    ///
    /// # Errors
    ///
    /// The same error the per-element path would raise on the first
    /// failing element (only `bandwidth` over malformed samples can
    /// fail on a vectorizable shape).
    pub fn process_batch_columnar(&mut self, batch: &Batch) -> Result<bool, EngineError> {
        match self.columnar_admit(batch) {
            Some(admit) => {
                self.process_admitted(admit)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Decides, without mutating anything, whether a delivered batch
    /// qualifies for whole-column execution, and if so returns the
    /// transposed columns plus the bulk cost-accounting facts.
    ///
    /// Admission runs the same type flow the kernels implement: the
    /// batch transposes to a typed column (`Int`/`Float`/`Bool`/
    /// `Str`/`Synthetic`, the three-column metric shape, or an opaque
    /// fallback), and each stage must have a kernel for the type
    /// flowing into it — `arith` needs a numeric column (an integer
    /// column with a real constant widens to float, as the scalar stage
    /// does), `cmp`/`filter` need a numeric column with a numeric
    /// constant or a string column with a string constant, `map` needs
    /// a synthetic column, aggregates other than `count` need a numeric
    /// column, `bandwidth` needs the metric shape. `count` absorbs any
    /// type. The walk stops at the first absorber; stages after it
    /// never see elements mid-stream, only the end-of-stream flush.
    ///
    /// When any stage charges modeled compute cost the elements must
    /// additionally share one marshaled size, so the runtime can charge
    /// `rows × cost(elem_bytes)` in one bulk call — the same total the
    /// per-element walk accrues. `None` means the caller must fall back
    /// to the per-element path (which also reproduces type-error
    /// semantics for ill-typed runs).
    pub fn columnar_admit(&self, batch: &Batch) -> Option<ColumnarAdmit> {
        if !self.columnar_ok || batch.len() < 2 {
            return None;
        }
        self.columnar_admit_cols(&ColumnarBatch::from_batch(batch))
    }

    /// [`FusedChain::columnar_admit`] over an already-transposed batch
    /// — the entry the runtime uses for relayed columns, where the
    /// columns arrive shared from the upstream chain and transposing
    /// again would waste the hand-off.
    pub fn columnar_admit_cols(&self, cols: &ColumnarBatch) -> Option<ColumnarAdmit> {
        if !self.columnar_ok || cols.is_empty() {
            return None;
        }
        let initial = batch_col_type(cols);
        let mut ty = initial;
        let mut admitted = false;
        for state in &self.chain.stages {
            match state {
                StageState::Agg { kind, .. } => {
                    if *kind != AggKind::Count && !matches!(ty, ColType::Int | ColType::Float) {
                        return None;
                    }
                    admitted = true;
                    break;
                }
                StageState::Bandwidth { .. } => {
                    if ty != ColType::Metric || !cols.columns().iter().all(|(_, c)| c.all_valid()) {
                        return None;
                    }
                    admitted = true;
                    break;
                }
                StageState::Quantile { .. } => {
                    if !matches!(ty, ColType::Int | ColType::Float) {
                        return None;
                    }
                    admitted = true;
                    break;
                }
                other => ty = transform_type(other, ty)?,
            }
        }
        if !admitted {
            return None;
        }
        let elem_bytes = if self.costly {
            uniform_elem_bytes(cols, initial)?
        } else {
            0
        };
        Some(ColumnarAdmit {
            rows: cols.rows(),
            cols: cols.clone(),
            elem_bytes,
        })
    }

    /// Decides, without mutating anything, whether an already-transposed
    /// batch qualifies for relay execution: the chain re-emits (no
    /// absorber, [`relay_ok`](FusedChain) shape), the batch is one
    /// all-valid typed column, the type flow clears every stage, and the
    /// elements share one marshaled stride (relay chains always charge
    /// compute cost, so bulk accounting needs it). The admitted batch
    /// runs through [`FusedChain::process_relayed`].
    pub fn relay_admit_cols(&self, cols: &ColumnarBatch) -> Option<RelayAdmit> {
        if !self.relay_ok || cols.is_empty() {
            return None;
        }
        let initial = batch_col_type(cols);
        if !matches!(
            initial,
            ColType::Int | ColType::Float | ColType::Bool | ColType::Str | ColType::Synthetic
        ) {
            return None;
        }
        let mut ty = initial;
        for state in &self.chain.stages {
            ty = transform_type(state, ty)?;
        }
        let elem_bytes = uniform_elem_bytes(cols, initial)?;
        Some(RelayAdmit {
            rows: cols.rows(),
            cols: cols.clone(),
            elem_bytes,
        })
    }

    /// Runs a relay-admitted batch through the chain as whole columns
    /// and returns the surviving rows as a fresh single-column batch
    /// (named `"v"`), ready to travel downstream as shared column rows.
    ///
    /// The second return value maps output rows to input rows: `None`
    /// means the output is a prefix of the input (only dense stages and
    /// `take` ran), `Some(sel)` means output row `j` came from input
    /// row `sel.rows()[j]` (a filter ran). The caller needs the mapping
    /// to emit each survivor at the finish time of the *input* element
    /// that produced it, exactly as the per-element path does.
    ///
    /// The caller must have charged the per-element compute cost
    /// already (charge-then-process, as everywhere else).
    pub fn process_relayed(
        &mut self,
        admit: RelayAdmit,
    ) -> (ColumnarBatch, Option<SelectionVector>) {
        let mut cur: Column = admit.cols.single().expect("relay admits single column");
        let mut sel: Option<SelectionVector> = None;
        let StageChain { stages, tally, .. } = &mut self.chain;
        for (si, state) in stages.iter_mut().enumerate() {
            let live_in = sel.as_ref().map_or(cur.len(), SelectionVector::len) as u64;
            match state {
                StageState::StreamOf => {}
                StageState::Map(f) => {
                    cur = columnar::map_synthetic(&cur, *f).expect("admitted: synthetic column");
                }
                StageState::Arith { op, rhs } => {
                    cur = match rhs {
                        Value::Integer(k) if cur.as_i64().is_some() => {
                            columnar::arith_i64(&cur, *op, *k).expect("admitted: integer column")
                        }
                        _ => {
                            let k = rhs.as_real().expect("admitted: numeric constant");
                            columnar::arith_f64(&cur, *op, k).expect("admitted: numeric column")
                        }
                    };
                }
                StageState::Cmp { op, rhs } => {
                    cur = cmp_mask(&cur, *op, rhs);
                }
                StageState::Filter { op, rhs } => {
                    let mask = cmp_mask(&cur, *op, rhs);
                    sel = Some(match sel.take() {
                        Some(s) => columnar::intersect_selection(&mask, &s)
                            .expect("cmp kernels produce Bool masks"),
                        None => columnar::filter_to_selection(&mask)
                            .expect("cmp kernels produce Bool masks"),
                    });
                }
                StageState::Take { remaining } => match &mut sel {
                    Some(s) => {
                        let k = (s.len() as u64).min(*remaining);
                        *remaining -= k;
                        s.truncate(k as usize);
                    }
                    None => {
                        let k = (cur.len() as u64).min(*remaining);
                        *remaining -= k;
                        cur = cur.slice(0, k as usize);
                    }
                },
                _ => unreachable!("relay admission excludes absorbing and stateful stages"),
            }
            if let Some(t) = tally.get_mut(si) {
                let live_out = sel.as_ref().map_or(cur.len(), SelectionVector::len) as u64;
                t.calls += 1;
                t.elems_in += live_in;
                t.elems_out += live_out;
            }
        }
        let out = match &sel {
            // Compact survivors once at the end: dense stages upstream
            // computed dead rows but never materialized them.
            Some(s) => columnar::take(&cur, s),
            None => cur,
        };
        (ColumnarBatch::new(vec![("v".to_string(), out)]), sel)
    }

    /// Runs an admitted batch through the chain as whole columns. The
    /// caller must have charged the bulk compute cost already (the
    /// per-element path charges each element before it enters the
    /// chain, so charge-then-process keeps the orders aligned).
    ///
    /// Transform stages rewrite the column; `filter` narrows a
    /// selection vector over the *original* row space instead of
    /// gathering survivors, so a chain of filters is mask intersection
    /// and the terminal fold visits survivors by index. Dense stages
    /// after a filter keep operating on all rows — dead rows are
    /// computed and never read, which is cheaper than gathering and
    /// cannot fail on an admitted type.
    ///
    /// # Errors
    ///
    /// The same error the per-element path would raise on the first
    /// failing element (`bandwidth` over malformed samples or
    /// `quantile` over negative values on an admitted shape).
    pub fn process_admitted(&mut self, admit: ColumnarAdmit) -> Result<(), EngineError> {
        let cols = admit.cols;
        if cols.width() != 1 {
            return self.process_multi_columns(cols);
        }
        let mut cur: Column = cols.single().expect("width checked above");
        let mut sel: Option<SelectionVector> = None;
        let StageChain { stages, tally, .. } = &mut self.chain;
        for (si, state) in stages.iter_mut().enumerate() {
            // Semantic element counts for explain-analyze: what the
            // per-element path would have fed this stage (survivors of
            // the selection so far).
            let live_in = sel.as_ref().map_or(cur.len(), SelectionVector::len) as u64;
            match state {
                StageState::StreamOf => {}
                StageState::Map(f) => {
                    cur = columnar::map_synthetic(&cur, *f).expect("admitted: synthetic column");
                }
                StageState::Arith { op, rhs } => {
                    cur = match rhs {
                        Value::Integer(k) if cur.as_i64().is_some() => {
                            columnar::arith_i64(&cur, *op, *k).expect("admitted: integer column")
                        }
                        _ => {
                            let k = rhs.as_real().expect("admitted: numeric constant");
                            columnar::arith_f64(&cur, *op, k).expect("admitted: numeric column")
                        }
                    };
                }
                StageState::Cmp { op, rhs } => {
                    cur = cmp_mask(&cur, *op, rhs);
                }
                StageState::Filter { op, rhs } => {
                    let mask = cmp_mask(&cur, *op, rhs);
                    sel = Some(match sel.take() {
                        Some(s) => columnar::intersect_selection(&mask, &s)
                            .expect("cmp kernels produce Bool masks"),
                        None => columnar::filter_to_selection(&mask)
                            .expect("cmp kernels produce Bool masks"),
                    });
                }
                StageState::Take { remaining } => match &mut sel {
                    Some(s) => {
                        let k = (s.len() as u64).min(*remaining);
                        *remaining -= k;
                        s.truncate(k as usize);
                    }
                    None => {
                        let k = (cur.len() as u64).min(*remaining);
                        *remaining -= k;
                        cur = cur.slice(0, k as usize);
                    }
                },
                StageState::Agg {
                    kind,
                    count,
                    sum_int,
                    sum_real,
                    saw_real,
                    best,
                } => {
                    match kind {
                        AggKind::Count => {
                            *count += sel.as_ref().map_or(cur.len(), SelectionVector::len) as i64;
                        }
                        AggKind::Sum | AggKind::Avg => {
                            if let Some(xs) = cur.as_i64() {
                                match &sel {
                                    Some(s) => columnar::fold_sum_i64_sel(count, sum_int, xs, s),
                                    None => columnar::fold_sum_i64(count, sum_int, xs),
                                }
                            } else {
                                let xs = cur.as_f64().expect("admitted: numeric column");
                                match &sel {
                                    Some(s) => {
                                        columnar::fold_sum_f64_sel(count, sum_real, saw_real, xs, s)
                                    }
                                    None => columnar::fold_sum_f64(count, sum_real, saw_real, xs),
                                }
                            }
                        }
                        AggKind::Max | AggKind::Min => {
                            let maximize = *kind == AggKind::Max;
                            if let Some(xs) = cur.as_i64() {
                                match &sel {
                                    Some(s) => {
                                        columnar::fold_best_i64_sel(count, best, xs, s, maximize)
                                    }
                                    None => columnar::fold_best_i64(count, best, xs, maximize),
                                }
                            } else {
                                let xs = cur.as_f64().expect("admitted: numeric column");
                                match &sel {
                                    Some(s) => {
                                        columnar::fold_best_f64_sel(count, best, xs, s, maximize)
                                    }
                                    None => columnar::fold_best_f64(count, best, xs, maximize),
                                }
                            }
                        }
                    }
                    if let Some(t) = tally.get_mut(si) {
                        t.calls += 1;
                        t.elems_in += live_in;
                    }
                    return Ok(());
                }
                StageState::Quantile { hist, .. } => {
                    if let Some(xs) = cur.as_i64() {
                        match &sel {
                            Some(s) => columnar::fold_quantile_i64_sel(hist, xs, s)?,
                            None => columnar::fold_quantile_i64(hist, xs)?,
                        }
                    } else {
                        let xs = cur.as_f64().expect("admitted: numeric column");
                        match &sel {
                            Some(s) => columnar::fold_quantile_f64_sel(hist, xs, s)?,
                            None => columnar::fold_quantile_f64(hist, xs)?,
                        }
                    }
                    if let Some(t) = tally.get_mut(si) {
                        t.calls += 1;
                        t.elems_in += live_in;
                    }
                    return Ok(());
                }
                _ => unreachable!("admission excludes non-vectorizable stages"),
            }
            if let Some(t) = tally.get_mut(si) {
                let live_out = sel.as_ref().map_or(cur.len(), SelectionVector::len) as u64;
                t.calls += 1;
                t.elems_in += live_in;
                t.elems_out += live_out;
            }
        }
        unreachable!("admission implies an absorber terminates the walk")
    }

    /// The multi-column walk: parallel columns — the metric triple or a
    /// record batch — flow untransformed (admission declines transform
    /// stages on multi-column batches) through pass-through stages into
    /// `bandwidth` or `count`.
    fn process_multi_columns(&mut self, cols: ColumnarBatch) -> Result<(), EngineError> {
        let mut view = cols;
        let StageChain { stages, tally, .. } = &mut self.chain;
        for (si, state) in stages.iter_mut().enumerate() {
            let live_in = view.rows() as u64;
            match state {
                StageState::StreamOf => {}
                StageState::Take { remaining } => {
                    let k = (view.rows() as u64).min(*remaining);
                    *remaining -= k;
                    view = view.slice(0, k as usize);
                }
                StageState::Agg { count, .. } => {
                    *count += view.rows() as i64;
                    if let Some(t) = tally.get_mut(si) {
                        t.calls += 1;
                        t.elems_in += live_in;
                    }
                    return Ok(());
                }
                StageState::Bandwidth { bytes, last_nanos } => {
                    let col = |name| view.column(name).expect("admitted: metric columns present");
                    let (channel, time_ns, sample_bytes) = (
                        col(METRIC_COLUMNS[0]),
                        col(METRIC_COLUMNS[1]),
                        col(METRIC_COLUMNS[2]),
                    );
                    columnar::fold_bandwidth(
                        bytes,
                        last_nanos,
                        channel.as_i64().expect("metric columns are Int64"),
                        time_ns.as_i64().expect("metric columns are Int64"),
                        sample_bytes.as_i64().expect("metric columns are Int64"),
                    )?;
                    if let Some(t) = tally.get_mut(si) {
                        t.calls += 1;
                        t.elems_in += live_in;
                    }
                    return Ok(());
                }
                _ => unreachable!("admission excludes transforms on metric batches"),
            }
            if let Some(t) = tally.get_mut(si) {
                t.calls += 1;
                t.elems_in += live_in;
                t.elems_out += view.rows() as u64;
            }
        }
        unreachable!("admission implies an absorber terminates the walk")
    }

    /// Signals end of stream; aggregates flush. Delegates to the
    /// interpreted chain (it runs once per RP, off the hot path, and
    /// sharing the code makes flush semantics identical by
    /// construction).
    ///
    /// # Errors
    ///
    /// Propagates type errors from downstream stages processing flushed
    /// values.
    pub fn finish(&mut self) -> Result<Vec<Value>, EngineError> {
        self.chain.finish()
    }

    /// Walks the chain's mutable state through a coalescing probe —
    /// the same walk as the interpreted chain, over the same states.
    pub(crate) fn probe(
        &mut self,
        p: &mut StateProbe<'_>,
        probe_value: &mut dyn FnMut(&Value, &mut StateProbe<'_>),
    ) {
        self.chain.probe(p, probe_value);
    }
}

/// Dispatches an admitted comparison to the kernel matching the scalar
/// `cmp` stage's type arms: integer column against an integer constant
/// compares exactly, strings compare lexicographically, every other
/// admitted pair widens to IEEE `f64`.
fn cmp_mask(cur: &Column, op: CmpOp, rhs: &Value) -> Column {
    match rhs {
        Value::Integer(k) if cur.as_i64().is_some() => {
            columnar::cmp_mask_i64(cur, op, *k).expect("admitted: integer column")
        }
        Value::Str(s) => columnar::cmp_mask_utf8(cur, op, s).expect("admitted: string column"),
        _ => {
            let k = rhs.as_real().expect("admitted: numeric constant");
            columnar::cmp_mask_f64(cur, op, k).expect("admitted: numeric column")
        }
    }
}

/// The marshaled size shared by every element of the batch, or `None`
/// when sizes differ (then bulk cost charging would not equal the
/// per-element walk and the batch is declined). Fixed-width kinds
/// answer from the type; synthetic arrays and strings check the run.
fn uniform_elem_bytes(cols: &ColumnarBatch, ty: ColType) -> Option<u64> {
    match ty {
        // Tag byte + 8-byte payload.
        ColType::Int | ColType::Float => Some(9),
        // Tag byte + 1-byte payload.
        ColType::Bool => Some(2),
        // A metric sample marshals as a 3-integer bag: tag + length
        // prefix + three 9-byte integers.
        ColType::Metric => Some(32),
        // A record marshals as a bag of its cells: tag + length prefix
        // + each cell. Only all-fixed-stride records qualify.
        ColType::Record => {
            let mut total = 5u64;
            for (_, c) in cols.columns() {
                total += match (c.as_i64(), c.as_f64(), c.as_bool()) {
                    (Some(_), _, _) | (_, Some(_), _) => 9,
                    (_, _, Some(_)) => 2,
                    _ => return None,
                };
            }
            Some(total)
        }
        ColType::Synthetic => {
            let c = cols.single()?;
            let xs = c.as_synthetic()?;
            let &b = xs.first()?;
            // Tag + length prefix + the array body.
            xs.iter().all(|&x| x == b).then_some(9 + b)
        }
        ColType::Str => {
            let c = cols.single()?;
            let (offsets, _) = c.as_utf8()?;
            let l = offsets.get(1)? - offsets.first()?;
            // Tag + length prefix + the bytes.
            offsets
                .windows(2)
                .all(|w| w[1] - w[0] == l)
                .then_some(5 + u64::from(l))
        }
        ColType::Other => None,
    }
}

/// The static columnar-admission verdict for each stage of a chain —
/// what `explain` prints so rejected shapes are diagnosable without
/// reading `columnar_admit`. `"columnar"` marks stages the absorbing
/// columnar pass can drive, `"columnar (relay)"` marks stages of a
/// re-emitting relay chain, and `"scalar: <reason>"` explains why a
/// stage forces the per-element path. Verdicts are shape-level:
/// per-batch typing (a string column into `sum`, mixed runs) can still
/// demote an admitted shape at delivery time.
pub fn admission_verdicts(stages: &[Stage]) -> Vec<String> {
    let vectorizable = |s: &Stage| {
        matches!(
            s,
            Stage::Agg(_)
                | Stage::StreamOf
                | Stage::Take { .. }
                | Stage::Bandwidth
                | Stage::Quantile { .. }
                | Stage::Map(_)
                | Stage::Arith { .. }
                | Stage::Cmp { .. }
                | Stage::Filter { .. }
        )
    };
    let absorber =
        |s: &Stage| matches!(s, Stage::Agg(_) | Stage::Bandwidth | Stage::Quantile { .. });
    let transform = |s: &Stage| {
        matches!(
            s,
            Stage::Arith { .. } | Stage::Cmp { .. } | Stage::Filter { .. }
        )
    };
    let all_vectorizable = stages.iter().all(vectorizable);
    if all_vectorizable && stages.iter().any(absorber) {
        let mut absorbed = false;
        return stages
            .iter()
            .map(|s| {
                if absorbed {
                    "scalar: after the absorber (sees only the flush)".to_string()
                } else {
                    absorbed = absorber(s);
                    "columnar".to_string()
                }
            })
            .collect();
    }
    let relayable = |s: &Stage| {
        matches!(
            s,
            Stage::StreamOf
                | Stage::Take { .. }
                | Stage::Arith { .. }
                | Stage::Cmp { .. }
                | Stage::Filter { .. }
        )
    };
    if stages.iter().all(relayable) && stages.iter().any(transform) {
        return stages
            .iter()
            .map(|_| "columnar (relay)".to_string())
            .collect();
    }
    stages
        .iter()
        .map(|s| {
            if !vectorizable(s) {
                "scalar: no whole-column kernel".to_string()
            } else if all_vectorizable {
                "scalar: chain neither absorbs nor transforms".to_string()
            } else {
                "scalar: chain blocked by a non-vectorizable stage".to_string()
            }
        })
        .collect()
}

/// Resolves one stage to its jump-table entry. Aggregates resolve per
/// kind and maps per function, so no per-element `match` survives into
/// the inner loop.
fn resolve(stage: &Stage) -> StageFn {
    match stage {
        Stage::Map(MapFunc::Odd) => step_map_odd,
        Stage::Map(MapFunc::Even) => step_map_even,
        Stage::Map(MapFunc::Fft) => step_map_fft,
        Stage::Map(MapFunc::Power) => step_map_power,
        Stage::Agg(AggKind::Count) => step_count,
        Stage::Agg(AggKind::Sum) | Stage::Agg(AggKind::Avg) => step_sum,
        Stage::Agg(AggKind::Max) => step_max,
        Stage::Agg(AggKind::Min) => step_min,
        Stage::StreamOf => step_identity,
        Stage::RadixCombine { .. } => step_radix,
        Stage::Window(_) => step_window,
        Stage::Take { .. } => step_take,
        Stage::Bandwidth => step_bandwidth,
        Stage::Quantile { .. } => step_quantile,
        Stage::Arith { .. } => step_arith,
        Stage::Cmp { .. } => step_cmp,
        Stage::Filter { .. } => step_filter,
    }
}

fn step_identity(
    _s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    out.push(value);
    Ok(())
}

macro_rules! step_map {
    ($name:ident, $f:expr) => {
        fn $name(
            _s: &mut StageState,
            value: Value,
            _from: Option<SpHandle>,
            out: &mut Vec<Value>,
        ) -> Result<(), EngineError> {
            out.push(funcs::apply_map($f, value)?);
            Ok(())
        }
    };
}

step_map!(step_map_odd, MapFunc::Odd);
step_map!(step_map_even, MapFunc::Even);
step_map!(step_map_fft, MapFunc::Fft);
step_map!(step_map_power, MapFunc::Power);

fn step_count(
    s: &mut StageState,
    _value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Agg { count, .. } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    *count += 1;
    Ok(())
}

fn step_sum(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Agg {
        count,
        sum_int,
        sum_real,
        saw_real,
        ..
    } = s
    else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    *count += 1;
    let Some(x) = value.as_real() else {
        return Err(EngineError::type_error("number", &value, "aggregate"));
    };
    match &value {
        Value::Integer(i) => *sum_int += i,
        _ => {
            *saw_real = true;
            *sum_real += x;
        }
    }
    Ok(())
}

fn step_max(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Agg { count, best, .. } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    *count += 1;
    let Some(x) = value.as_real() else {
        return Err(EngineError::type_error("number", &value, "aggregate"));
    };
    if best.as_ref().and_then(Value::as_real).is_none_or(|b| x > b) {
        *best = Some(value);
    }
    Ok(())
}

fn step_min(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Agg { count, best, .. } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    *count += 1;
    let Some(x) = value.as_real() else {
        return Err(EngineError::type_error("number", &value, "aggregate"));
    };
    if best.as_ref().and_then(Value::as_real).is_none_or(|b| x < b) {
        *best = Some(value);
    }
    Ok(())
}

fn step_radix(
    s: &mut StageState,
    value: Value,
    from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::RadixCombine {
        first,
        second,
        q_first,
        q_second,
    } = s
    else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    match from {
        Some(h) if h == *first => q_first.push_back(value),
        Some(h) if h == *second => q_second.push_back(value),
        _ => {
            return Err(EngineError::Runtime(format!(
                "radixcombine received an element from an unexpected producer {from:?}"
            )))
        }
    }
    while !q_first.is_empty() && !q_second.is_empty() {
        let odd = q_first.pop_front().expect("non-empty");
        let even = q_second.pop_front().expect("non-empty");
        out.push(funcs::radix_combine(even, odd)?);
    }
    Ok(())
}

fn step_window(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Window(w) = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    out.extend(w.push(value)?);
    Ok(())
}

fn step_take(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Take { remaining } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    if *remaining > 0 {
        *remaining -= 1;
        out.push(value);
    }
    Ok(())
}

fn step_bandwidth(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Bandwidth { bytes, last_nanos } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    crate::ops::bandwidth_accumulate(bytes, last_nanos, &value)
}

fn step_quantile(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Quantile { hist, .. } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    crate::ops::quantile_accumulate(hist, &value)
}

fn step_arith(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Arith { op, rhs } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    out.push(arith_apply(*op, value, rhs)?);
    Ok(())
}

fn step_cmp(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Cmp { op, rhs } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    out.push(Value::Bool(cmp_apply(*op, &value, rhs)?));
    Ok(())
}

fn step_filter(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Filter { op, rhs } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    if cmp_apply(*op, &value, rhs)? {
        out.push(value);
    }
    Ok(())
}

/// The runtime's per-RP executor: the fused fast path by default, the
/// interpreted chain as the `--fuse off` fallback.
#[derive(Debug)]
pub(crate) enum ExecChain {
    /// Tier 3: the recursive interpreter.
    Interpreted(StageChain),
    /// Tier 2: the fused jump-table chain.
    Fused(FusedChain),
}

impl ExecChain {
    /// Builds the executor selected by `fuse` for a prepared program.
    pub(crate) fn new(program: &FusedProgram, fuse: bool) -> ExecChain {
        if fuse {
            ExecChain::Fused(FusedChain::new(program))
        } else {
            ExecChain::Interpreted(StageChain::from_stages(&program.stages))
        }
    }

    /// Feeds one element through, appending outputs to `out`.
    pub(crate) fn process_into(
        &mut self,
        value: Value,
        from: Option<SpHandle>,
        out: &mut Vec<Value>,
    ) -> Result<(), EngineError> {
        match self {
            ExecChain::Interpreted(c) => {
                out.extend(c.process(value, from)?);
                Ok(())
            }
            ExecChain::Fused(f) => f.process_into(value, from, out),
        }
    }

    /// Whether the executor could use *any* columnar pass (absorbing or
    /// relay) on some batch shape. The runtime consults this before
    /// transposing a delivered run, so chains that can never admit —
    /// and the interpreted reference, always — skip the decomposition
    /// work entirely.
    pub(crate) fn wants_columnar(&self) -> bool {
        match self {
            ExecChain::Interpreted(_) => false,
            ExecChain::Fused(f) => f.columnar_ok || f.relay_ok,
        }
    }

    /// Absorber admission over an already-transposed batch.
    pub(crate) fn columnar_admit_cols(&self, cols: &ColumnarBatch) -> Option<ColumnarAdmit> {
        match self {
            ExecChain::Interpreted(_) => None,
            ExecChain::Fused(f) => f.columnar_admit_cols(cols),
        }
    }

    /// Relay admission over an already-transposed batch.
    pub(crate) fn relay_admit_cols(&self, cols: &ColumnarBatch) -> Option<RelayAdmit> {
        match self {
            ExecChain::Interpreted(_) => None,
            ExecChain::Fused(f) => f.relay_admit_cols(cols),
        }
    }

    /// Absorbs an admitted batch as whole columns.
    pub(crate) fn process_admitted(&mut self, admit: ColumnarAdmit) -> Result<(), EngineError> {
        match self {
            ExecChain::Interpreted(_) => unreachable!("interpreted chains never admit batches"),
            ExecChain::Fused(f) => f.process_admitted(admit),
        }
    }

    /// Runs a relay-admitted batch, returning the surviving column and
    /// the output-row → input-row mapping.
    pub(crate) fn process_relayed(
        &mut self,
        admit: RelayAdmit,
    ) -> (ColumnarBatch, Option<SelectionVector>) {
        match self {
            ExecChain::Interpreted(_) => unreachable!("interpreted chains never admit batches"),
            ExecChain::Fused(f) => f.process_relayed(admit),
        }
    }

    /// Signals end of stream; aggregates flush.
    pub(crate) fn finish(&mut self) -> Result<Vec<Value>, EngineError> {
        match self {
            ExecChain::Interpreted(c) => c.finish(),
            ExecChain::Fused(f) => f.finish(),
        }
    }

    /// Walks the executor's mutable state through a coalescing probe.
    pub(crate) fn probe(
        &mut self,
        p: &mut StateProbe<'_>,
        probe_value: &mut dyn FnMut(&Value, &mut StateProbe<'_>),
    ) {
        match self {
            ExecChain::Interpreted(c) => c.probe(p, probe_value),
            ExecChain::Fused(f) => f.probe(p, probe_value),
        }
    }

    /// Allocates explain-analyze tally slots (one per stage). Before
    /// this call the tally slice is empty and every update is a no-op
    /// bounds check.
    pub(crate) fn enable_profiling(&mut self) {
        match self {
            ExecChain::Interpreted(c) => c.enable_profiling(),
            ExecChain::Fused(f) => f.chain.enable_profiling(),
        }
    }

    /// The per-stage tallies (empty unless profiling is enabled).
    pub(crate) fn tally(&self) -> &[crate::profile::StageTally] {
        match self {
            ExecChain::Interpreted(c) => &c.tally,
            ExecChain::Fused(f) => &f.chain.tally,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::InputKind;

    fn pipeline(stages: Vec<Stage>) -> Pipeline {
        Pipeline {
            input: InputKind::Const { values: vec![] },
            stages,
        }
    }

    fn run_both(
        stages: Vec<Stage>,
        feed: &[(Value, Option<SpHandle>)],
    ) -> (Vec<Value>, Vec<Value>) {
        let p = pipeline(stages);
        let program = FusedProgram::compile(&p);
        let mut fused = FusedChain::new(&program);
        let mut interp = StageChain::new(&p);
        let mut fused_out = Vec::new();
        for (v, from) in feed {
            fused
                .process_into(v.clone(), *from, &mut fused_out)
                .unwrap();
        }
        fused_out.extend(fused.finish().unwrap());
        let mut interp_out = Vec::new();
        for (v, from) in feed {
            interp_out.extend(interp.process(v.clone(), *from).unwrap());
        }
        interp_out.extend(interp.finish().unwrap());
        (fused_out, interp_out)
    }

    #[test]
    fn empty_program_is_identity() {
        let (f, i) = run_both(vec![], &[(Value::Integer(5), None)]);
        assert_eq!(f, i);
        assert_eq!(f, vec![Value::Integer(5)]);
    }

    #[test]
    fn fused_matches_interpreted_on_map_agg_take() {
        let feed: Vec<(Value, Option<SpHandle>)> = (0..10)
            .map(|i| (Value::synthetic_array(256 + i), None))
            .collect();
        let (f, i) = run_both(
            vec![
                Stage::Map(MapFunc::Odd),
                Stage::Take { limit: 6 },
                Stage::Agg(AggKind::Count),
            ],
            &feed,
        );
        assert_eq!(f, i);
        assert_eq!(f, vec![Value::Integer(6)]);
    }

    #[test]
    fn fused_type_errors_match_interpreted() {
        let p = pipeline(vec![Stage::Agg(AggKind::Sum)]);
        let program = FusedProgram::compile(&p);
        let mut fused = FusedChain::new(&program);
        let mut interp = StageChain::new(&p);
        let mut out = Vec::new();
        let fe = fused
            .process_into(Value::from("x"), None, &mut out)
            .unwrap_err();
        let ie = interp.process(Value::from("x"), None).unwrap_err();
        assert_eq!(fe.to_string(), ie.to_string());
    }

    #[test]
    fn cost_model_matches_stage_walk() {
        let p = pipeline(vec![
            Stage::Map(MapFunc::Odd),
            Stage::Map(MapFunc::Fft),
            Stage::RadixCombine {
                first: SpHandle(1),
                second: SpHandle(2),
            },
            Stage::Agg(AggKind::Count),
        ]);
        let mut model = FusedProgram::compile(&p).cost_model();
        for elem_bytes in [0u64, 8, 1000, 1001, 1_000_000] {
            let mut bytes = elem_bytes;
            let mut want = 0u64;
            for s in &p.stages {
                match s {
                    Stage::Map(f) => {
                        want += funcs::map_cost_bytes(*f, bytes);
                        if matches!(f, MapFunc::Odd | MapFunc::Even) {
                            bytes /= 2;
                        }
                    }
                    Stage::RadixCombine { .. } => want += bytes,
                    _ => {}
                }
            }
            assert_eq!(model.cost(elem_bytes), want);
            // The memo must not change the answer.
            assert_eq!(model.cost(elem_bytes), want);
        }
    }

    #[test]
    fn fused_matches_interpreted_on_bandwidth() {
        let feed: Vec<(Value, Option<SpHandle>)> = (1..=5u64)
            .map(|i| (crate::ops::metric_sample(0, i * 1_000_000, 1000), None))
            .collect();
        let (f, i) = run_both(vec![Stage::Bandwidth], &feed);
        assert_eq!(f, i);
        assert_eq!(f, vec![Value::Real(5000.0 / 0.005)]);
    }

    #[test]
    fn cost_model_is_free_without_costly_stages() {
        let p = pipeline(vec![Stage::Agg(AggKind::Count), Stage::StreamOf]);
        let mut model = FusedProgram::compile(&p).cost_model();
        assert_eq!(model.cost(123_456), 0);
    }
}
