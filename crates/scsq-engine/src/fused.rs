//! Fused stage programs: the per-event fast path.
//!
//! The interpreted [`StageChain`] re-matches on every stage enum for
//! every element and allocates a fresh `Vec<Value>` per stage per call.
//! That is fine at end-of-stream flush rates but dominates the
//! per-event execution path whenever train coalescing cannot fire
//! (jittered service times, data-dependent stages). A [`FusedProgram`]
//! is the `Scsq::prepare`-time lowering of a pipeline: each stage is
//! resolved once to a direct jump-table entry (`StageFn`) and the
//! compute-cost accounting is compiled to a compact op list with a
//! one-entry memo, so the inner loop is a straight call chain with no
//! enum dispatch, no re-validation, and — together with the chain's
//! reusable ping-pong scratch buffers — no allocation per tuple.
//!
//! Correctness bar: the fused executor mutates the *same*
//! `StageState` representation as the interpreter, feeds every stage
//! the same input sequence in the same order (stages are
//! order-preserving stateful flat-maps, so breadth-first scratch
//! passes and the interpreter's depth-first recursion produce the same
//! outputs), and delegates end-of-stream flushing and coalescer probes
//! to the interpreted chain. Byte-identical figure CSVs with fusion on
//! or off are enforced by `tests/fuse_csv.rs`.

use crate::columnar;
use crate::error::EngineError;
use crate::funcs;
use crate::ops::{AggKind, MapFunc, Pipeline, Stage, StageChain, StageState};
use scsq_ql::column::METRIC_COLUMNS;
use scsq_ql::{Batch, ColumnarBatch, SpHandle, Value};
use scsq_sim::StateProbe;

/// One compiled compute-cost operation. Only stages that charge CPU
/// time appear; everything else is dropped at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostOp {
    /// An elementwise function charged via `funcs::map_cost_bytes`;
    /// decimating maps halve the element size seen downstream.
    Map(MapFunc),
    /// A radix combine charged one unit per element byte.
    Radix,
}

/// A pipeline lowered at prepare time: the validated stage list plus
/// the compiled cost ops. Pure data (no function pointers), so it can
/// live inside the shared [`crate::builder::QueryGraph`] and be
/// compared/cloned like the rest of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProgram {
    /// The stage list this program was lowered from.
    pub stages: Vec<Stage>,
    cost_ops: Vec<CostOp>,
}

impl FusedProgram {
    /// Lowers a pipeline's stage chain into a fused program.
    pub fn compile(pipeline: &Pipeline) -> FusedProgram {
        let cost_ops = pipeline
            .stages
            .iter()
            .filter_map(|s| match s {
                Stage::Map(f) => Some(CostOp::Map(*f)),
                Stage::RadixCombine { .. } => Some(CostOp::Radix),
                _ => None,
            })
            .collect();
        FusedProgram {
            stages: pipeline.stages.clone(),
            cost_ops,
        }
    }

    /// Instantiates the per-run cost accounting for this program.
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            ops: self.cost_ops.clone(),
            memo: None,
        }
    }
}

/// Per-run compute-cost accounting: the compiled op list plus a
/// single-entry memo. Streaming workloads feed long runs of
/// identically-sized elements, so the memo turns the per-element cost
/// walk into one comparison.
#[derive(Debug)]
pub struct CostModel {
    ops: Vec<CostOp>,
    memo: Option<(u64, u64)>,
}

impl CostModel {
    /// CPU cost (in byte-equivalents) of pushing one element of
    /// `elem_bytes` marshaled bytes through the chain. Identical to
    /// walking the stage list per element: decimation halves the size
    /// seen by later stages.
    pub fn cost(&mut self, elem_bytes: u64) -> u64 {
        if self.ops.is_empty() {
            return 0;
        }
        if let Some((b, c)) = self.memo {
            if b == elem_bytes {
                return c;
            }
        }
        let mut bytes = elem_bytes;
        let mut cost = 0u64;
        for op in &self.ops {
            match op {
                CostOp::Map(f) => {
                    cost += funcs::map_cost_bytes(*f, bytes);
                    if matches!(f, MapFunc::Odd | MapFunc::Even) {
                        bytes /= 2;
                    }
                }
                CostOp::Radix => cost += bytes,
            }
        }
        self.memo = Some((elem_bytes, cost));
        cost
    }
}

/// One fused stage step: consume `value`, mutate the stage's state,
/// append any outputs. Resolved once per stage at chain build time.
type StageFn =
    fn(&mut StageState, Value, Option<SpHandle>, &mut Vec<Value>) -> Result<(), EngineError>;

/// The fused executor: the interpreter's stage states driven by a
/// pre-resolved jump table over reusable scratch buffers.
#[derive(Debug)]
pub struct FusedChain {
    chain: StageChain,
    ops: Vec<StageFn>,
    cur: Vec<Value>,
    nxt: Vec<Value>,
    /// Whether [`FusedChain::process_batch_columnar`] may apply: every
    /// stage is vectorizable (aggregate / `streamof` / `take` /
    /// `bandwidth` — none of which charge CPU cost, so skipping the
    /// per-element cost walk cannot shift time or consume jitter
    /// randomness) and the chain ends in an absorbing aggregate, so a
    /// columnar pass never has to reconstruct leftover tuples.
    columnar_ok: bool,
}

impl FusedChain {
    /// Instantiates runtime state for a fused program.
    pub fn new(program: &FusedProgram) -> FusedChain {
        let ops = program.stages.iter().map(resolve).collect();
        let vectorizable = |s: &Stage| {
            matches!(
                s,
                Stage::Agg(_) | Stage::StreamOf | Stage::Take { .. } | Stage::Bandwidth
            )
        };
        let absorber = |s: &Stage| matches!(s, Stage::Agg(_) | Stage::Bandwidth);
        let columnar_ok =
            program.stages.iter().all(vectorizable) && program.stages.iter().any(absorber);
        FusedChain {
            chain: StageChain::from_stages(&program.stages),
            ops,
            cur: Vec::new(),
            nxt: Vec::new(),
            columnar_ok,
        }
    }

    /// Feeds one element through the chain, appending whatever falls
    /// out the end to `out`. Equivalent to [`StageChain::process`] but
    /// allocation-free after warm-up: elements move between the two
    /// scratch buffers, one stage at a time.
    ///
    /// # Errors
    ///
    /// Type errors when an elementwise function meets an incompatible
    /// value.
    pub fn process_into(
        &mut self,
        value: Value,
        from: Option<SpHandle>,
        out: &mut Vec<Value>,
    ) -> Result<(), EngineError> {
        if self.ops.is_empty() {
            out.push(value);
            return Ok(());
        }
        self.cur.clear();
        self.cur.push(value);
        for (i, op) in self.ops.iter().enumerate() {
            if self.cur.is_empty() {
                return Ok(());
            }
            self.nxt.clear();
            for v in self.cur.drain(..) {
                op(&mut self.chain.stages[i], v, from, &mut self.nxt)?;
            }
            std::mem::swap(&mut self.cur, &mut self.nxt);
        }
        out.append(&mut self.cur);
        Ok(())
    }

    /// Feeds a whole delivered batch through the chain as columns,
    /// dispatching once per column instead of once per element.
    ///
    /// Returns `Ok(true)` when the batch was absorbed columnar-ly —
    /// the chain's stage states then hold exactly what feeding the
    /// elements one at a time would have left (see the fold contracts
    /// in [`crate::columnar`]) and, because the chain ends in an
    /// absorbing aggregate, nothing is emitted before end of stream.
    /// Returns `Ok(false)` without touching any state when the chain
    /// or the batch's column shape is not vectorizable; the caller
    /// falls back to the per-element path, which also reproduces
    /// type-error semantics for ill-typed runs.
    ///
    /// # Errors
    ///
    /// The same error the per-element path would raise on the first
    /// failing element (only `bandwidth` over malformed samples can
    /// fail on a vectorizable shape).
    pub fn process_batch_columnar(&mut self, batch: &Batch) -> Result<bool, EngineError> {
        if !self.columnar_ok || batch.len() < 2 {
            return Ok(false);
        }
        let cols = ColumnarBatch::from_batch(batch);

        // Pre-check (no mutation): the first absorber must be able to
        // consume the batch's column shape. `streamof`/`take` preserve
        // the shape, so only the absorber's requirement matters.
        enum Shape {
            Int64,
            Float64,
            Metric,
            Other,
        }
        let shape = if cols.width() == 3
            && METRIC_COLUMNS
                .iter()
                .zip(cols.columns())
                .all(|(want, (name, _))| name == want)
        {
            Shape::Metric
        } else {
            match cols.single() {
                Some(c) if !c.all_valid() => Shape::Other,
                Some(c) if c.as_i64().is_some() => Shape::Int64,
                Some(c) if c.as_f64().is_some() => Shape::Float64,
                _ => Shape::Other,
            }
        };
        let absorber = self
            .chain
            .stages
            .iter()
            .find(|s| matches!(s, StageState::Agg { .. } | StageState::Bandwidth { .. }))
            .expect("columnar_ok implies an absorber");
        let ok = match absorber {
            StageState::Agg {
                kind: AggKind::Count,
                ..
            } => true,
            StageState::Agg { .. } => matches!(shape, Shape::Int64 | Shape::Float64),
            StageState::Bandwidth { .. } => {
                matches!(shape, Shape::Metric) && cols.columns().iter().all(|(_, c)| c.all_valid())
            }
            _ => unreachable!("absorber match above"),
        };
        if !ok {
            return Ok(false);
        }

        // Execute: `take` trims the view, the absorber folds it.
        let mut view = cols;
        for state in &mut self.chain.stages {
            match state {
                StageState::StreamOf => {}
                StageState::Take { remaining } => {
                    let k = (view.rows() as u64).min(*remaining);
                    *remaining -= k;
                    view = view.slice(0, k as usize);
                }
                StageState::Agg {
                    kind,
                    count,
                    sum_int,
                    sum_real,
                    saw_real,
                    best,
                } => {
                    match kind {
                        AggKind::Count => *count += view.rows() as i64,
                        AggKind::Sum | AggKind::Avg => {
                            let c = view.single().expect("pre-checked: single column");
                            if let Some(xs) = c.as_i64() {
                                columnar::fold_sum_i64(count, sum_int, xs);
                            } else {
                                let xs = c.as_f64().expect("pre-checked: numeric column");
                                columnar::fold_sum_f64(count, sum_real, saw_real, xs);
                            }
                        }
                        AggKind::Max | AggKind::Min => {
                            let is_better: fn(f64, f64) -> bool = if *kind == AggKind::Max {
                                |x, b| x > b
                            } else {
                                |x, b| x < b
                            };
                            let c = view.single().expect("pre-checked: single column");
                            if let Some(xs) = c.as_i64() {
                                columnar::fold_best_i64(count, best, xs, is_better);
                            } else {
                                let xs = c.as_f64().expect("pre-checked: numeric column");
                                columnar::fold_best_f64(count, best, xs, is_better);
                            }
                        }
                    }
                    return Ok(true);
                }
                StageState::Bandwidth { bytes, last_nanos } => {
                    let col = |name| {
                        view.column(name)
                            .expect("pre-checked: metric columns present")
                    };
                    let (channel, time_ns, sample_bytes) = (
                        col(METRIC_COLUMNS[0]),
                        col(METRIC_COLUMNS[1]),
                        col(METRIC_COLUMNS[2]),
                    );
                    columnar::fold_bandwidth(
                        bytes,
                        last_nanos,
                        channel.as_i64().expect("metric columns are Int64"),
                        time_ns.as_i64().expect("metric columns are Int64"),
                        sample_bytes.as_i64().expect("metric columns are Int64"),
                    )?;
                    return Ok(true);
                }
                _ => unreachable!("columnar_ok excludes non-vectorizable stages"),
            }
        }
        unreachable!("columnar_ok implies an absorber terminates the walk")
    }

    /// Signals end of stream; aggregates flush. Delegates to the
    /// interpreted chain (it runs once per RP, off the hot path, and
    /// sharing the code makes flush semantics identical by
    /// construction).
    ///
    /// # Errors
    ///
    /// Propagates type errors from downstream stages processing flushed
    /// values.
    pub fn finish(&mut self) -> Result<Vec<Value>, EngineError> {
        self.chain.finish()
    }

    /// Walks the chain's mutable state through a coalescing probe —
    /// the same walk as the interpreted chain, over the same states.
    pub(crate) fn probe(
        &mut self,
        p: &mut StateProbe<'_>,
        probe_value: &mut dyn FnMut(&Value, &mut StateProbe<'_>),
    ) {
        self.chain.probe(p, probe_value);
    }
}

/// Resolves one stage to its jump-table entry. Aggregates resolve per
/// kind and maps per function, so no per-element `match` survives into
/// the inner loop.
fn resolve(stage: &Stage) -> StageFn {
    match stage {
        Stage::Map(MapFunc::Odd) => step_map_odd,
        Stage::Map(MapFunc::Even) => step_map_even,
        Stage::Map(MapFunc::Fft) => step_map_fft,
        Stage::Map(MapFunc::Power) => step_map_power,
        Stage::Agg(AggKind::Count) => step_count,
        Stage::Agg(AggKind::Sum) | Stage::Agg(AggKind::Avg) => step_sum,
        Stage::Agg(AggKind::Max) => step_max,
        Stage::Agg(AggKind::Min) => step_min,
        Stage::StreamOf => step_identity,
        Stage::RadixCombine { .. } => step_radix,
        Stage::Window(_) => step_window,
        Stage::Take { .. } => step_take,
        Stage::Bandwidth => step_bandwidth,
    }
}

fn step_identity(
    _s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    out.push(value);
    Ok(())
}

macro_rules! step_map {
    ($name:ident, $f:expr) => {
        fn $name(
            _s: &mut StageState,
            value: Value,
            _from: Option<SpHandle>,
            out: &mut Vec<Value>,
        ) -> Result<(), EngineError> {
            out.push(funcs::apply_map($f, value)?);
            Ok(())
        }
    };
}

step_map!(step_map_odd, MapFunc::Odd);
step_map!(step_map_even, MapFunc::Even);
step_map!(step_map_fft, MapFunc::Fft);
step_map!(step_map_power, MapFunc::Power);

fn step_count(
    s: &mut StageState,
    _value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Agg { count, .. } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    *count += 1;
    Ok(())
}

fn step_sum(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Agg {
        count,
        sum_int,
        sum_real,
        saw_real,
        ..
    } = s
    else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    *count += 1;
    let Some(x) = value.as_real() else {
        return Err(EngineError::type_error("number", &value, "aggregate"));
    };
    match &value {
        Value::Integer(i) => *sum_int += i,
        _ => {
            *saw_real = true;
            *sum_real += x;
        }
    }
    Ok(())
}

fn step_max(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Agg { count, best, .. } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    *count += 1;
    let Some(x) = value.as_real() else {
        return Err(EngineError::type_error("number", &value, "aggregate"));
    };
    if best.as_ref().and_then(Value::as_real).is_none_or(|b| x > b) {
        *best = Some(value);
    }
    Ok(())
}

fn step_min(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Agg { count, best, .. } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    *count += 1;
    let Some(x) = value.as_real() else {
        return Err(EngineError::type_error("number", &value, "aggregate"));
    };
    if best.as_ref().and_then(Value::as_real).is_none_or(|b| x < b) {
        *best = Some(value);
    }
    Ok(())
}

fn step_radix(
    s: &mut StageState,
    value: Value,
    from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::RadixCombine {
        first,
        second,
        q_first,
        q_second,
    } = s
    else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    match from {
        Some(h) if h == *first => q_first.push_back(value),
        Some(h) if h == *second => q_second.push_back(value),
        _ => {
            return Err(EngineError::Runtime(format!(
                "radixcombine received an element from an unexpected producer {from:?}"
            )))
        }
    }
    while !q_first.is_empty() && !q_second.is_empty() {
        let odd = q_first.pop_front().expect("non-empty");
        let even = q_second.pop_front().expect("non-empty");
        out.push(funcs::radix_combine(even, odd)?);
    }
    Ok(())
}

fn step_window(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Window(w) = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    out.extend(w.push(value)?);
    Ok(())
}

fn step_take(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Take { remaining } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    if *remaining > 0 {
        *remaining -= 1;
        out.push(value);
    }
    Ok(())
}

fn step_bandwidth(
    s: &mut StageState,
    value: Value,
    _from: Option<SpHandle>,
    _out: &mut Vec<Value>,
) -> Result<(), EngineError> {
    let StageState::Bandwidth { bytes, last_nanos } = s else {
        unreachable!("fused program and stage states built from the same stage list")
    };
    crate::ops::bandwidth_accumulate(bytes, last_nanos, &value)
}

/// The runtime's per-RP executor: the fused fast path by default, the
/// interpreted chain as the `--fuse off` fallback.
#[derive(Debug)]
pub(crate) enum ExecChain {
    /// Tier 3: the recursive interpreter.
    Interpreted(StageChain),
    /// Tier 2: the fused jump-table chain.
    Fused(FusedChain),
}

impl ExecChain {
    /// Builds the executor selected by `fuse` for a prepared program.
    pub(crate) fn new(program: &FusedProgram, fuse: bool) -> ExecChain {
        if fuse {
            ExecChain::Fused(FusedChain::new(program))
        } else {
            ExecChain::Interpreted(StageChain::from_stages(&program.stages))
        }
    }

    /// Feeds one element through, appending outputs to `out`.
    pub(crate) fn process_into(
        &mut self,
        value: Value,
        from: Option<SpHandle>,
        out: &mut Vec<Value>,
    ) -> Result<(), EngineError> {
        match self {
            ExecChain::Interpreted(c) => {
                out.extend(c.process(value, from)?);
                Ok(())
            }
            ExecChain::Fused(f) => f.process_into(value, from, out),
        }
    }

    /// Attempts to absorb a whole delivered batch as columns. `Ok(true)`
    /// means the batch is fully consumed; `Ok(false)` means the caller
    /// must fall back to feeding elements one at a time (always the
    /// case for the interpreted executor, which is the byte-identity
    /// reference).
    pub(crate) fn try_process_batch(&mut self, batch: &Batch) -> Result<bool, EngineError> {
        match self {
            ExecChain::Interpreted(_) => Ok(false),
            ExecChain::Fused(f) => f.process_batch_columnar(batch),
        }
    }

    /// Signals end of stream; aggregates flush.
    pub(crate) fn finish(&mut self) -> Result<Vec<Value>, EngineError> {
        match self {
            ExecChain::Interpreted(c) => c.finish(),
            ExecChain::Fused(f) => f.finish(),
        }
    }

    /// Walks the executor's mutable state through a coalescing probe.
    pub(crate) fn probe(
        &mut self,
        p: &mut StateProbe<'_>,
        probe_value: &mut dyn FnMut(&Value, &mut StateProbe<'_>),
    ) {
        match self {
            ExecChain::Interpreted(c) => c.probe(p, probe_value),
            ExecChain::Fused(f) => f.probe(p, probe_value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::InputKind;

    fn pipeline(stages: Vec<Stage>) -> Pipeline {
        Pipeline {
            input: InputKind::Const { values: vec![] },
            stages,
        }
    }

    fn run_both(
        stages: Vec<Stage>,
        feed: &[(Value, Option<SpHandle>)],
    ) -> (Vec<Value>, Vec<Value>) {
        let p = pipeline(stages);
        let program = FusedProgram::compile(&p);
        let mut fused = FusedChain::new(&program);
        let mut interp = StageChain::new(&p);
        let mut fused_out = Vec::new();
        for (v, from) in feed {
            fused
                .process_into(v.clone(), *from, &mut fused_out)
                .unwrap();
        }
        fused_out.extend(fused.finish().unwrap());
        let mut interp_out = Vec::new();
        for (v, from) in feed {
            interp_out.extend(interp.process(v.clone(), *from).unwrap());
        }
        interp_out.extend(interp.finish().unwrap());
        (fused_out, interp_out)
    }

    #[test]
    fn empty_program_is_identity() {
        let (f, i) = run_both(vec![], &[(Value::Integer(5), None)]);
        assert_eq!(f, i);
        assert_eq!(f, vec![Value::Integer(5)]);
    }

    #[test]
    fn fused_matches_interpreted_on_map_agg_take() {
        let feed: Vec<(Value, Option<SpHandle>)> = (0..10)
            .map(|i| (Value::synthetic_array(256 + i), None))
            .collect();
        let (f, i) = run_both(
            vec![
                Stage::Map(MapFunc::Odd),
                Stage::Take { limit: 6 },
                Stage::Agg(AggKind::Count),
            ],
            &feed,
        );
        assert_eq!(f, i);
        assert_eq!(f, vec![Value::Integer(6)]);
    }

    #[test]
    fn fused_type_errors_match_interpreted() {
        let p = pipeline(vec![Stage::Agg(AggKind::Sum)]);
        let program = FusedProgram::compile(&p);
        let mut fused = FusedChain::new(&program);
        let mut interp = StageChain::new(&p);
        let mut out = Vec::new();
        let fe = fused
            .process_into(Value::from("x"), None, &mut out)
            .unwrap_err();
        let ie = interp.process(Value::from("x"), None).unwrap_err();
        assert_eq!(fe.to_string(), ie.to_string());
    }

    #[test]
    fn cost_model_matches_stage_walk() {
        let p = pipeline(vec![
            Stage::Map(MapFunc::Odd),
            Stage::Map(MapFunc::Fft),
            Stage::RadixCombine {
                first: SpHandle(1),
                second: SpHandle(2),
            },
            Stage::Agg(AggKind::Count),
        ]);
        let mut model = FusedProgram::compile(&p).cost_model();
        for elem_bytes in [0u64, 8, 1000, 1001, 1_000_000] {
            let mut bytes = elem_bytes;
            let mut want = 0u64;
            for s in &p.stages {
                match s {
                    Stage::Map(f) => {
                        want += funcs::map_cost_bytes(*f, bytes);
                        if matches!(f, MapFunc::Odd | MapFunc::Even) {
                            bytes /= 2;
                        }
                    }
                    Stage::RadixCombine { .. } => want += bytes,
                    _ => {}
                }
            }
            assert_eq!(model.cost(elem_bytes), want);
            // The memo must not change the answer.
            assert_eq!(model.cost(elem_bytes), want);
        }
    }

    #[test]
    fn fused_matches_interpreted_on_bandwidth() {
        let feed: Vec<(Value, Option<SpHandle>)> = (1..=5u64)
            .map(|i| (crate::ops::metric_sample(0, i * 1_000_000, 1000), None))
            .collect();
        let (f, i) = run_both(vec![Stage::Bandwidth], &feed);
        assert_eq!(f, i);
        assert_eq!(f, vec![Value::Real(5000.0 / 0.005)]);
    }

    #[test]
    fn cost_model_is_free_without_costly_stages() {
        let p = pipeline(vec![Stage::Agg(AggKind::Count), Stage::StreamOf]);
        let mut model = FusedProgram::compile(&p).cost_model();
        assert_eq!(model.cost(123_456), 0);
    }
}
