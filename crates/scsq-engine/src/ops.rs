//! SQEP operators: the compiled form of a stream process's sub-query and
//! the element-level execution logic.
//!
//! §2.3: each RP compiles its sub-query into a local Stream Query
//! Execution Plan (SQEP) and interprets it as data arrives. A
//! [`Pipeline`] is that plan: one input ([`InputKind`]), a chain of
//! [`Stage`]s, each either per-element (map, radix combine, window) or a
//! terminal aggregate that emits when the finite stream ends.

use crate::error::EngineError;
use crate::funcs;
use crate::window::{WindowSpec, WindowState};
use scsq_ql::{SpHandle, Value};
use scsq_sim::{LatencyHistogram, StateProbe};
use std::collections::VecDeque;

/// Where a pipeline's elements come from.
#[derive(Debug, Clone, PartialEq)]
pub enum InputKind {
    /// `gen_array(bytes, count)` — the paper's workload generator: a
    /// finite stream of `count` synthetic arrays of `bytes` bytes.
    Gen {
        /// Bytes per array.
        bytes: u64,
        /// Number of arrays.
        count: u64,
    },
    /// `extract(p)` / `merge(bag)` — subscribe to one or more producer
    /// SPs. `merge` "terminates when (if ever) the last stream process
    /// terminates" (§2.4).
    Receive {
        /// Producer stream processes, in query order.
        producers: Vec<SpHandle>,
    },
    /// `streamof(v)` over an already-evaluated value: emit the value(s)
    /// once and terminate.
    Const {
        /// The values to emit.
        values: Vec<Value>,
    },
    /// `receiver(name)` — a named external signal source (the paper's
    /// radix2 input): a finite stream of signal arrays.
    Receiver {
        /// Source name.
        name: String,
        /// Number of arrays to emit.
        arrays: u64,
        /// Samples per array (power of two for the FFT pipeline).
        samples: usize,
    },
    /// `grep(pattern, file)` — emit the matching lines of a (synthetic)
    /// file; the mapreduce example's map task.
    Grep {
        /// Substring to search for.
        pattern: String,
        /// File name in the synthetic corpus.
        file: String,
    },
    /// `metrics(p)` — the self-measurement source: one delivery sample
    /// per receive buffer on every channel leaving a target SP. The
    /// runtime synthesizes the samples (bags of `{channel, time_ns,
    /// bytes}`) as deliveries happen; the pipeline itself has no
    /// producers to pull from, so the observed query's channels are
    /// not re-routed through the observer.
    Metrics {
        /// The SPs whose outbound channels are observed.
        targets: Vec<SpHandle>,
    },
    /// `latency(p)` — the latency self-measurement source: one integer
    /// per element delivered on any channel leaving a target SP, the
    /// element's ingress→egress latency in simulated nanoseconds
    /// (enqueue at the producer to visibility at the subscriber). Like
    /// [`InputKind::Metrics`], the runtime synthesizes the samples as
    /// deliveries happen and the observer never perturbs the observed
    /// channels.
    Latency {
        /// The SPs whose outbound channels are observed.
        targets: Vec<SpHandle>,
    },
}

/// Per-element transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapFunc {
    /// `odd(x)` — odd-indexed samples of each array.
    Odd,
    /// `even(x)` — even-indexed samples of each array.
    Even,
    /// `fft(x)` — FFT of each array.
    Fft,
    /// `power(x)` — per-bin squared magnitude of each array.
    Power,
}

/// Terminal aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `count(b)` — number of elements.
    Count,
    /// `sum(b)` — numeric sum of elements.
    Sum,
    /// `max(b)` — numeric maximum.
    Max,
    /// `min(b)` — numeric minimum.
    Min,
    /// `avg(b)` — numeric mean.
    Avg,
}

impl AggKind {
    /// Whether elements must be numbers.
    pub fn numeric(self) -> bool {
        !matches!(self, AggKind::Count)
    }
}

/// Elementwise arithmetic against a constant (`arith(s, op, k)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `'+'` — addition.
    Add,
    /// `'-'` — subtraction.
    Sub,
    /// `'*'` — multiplication.
    Mul,
}

impl ArithOp {
    /// Parses the query spelling of the operator.
    pub fn parse(op: &str) -> Option<ArithOp> {
        Some(match op {
            "+" => ArithOp::Add,
            "-" => ArithOp::Sub,
            "*" => ArithOp::Mul,
            _ => return None,
        })
    }

    /// The query spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
        }
    }
}

/// Elementwise comparison against a constant (`cmp` / `filter`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `'<'`.
    Lt,
    /// `'<='`.
    Le,
    /// `'>'`.
    Gt,
    /// `'>='`.
    Ge,
    /// `'='`.
    Eq,
    /// `'!='`.
    Ne,
}

impl CmpOp {
    /// Parses the query spelling of the operator.
    pub fn parse(op: &str) -> Option<CmpOp> {
        Some(match op {
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            "=" | "==" => CmpOp::Eq,
            "!=" | "<>" => CmpOp::Ne,
            _ => return None,
        })
    }

    /// The query spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }

    /// Applies the operator to a three-way ordering.
    pub(crate) fn holds(self, ord: std::cmp::Ordering) -> bool {
        match self {
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
        }
    }
}

/// Applies `value op rhs`. Integer ⊕ integer stays integer (wrapping,
/// like the column kernels); any real operand widens to real. The single
/// source of truth shared by the interpreted chain, the fused step
/// functions, and mirrored exactly by the columnar kernels.
pub(crate) fn arith_apply(op: ArithOp, value: Value, rhs: &Value) -> Result<Value, EngineError> {
    match (&value, rhs) {
        (Value::Integer(a), Value::Integer(b)) => Ok(Value::Integer(match op {
            ArithOp::Add => a.wrapping_add(*b),
            ArithOp::Sub => a.wrapping_sub(*b),
            ArithOp::Mul => a.wrapping_mul(*b),
        })),
        _ => {
            let (Some(a), Some(b)) = (value.as_real(), rhs.as_real()) else {
                return Err(EngineError::type_error("number", &value, "arith"));
            };
            Ok(Value::Real(match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
            }))
        }
    }
}

/// Evaluates `value op rhs` as a boolean. Integer/integer compares
/// exactly; string/string compares lexicographically; any other numeric
/// mix compares as f64. Shared by `cmp` and `filter` on every executor
/// tier.
pub(crate) fn cmp_apply(op: CmpOp, value: &Value, rhs: &Value) -> Result<bool, EngineError> {
    match (value, rhs) {
        (Value::Integer(a), Value::Integer(b)) => Ok(op.holds(a.cmp(b))),
        (Value::Str(a), Value::Str(b)) => Ok(op.holds(a.as_str().cmp(b.as_str()))),
        _ => {
            let (Some(a), Some(b)) = (value.as_real(), rhs.as_real()) else {
                return Err(EngineError::type_error("number", value, "cmp"));
            };
            Ok(cmp_f64(op, a, b))
        }
    }
}

/// IEEE comparison of two reals (NaN compares false everywhere except
/// `!=`, exactly like the raw f64 operators the column kernels use).
pub(crate) fn cmp_f64(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Elementwise function.
    Map(MapFunc),
    /// Terminal aggregate: accumulates, emits one value at end of
    /// stream.
    Agg(AggKind),
    /// `streamof(e)` — identity on stream contents (it only changes the
    /// static type).
    StreamOf,
    /// `radixcombine(merge({o, e}))` — pair the i-th elements of the two
    /// producers and run the radix-2 combine; `first` is the odd-half
    /// FFT stream, `second` the even-half, matching the paper's radix2
    /// function text.
    RadixCombine {
        /// Producer of odd-half FFTs.
        first: SpHandle,
        /// Producer of even-half FFTs.
        second: SpHandle,
    },
    /// Sliding window aggregate (`winagg`).
    Window(WindowSpec),
    /// `take(s, k)` — pass the first k elements, drop the rest: a stop
    /// condition that makes the downstream stream finite (§2.2).
    Take {
        /// Number of elements to pass.
        limit: u64,
    },
    /// `bandwidth(s)` — terminal aggregate over a `metrics` sample
    /// stream: total delivered bytes / time of the last sample, emitted
    /// as one real (bytes/second) at end of stream.
    Bandwidth,
    /// `arith(s, op, k)` — elementwise arithmetic against a constant.
    Arith {
        /// The operator.
        op: ArithOp,
        /// The constant right-hand operand.
        rhs: Value,
    },
    /// `cmp(s, op, k)` — elementwise comparison against a constant;
    /// emits one boolean per element.
    Cmp {
        /// The operator.
        op: CmpOp,
        /// The constant right-hand operand.
        rhs: Value,
    },
    /// `filter(s, op, k)` — pass the elements for which the comparison
    /// holds, drop the rest.
    Filter {
        /// The predicate operator.
        op: CmpOp,
        /// The constant right-hand operand.
        rhs: Value,
    },
    /// `quantile(s, q)` — terminal aggregate: log-bucketed histogram of
    /// the (non-negative numeric) elements, emitting the value at
    /// quantile `q` as one integer at end of stream.
    Quantile {
        /// The quantile in `[0, 1]`.
        q: f64,
    },
}

/// A compiled SQEP.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Element source.
    pub input: InputKind,
    /// Stage chain, source side first.
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// A pipeline that just forwards its input (`extract(b)` as a whole
    /// plan).
    pub fn relay(producers: Vec<SpHandle>) -> Pipeline {
        Pipeline {
            input: InputKind::Receive { producers },
            stages: Vec::new(),
        }
    }

    /// The producers this pipeline subscribes to (empty for sources).
    pub fn producers(&self) -> &[SpHandle] {
        match &self.input {
            InputKind::Receive { producers } => producers,
            _ => &[],
        }
    }
}

/// Runtime state of one stage. Shared between the interpreted chain
/// below and the fused jump-table chain (`crate::fused`): both mutate
/// the same representation, so probes and aggregate flushes are
/// identical by construction regardless of which executor ran.
#[derive(Debug)]
pub(crate) enum StageState {
    Map(MapFunc),
    Agg {
        kind: AggKind,
        count: i64,
        sum_int: i64,
        sum_real: f64,
        saw_real: bool,
        /// Best element so far (max/min), kept as the original value.
        best: Option<Value>,
    },
    StreamOf,
    RadixCombine {
        first: SpHandle,
        second: SpHandle,
        q_first: VecDeque<Value>,
        q_second: VecDeque<Value>,
    },
    Window(WindowState),
    Take {
        remaining: u64,
    },
    Bandwidth {
        /// Delivered bytes summed over all samples seen.
        bytes: u64,
        /// Timestamp (ns) of the latest sample.
        last_nanos: u64,
    },
    Arith {
        op: ArithOp,
        rhs: Value,
    },
    Cmp {
        op: CmpOp,
        rhs: Value,
    },
    Filter {
        op: CmpOp,
        rhs: Value,
    },
    Quantile {
        q: f64,
        /// Boxed: the 64-bucket histogram would otherwise quadruple
        /// every `StageState` — the enum sits in every stage of every
        /// chain, quantile or not.
        hist: Box<LatencyHistogram>,
    },
}

/// Builds one `metrics(p)` delivery sample: a bag `{channel, time_ns,
/// bytes}`. The runtime emits these; [`Stage::Bandwidth`] consumes them.
pub(crate) fn metric_sample(channel: usize, time_nanos: u64, bytes: u64) -> Value {
    Value::Bag(vec![
        Value::Integer(channel as i64),
        Value::Integer(time_nanos as i64),
        Value::Integer(bytes as i64),
    ])
}

/// Destructures a `metrics(p)` sample into `(time_ns, bytes)`. `None`
/// for values of any other shape.
pub(crate) fn metric_sample_parts(value: &Value) -> Option<(u64, u64)> {
    let Value::Bag(items) = value else {
        return None;
    };
    let [Value::Integer(_), Value::Integer(t), Value::Integer(bytes)] = items.as_slice() else {
        return None;
    };
    Some((u64::try_from(*t).ok()?, u64::try_from(*bytes).ok()?))
}

/// Folds one sample into a [`StageState::Bandwidth`] accumulator.
/// Shared by the interpreted and fused executors.
pub(crate) fn bandwidth_accumulate(
    bytes: &mut u64,
    last_nanos: &mut u64,
    value: &Value,
) -> Result<(), EngineError> {
    let Some((t, b)) = metric_sample_parts(value) else {
        return Err(EngineError::type_error("metric sample", value, "bandwidth"));
    };
    *bytes += b;
    if t > *last_nanos {
        *last_nanos = t;
    }
    Ok(())
}

/// Converts a quantile-stage element to the nanosecond value it
/// records: a non-negative integer, or a finite non-negative real
/// truncated to an integer (exactly what the columnar fold kernels
/// do, so the histograms match bit for bit across tiers).
pub(crate) fn quantile_value(value: &Value) -> Result<u64, EngineError> {
    match value {
        Value::Integer(i) if *i >= 0 => Ok(*i as u64),
        Value::Real(r) if r.is_finite() && *r >= 0.0 => Ok(*r as u64),
        _ => Err(EngineError::type_error(
            "non-negative number",
            value,
            "quantile",
        )),
    }
}

/// Folds one element into a [`StageState::Quantile`] histogram.
/// Shared by the interpreted and fused executors.
pub(crate) fn quantile_accumulate(
    hist: &mut LatencyHistogram,
    value: &Value,
) -> Result<(), EngineError> {
    hist.record(quantile_value(value)?);
    Ok(())
}

/// Runtime interpreter for a [`Pipeline`]'s stage chain.
#[derive(Debug)]
pub struct StageChain {
    pub(crate) stages: Vec<StageState>,
    /// Explain-analyze counters, one per stage. Empty unless profiling
    /// is enabled (`StageChain::enable_profiling`), so the per-element
    /// cost of the disabled path is a single bounds check.
    pub(crate) tally: Vec<crate::profile::StageTally>,
}

impl StageChain {
    /// Instantiates runtime state for a pipeline's stages.
    pub fn new(pipeline: &Pipeline) -> StageChain {
        Self::from_stages(&pipeline.stages)
    }

    /// Instantiates runtime state for a bare stage list.
    pub(crate) fn from_stages(stage_list: &[Stage]) -> StageChain {
        let stages = stage_list
            .iter()
            .map(|s| match s {
                Stage::Map(f) => StageState::Map(*f),
                Stage::Agg(kind) => StageState::Agg {
                    kind: *kind,
                    count: 0,
                    sum_int: 0,
                    sum_real: 0.0,
                    saw_real: false,
                    best: None,
                },
                Stage::StreamOf => StageState::StreamOf,
                Stage::RadixCombine { first, second } => StageState::RadixCombine {
                    first: *first,
                    second: *second,
                    q_first: VecDeque::new(),
                    q_second: VecDeque::new(),
                },
                Stage::Window(spec) => StageState::Window(WindowState::new(*spec)),
                Stage::Take { limit } => StageState::Take { remaining: *limit },
                Stage::Bandwidth => StageState::Bandwidth {
                    bytes: 0,
                    last_nanos: 0,
                },
                Stage::Arith { op, rhs } => StageState::Arith {
                    op: *op,
                    rhs: rhs.clone(),
                },
                Stage::Cmp { op, rhs } => StageState::Cmp {
                    op: *op,
                    rhs: rhs.clone(),
                },
                Stage::Filter { op, rhs } => StageState::Filter {
                    op: *op,
                    rhs: rhs.clone(),
                },
                Stage::Quantile { q } => StageState::Quantile {
                    q: *q,
                    hist: Box::new(LatencyHistogram::new()),
                },
            })
            .collect();
        StageChain {
            stages,
            tally: Vec::new(),
        }
    }

    /// Allocates the explain-analyze counters. Called once at RP set-up
    /// when the run is profiled; never on the hot path.
    pub(crate) fn enable_profiling(&mut self) {
        self.tally = vec![crate::profile::StageTally::default(); self.stages.len()];
    }

    /// Feeds one element (from producer `from`, if any) through the
    /// chain; returns the elements that fall out the end.
    ///
    /// # Errors
    ///
    /// Type errors when an elementwise function meets an incompatible
    /// value.
    pub fn process(
        &mut self,
        value: Value,
        from: Option<SpHandle>,
    ) -> Result<Vec<Value>, EngineError> {
        Self::feed(&mut self.stages, &mut self.tally, 0, value, from)
    }

    fn feed(
        stages: &mut [StageState],
        tally: &mut [crate::profile::StageTally],
        idx: usize,
        value: Value,
        from: Option<SpHandle>,
    ) -> Result<Vec<Value>, EngineError> {
        let Some((stage, rest)) = stages[idx..].split_first_mut() else {
            return Ok(vec![value]);
        };
        let outputs: Vec<Value> = match stage {
            StageState::Map(f) => vec![funcs::apply_map(*f, value)?],
            StageState::StreamOf => vec![value],
            StageState::Agg {
                kind,
                count,
                sum_int,
                sum_real,
                saw_real,
                best,
            } => {
                *count += 1;
                if kind.numeric() {
                    let Some(x) = value.as_real() else {
                        return Err(EngineError::type_error("number", &value, "aggregate"));
                    };
                    match kind {
                        AggKind::Count => unreachable!("count is not numeric"),
                        AggKind::Sum | AggKind::Avg => match &value {
                            Value::Integer(i) => *sum_int += i,
                            _ => {
                                *saw_real = true;
                                *sum_real += x;
                            }
                        },
                        AggKind::Max => {
                            let better =
                                best.as_ref().and_then(Value::as_real).is_none_or(|b| x > b);
                            if better {
                                *best = Some(value);
                            }
                        }
                        AggKind::Min => {
                            let better =
                                best.as_ref().and_then(Value::as_real).is_none_or(|b| x < b);
                            if better {
                                *best = Some(value);
                            }
                        }
                    }
                }
                Vec::new()
            }
            StageState::RadixCombine {
                first,
                second,
                q_first,
                q_second,
            } => {
                match from {
                    Some(h) if h == *first => q_first.push_back(value),
                    Some(h) if h == *second => q_second.push_back(value),
                    _ => {
                        return Err(EngineError::Runtime(format!(
                            "radixcombine received an element from an unexpected producer {from:?}"
                        )))
                    }
                }
                let mut out = Vec::new();
                while !q_first.is_empty() && !q_second.is_empty() {
                    let odd = q_first.pop_front().expect("non-empty");
                    let even = q_second.pop_front().expect("non-empty");
                    out.push(funcs::radix_combine(even, odd)?);
                }
                out
            }
            StageState::Window(w) => w.push(value)?,
            StageState::Take { remaining } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    vec![value]
                } else {
                    Vec::new()
                }
            }
            StageState::Bandwidth { bytes, last_nanos } => {
                bandwidth_accumulate(bytes, last_nanos, &value)?;
                Vec::new()
            }
            StageState::Arith { op, rhs } => vec![arith_apply(*op, value, rhs)?],
            StageState::Cmp { op, rhs } => vec![Value::Bool(cmp_apply(*op, &value, rhs)?)],
            StageState::Filter { op, rhs } => {
                if cmp_apply(*op, &value, rhs)? {
                    vec![value]
                } else {
                    Vec::new()
                }
            }
            StageState::Quantile { hist, .. } => {
                quantile_accumulate(hist, &value)?;
                Vec::new()
            }
        };
        if let Some(t) = tally.get_mut(idx) {
            t.calls += 1;
            t.elems_in += 1;
            t.elems_out += outputs.len() as u64;
        }
        let next = idx + 1;
        let _ = rest;
        let mut result = Vec::new();
        for v in outputs {
            result.extend(Self::feed(stages, tally, next, v, from)?);
        }
        Ok(result)
    }

    /// Walks the chain's mutable state through a coalescing probe.
    /// `probe_value` hashes buffered tuples into the probe's shape
    /// (aggregator counters extrapolate; buffered values must not
    /// change for a jump to be sound).
    pub(crate) fn probe(
        &mut self,
        p: &mut StateProbe<'_>,
        probe_value: &mut dyn FnMut(&Value, &mut StateProbe<'_>),
    ) {
        p.shape(self.stages.len() as u64);
        for s in &mut self.stages {
            match s {
                StageState::Map(f) => {
                    p.shape(1);
                    p.shape(*f as u64);
                }
                StageState::StreamOf => p.shape(2),
                StageState::Agg {
                    kind,
                    count,
                    sum_int,
                    sum_real,
                    saw_real,
                    best,
                } => {
                    p.shape(3);
                    p.shape(*kind as u64);
                    p.num_i64(count);
                    p.num_i64(sum_int);
                    p.shape(sum_real.to_bits());
                    p.shape(*saw_real as u64);
                    p.shape(best.is_some() as u64);
                    if let Some(v) = best {
                        probe_value(v, p);
                    }
                }
                StageState::RadixCombine {
                    first,
                    second,
                    q_first,
                    q_second,
                } => {
                    p.shape(4);
                    p.shape(first.0);
                    p.shape(second.0);
                    p.shape(q_first.len() as u64);
                    for v in q_first.iter() {
                        probe_value(v, p);
                    }
                    p.shape(q_second.len() as u64);
                    for v in q_second.iter() {
                        probe_value(v, p);
                    }
                }
                StageState::Window(w) => {
                    p.shape(5);
                    w.probe(p, probe_value);
                }
                StageState::Take { remaining } => {
                    p.shape(6);
                    p.num(remaining);
                }
                StageState::Bandwidth { bytes, last_nanos } => {
                    p.shape(7);
                    p.num(bytes);
                    // A timestamp: extrapolating it as a count would
                    // scale rather than shift it, so hash it as shape —
                    // a changing value then simply blocks the jump.
                    p.shape(*last_nanos);
                }
                // The compute stages are stateless: op + constant are
                // fixed at compile time, so shape alone pins them.
                StageState::Arith { op, rhs } => {
                    p.shape(8);
                    p.shape(*op as u64);
                    probe_value(rhs, p);
                }
                StageState::Cmp { op, rhs } => {
                    p.shape(9);
                    p.shape(*op as u64);
                    probe_value(rhs, p);
                }
                StageState::Filter { op, rhs } => {
                    p.shape(10);
                    p.shape(*op as u64);
                    probe_value(rhs, p);
                }
                StageState::Quantile { q, hist } => {
                    p.shape(11);
                    p.shape(q.to_bits());
                    hist.probe(p);
                }
            }
        }
        // Explain-analyze counters advance by a constant per period in a
        // steady phase, so a coalesce jump extrapolates them — profiled
        // runs still count every analytically-skipped element.
        p.shape(self.tally.len() as u64);
        for t in &mut self.tally {
            p.num(&mut t.calls);
            p.num(&mut t.elems_in);
            p.num(&mut t.elems_out);
        }
    }

    /// Signals end of stream; aggregates flush. Returns the final
    /// elements.
    ///
    /// # Errors
    ///
    /// Propagates type errors from downstream stages processing flushed
    /// values.
    pub fn finish(&mut self) -> Result<Vec<Value>, EngineError> {
        let mut result = Vec::new();
        for idx in 0..self.stages.len() {
            let flushed: Vec<Value> = match &mut self.stages[idx] {
                StageState::Agg {
                    kind,
                    count,
                    sum_int,
                    sum_real,
                    saw_real,
                    best,
                } => match kind {
                    AggKind::Count => vec![Value::Integer(*count)],
                    AggKind::Sum => {
                        if *saw_real {
                            vec![Value::Real(*sum_real + *sum_int as f64)]
                        } else {
                            vec![Value::Integer(*sum_int)]
                        }
                    }
                    AggKind::Avg => {
                        if *count == 0 {
                            Vec::new()
                        } else {
                            vec![Value::Real((*sum_real + *sum_int as f64) / *count as f64)]
                        }
                    }
                    // Empty streams have no extremum; emit nothing, like
                    // SQL's NULL-free aggregates over empty inputs.
                    AggKind::Max | AggKind::Min => best.take().into_iter().collect(),
                },
                StageState::Window(w) => w.finish(),
                StageState::Bandwidth { bytes, last_nanos } => {
                    if *bytes > 0 && *last_nanos > 0 {
                        vec![Value::Real(
                            *bytes as f64 / (*last_nanos as f64 / 1_000_000_000.0),
                        )]
                    } else {
                        Vec::new()
                    }
                }
                StageState::Quantile { q, hist } => {
                    if hist.is_empty() {
                        Vec::new()
                    } else {
                        vec![Value::Integer(hist.quantile(*q) as i64)]
                    }
                }
                _ => Vec::new(),
            };
            for v in flushed {
                result.extend(Self::feed(
                    &mut self.stages,
                    &mut self.tally,
                    idx + 1,
                    v,
                    None,
                )?);
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scsq_ql::ArrayData;

    fn chain(stages: Vec<Stage>) -> StageChain {
        StageChain::new(&Pipeline {
            input: InputKind::Const { values: vec![] },
            stages,
        })
    }

    #[test]
    fn empty_chain_is_identity() {
        let mut c = chain(vec![]);
        let out = c.process(Value::Integer(5), None).unwrap();
        assert_eq!(out, vec![Value::Integer(5)]);
        assert!(c.finish().unwrap().is_empty());
    }

    #[test]
    fn count_emits_once_at_eos() {
        let mut c = chain(vec![Stage::Agg(AggKind::Count)]);
        for i in 0..7 {
            assert!(c
                .process(Value::synthetic_array(100 + i), None)
                .unwrap()
                .is_empty());
        }
        assert_eq!(c.finish().unwrap(), vec![Value::Integer(7)]);
    }

    #[test]
    fn sum_of_integers_stays_integer() {
        let mut c = chain(vec![Stage::Agg(AggKind::Sum)]);
        for i in 1..=4i64 {
            c.process(Value::Integer(i), None).unwrap();
        }
        assert_eq!(c.finish().unwrap(), vec![Value::Integer(10)]);
    }

    #[test]
    fn sum_widens_to_real_when_needed() {
        let mut c = chain(vec![Stage::Agg(AggKind::Sum)]);
        c.process(Value::Integer(1), None).unwrap();
        c.process(Value::Real(0.5), None).unwrap();
        assert_eq!(c.finish().unwrap(), vec![Value::Real(1.5)]);
    }

    #[test]
    fn sum_rejects_non_numbers() {
        let mut c = chain(vec![Stage::Agg(AggKind::Sum)]);
        let err = c.process(Value::from("x"), None).unwrap_err();
        assert!(err.to_string().contains("expected number"));
    }

    #[test]
    fn streamof_then_count_composes() {
        // streamof(count(...)): identity after the aggregate.
        let mut c = chain(vec![Stage::Agg(AggKind::Count), Stage::StreamOf]);
        c.process(Value::Integer(0), None).unwrap();
        c.process(Value::Integer(0), None).unwrap();
        assert_eq!(c.finish().unwrap(), vec![Value::Integer(2)]);
    }

    #[test]
    fn map_feeds_aggregate() {
        // count(odd(x)) — count arrays after decimation.
        let mut c = chain(vec![Stage::Map(MapFunc::Odd), Stage::Agg(AggKind::Count)]);
        c.process(Value::from(vec![1.0, 2.0, 3.0, 4.0]), None)
            .unwrap();
        assert_eq!(c.finish().unwrap(), vec![Value::Integer(1)]);
    }

    #[test]
    fn radixcombine_pairs_in_order() {
        use scsq_fft::{fft_real, Complex};
        let a = SpHandle(1); // odd-half FFTs
        let b = SpHandle(2); // even-half FFTs
        let mut c = chain(vec![Stage::RadixCombine {
            first: a,
            second: b,
        }]);

        let signal: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).cos()).collect();
        let odd: Vec<f64> = signal.iter().copied().skip(1).step_by(2).collect();
        let even: Vec<f64> = signal.iter().copied().step_by(2).collect();
        let fft_of = |v: &[f64]| {
            Value::Array(ArrayData::Complex(
                fft_real(v)
                    .unwrap()
                    .into_iter()
                    .map(|c| (c.re, c.im))
                    .collect(),
            ))
        };

        // Odd-half arrives first; nothing emitted until its partner.
        assert!(c.process(fft_of(&odd), Some(a)).unwrap().is_empty());
        let out = c.process(fft_of(&even), Some(b)).unwrap();
        assert_eq!(out.len(), 1);
        let Value::Array(ArrayData::Complex(spectrum)) = &out[0] else {
            panic!("expected complex array")
        };
        let direct = fft_real(&signal).unwrap();
        for (got, want) in spectrum.iter().zip(&direct) {
            assert!((Complex::new(got.0, got.1) - *want).abs() < 1e-9);
        }
    }

    #[test]
    fn radixcombine_rejects_unknown_producer() {
        let mut c = chain(vec![Stage::RadixCombine {
            first: SpHandle(1),
            second: SpHandle(2),
        }]);
        let err = c.process(Value::Integer(1), Some(SpHandle(9))).unwrap_err();
        assert!(err.to_string().contains("unexpected producer"));
    }

    #[test]
    fn relay_pipeline_has_producers() {
        let p = Pipeline::relay(vec![SpHandle(3)]);
        assert_eq!(p.producers(), &[SpHandle(3)]);
        assert!(p.stages.is_empty());
    }

    #[test]
    fn metrics_pipeline_has_no_producers() {
        let p = Pipeline {
            input: InputKind::Metrics {
                targets: vec![SpHandle(1)],
            },
            stages: vec![],
        };
        assert!(p.producers().is_empty(), "observers subscribe to nothing");
    }

    #[test]
    fn bandwidth_divides_bytes_by_last_sample_time() {
        let mut c = chain(vec![Stage::Bandwidth]);
        // Two buffers of 500 bytes, the second visible at t = 2 ms.
        assert!(c
            .process(metric_sample(0, 1_000_000, 500), None)
            .unwrap()
            .is_empty());
        c.process(metric_sample(0, 2_000_000, 500), None).unwrap();
        let out = c.finish().unwrap();
        assert_eq!(out, vec![Value::Real(1000.0 / 0.002)]);
    }

    #[test]
    fn bandwidth_over_empty_stream_emits_nothing() {
        let mut c = chain(vec![Stage::Bandwidth]);
        assert!(c.finish().unwrap().is_empty());
    }

    #[test]
    fn bandwidth_rejects_non_samples() {
        let mut c = chain(vec![Stage::Bandwidth]);
        let err = c.process(Value::Integer(5), None).unwrap_err();
        assert!(err.to_string().contains("metric sample"));
    }

    #[test]
    fn quantile_emits_histogram_quantile_at_eos() {
        let mut c = chain(vec![Stage::Quantile { q: 0.5 }]);
        for v in 1..=1000i64 {
            assert!(c.process(Value::Integer(v), None).unwrap().is_empty());
        }
        // p50 of 1..=1000 lands in the [256, 512) bucket: upper bound 511.
        assert_eq!(c.finish().unwrap(), vec![Value::Integer(511)]);
    }

    #[test]
    fn quantile_truncates_reals_and_clamps_to_max() {
        let mut c = chain(vec![Stage::Quantile { q: 1.0 }]);
        c.process(Value::Real(5.9), None).unwrap();
        c.process(Value::Real(6.2), None).unwrap();
        assert_eq!(c.finish().unwrap(), vec![Value::Integer(6)]);
    }

    #[test]
    fn quantile_over_empty_stream_emits_nothing() {
        let mut c = chain(vec![Stage::Quantile { q: 0.99 }]);
        assert!(c.finish().unwrap().is_empty());
    }

    #[test]
    fn quantile_rejects_negative_and_non_numeric() {
        let mut c = chain(vec![Stage::Quantile { q: 0.5 }]);
        assert!(c.process(Value::Integer(-1), None).is_err());
        assert!(c.process(Value::from("x"), None).is_err());
    }
}
