//! Node-selection policies.
//!
//! §2.2: "Currently, a naïve node selection algorithm is used, returning
//! the next available node." §3.2 and §5 derive five observations about
//! better placement and state: "we are currently experimenting with
//! refinements of the node selection algorithm for the BlueGene based on
//! the results of this paper." [`PlacementPolicy::TopologyAware`] is that
//! refinement, built from the paper's own observations:
//!
//! 1. spread receiving BlueGene compute nodes over psets so inbound
//!    streams use many I/O nodes (obs. 1/3 — Queries 5/6 beat 1–4);
//! 2. co-locate back-end sender RPs on one node until saturation
//!    (obs. 3/4 — Query 1 beats Query 2, Query 5 beats Query 6).
//!
//! A user-supplied allocation sequence always wins over the policy — the
//! policy only decides what an unconstrained `sp(q, c)` means.

use scsq_cluster::AllocSeq;
use scsq_cluster::ClusterName;

/// How unconstrained stream processes are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The paper's baseline: next available node in index order.
    #[default]
    Naive,
    /// The refinement motivated by §3.2's observations.
    TopologyAware,
}

impl PlacementPolicy {
    /// Resolves the allocation sequence actually used for a placement
    /// request: explicit user constraints pass through; `Any` is
    /// interpreted per policy.
    pub fn effective(self, cluster: ClusterName, requested: &AllocSeq) -> AllocSeq {
        if !matches!(requested, AllocSeq::Any) {
            return requested.clone();
        }
        match (self, cluster) {
            (PlacementPolicy::Naive, _) => AllocSeq::Any,
            // Observation 1/3: use many I/O nodes — one compute node per
            // pset, round-robin.
            (PlacementPolicy::TopologyAware, ClusterName::BlueGene) => AllocSeq::PsetRoundRobin,
            // Observation 3/4: co-locate back-end RPs on the same node
            // (node 0) until saturation; Linux nodes accept many RPs so
            // an explicit single-node sequence cannot fail.
            (PlacementPolicy::TopologyAware, ClusterName::BackEnd) => AllocSeq::Explicit(vec![0]),
            (PlacementPolicy::TopologyAware, ClusterName::FrontEnd) => AllocSeq::Any,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_constraints_always_win() {
        let user = AllocSeq::Explicit(vec![7]);
        for policy in [PlacementPolicy::Naive, PlacementPolicy::TopologyAware] {
            for cluster in ClusterName::ALL {
                assert_eq!(policy.effective(cluster, &user), user);
            }
        }
    }

    #[test]
    fn naive_leaves_any_alone() {
        assert_eq!(
            PlacementPolicy::Naive.effective(ClusterName::BlueGene, &AllocSeq::Any),
            AllocSeq::Any
        );
    }

    #[test]
    fn aware_spreads_bluegene_and_colocates_backend() {
        assert_eq!(
            PlacementPolicy::TopologyAware.effective(ClusterName::BlueGene, &AllocSeq::Any),
            AllocSeq::PsetRoundRobin
        );
        assert_eq!(
            PlacementPolicy::TopologyAware.effective(ClusterName::BackEnd, &AllocSeq::Any),
            AllocSeq::Explicit(vec![0])
        );
        assert_eq!(
            PlacementPolicy::TopologyAware.effective(ClusterName::FrontEnd, &AllocSeq::Any),
            AllocSeq::Any
        );
    }
}
