//! Whole-column compute kernels for the fused executor.
//!
//! The per-element executors ([`crate::ops::StageChain`] and the fused
//! jump table) pay one dynamic dispatch, one `Value` match, and one
//! move per tuple. For the engine's dominant shapes — long runs of
//! identically-typed tuples flowing into a terminal aggregate — the
//! same work is a single tight loop over a flat array. This module
//! holds those loops: public map/filter/aggregate kernels over
//! [`Column`]s (the substrate the micro-benches measure), plus the
//! `pub(crate)` folds the fused chain uses to absorb a whole
//! [`ColumnarBatch`] into a [`StageState`](crate::ops::StageState)
//! accumulator.
//!
//! Correctness bar: every fold mutates the interpreter's own
//! `StageState` fields by replaying the interpreter's per-element
//! updates *in element order* — integer sums use the same wrapping
//! discipline (plain `+=`), float sums accumulate sequentially so the
//! rounding is bit-identical, max/min replace only on the same strict
//! comparison — so a columnar pass and a per-element pass over the same
//! run leave byte-identical state. `tests/columnar_equiv.rs` enforces
//! this against random pipelines.

use crate::error::EngineError;
use crate::ops::bandwidth_accumulate;
use scsq_ql::column::{Column, ColumnData, SelectionVector, ValidityBitmap};
use scsq_ql::Value;

/// The validity of a column view as an owned bitmap (all-valid stays
/// allocation-free).
fn view_validity(c: &Column) -> ValidityBitmap {
    if c.all_valid() {
        ValidityBitmap::new_valid(c.len())
    } else {
        let bools: Vec<bool> = (0..c.len()).map(|i| c.is_valid(i)).collect();
        ValidityBitmap::from_bools(&bools)
    }
}

/// Adds `rhs` to every row of an `Int64` column (wrapping, so invalid
/// slots cannot abort the loop). Validity propagates unchanged.
/// `None` when the column is not `Int64`-backed.
pub fn add_i64(c: &Column, rhs: i64) -> Option<Column> {
    let xs = c.as_i64()?;
    let out: Vec<i64> = xs.iter().map(|x| x.wrapping_add(rhs)).collect();
    Some(Column::with_validity(
        ColumnData::Int64(out),
        view_validity(c),
    ))
}

/// Multiplies every row of a `Float64` column by `rhs`. Validity
/// propagates unchanged. `None` when the column is not `Float64`-backed.
pub fn mul_f64(c: &Column, rhs: f64) -> Option<Column> {
    let xs = c.as_f64()?;
    let out: Vec<f64> = xs.iter().map(|x| x * rhs).collect();
    Some(Column::with_validity(
        ColumnData::Float64(out),
        view_validity(c),
    ))
}

/// Compares every row of an `Int64` column against `rhs`, producing a
/// `Bool` column of `row < rhs`. Validity propagates unchanged. `None`
/// when the column is not `Int64`-backed.
pub fn cmp_lt_i64(c: &Column, rhs: i64) -> Option<Column> {
    let xs = c.as_i64()?;
    let out: Vec<bool> = xs.iter().map(|x| *x < rhs).collect();
    Some(Column::with_validity(
        ColumnData::Bool(out),
        view_validity(c),
    ))
}

/// Collects the rows of a `Bool` column that are valid and true into a
/// selection vector — the filter half of filter+gather. `None` when
/// the column is not `Bool`-backed.
pub fn filter_to_selection(mask: &Column) -> Option<SelectionVector> {
    let xs = mask.as_bool()?;
    let mut sel = SelectionVector::new();
    if mask.all_valid() {
        for (i, &keep) in xs.iter().enumerate() {
            if keep {
                sel.push(i as u32);
            }
        }
    } else {
        for (i, &keep) in xs.iter().enumerate() {
            if keep && mask.is_valid(i) {
                sel.push(i as u32);
            }
        }
    }
    Some(sel)
}

/// Gathers the selected rows of a column into a new owned column — the
/// gather half of filter+gather. Validity of the selected rows
/// propagates.
///
/// # Panics
///
/// Panics if any selected row is out of range for the column view.
pub fn take(c: &Column, sel: &SelectionVector) -> Column {
    let gather_valid = |c: &Column| {
        ValidityBitmap::from_bools(
            &sel.rows()
                .iter()
                .map(|&i| c.is_valid(i as usize))
                .collect::<Vec<_>>(),
        )
    };
    if let Some(xs) = c.as_i64() {
        let out: Vec<i64> = sel.rows().iter().map(|&i| xs[i as usize]).collect();
        return Column::with_validity(ColumnData::Int64(out), gather_valid(c));
    }
    if let Some(xs) = c.as_f64() {
        let out: Vec<f64> = sel.rows().iter().map(|&i| xs[i as usize]).collect();
        return Column::with_validity(ColumnData::Float64(out), gather_valid(c));
    }
    if let Some(xs) = c.as_bool() {
        let out: Vec<bool> = sel.rows().iter().map(|&i| xs[i as usize]).collect();
        return Column::with_validity(ColumnData::Bool(out), gather_valid(c));
    }
    if let Some(xs) = c.as_synthetic() {
        let out: Vec<u64> = sel.rows().iter().map(|&i| xs[i as usize]).collect();
        return Column::with_validity(ColumnData::Synthetic(out), gather_valid(c));
    }
    // Utf8 and the row fallback gather through `value_at`, staying
    // lossless at O(selected) values.
    let out: Vec<Value> = sel
        .rows()
        .iter()
        .map(|&i| c.value_at(i as usize).unwrap_or(Value::Bag(Vec::new())))
        .collect();
    Column::with_validity(ColumnData::Values(out), gather_valid(c))
}

/// Number of valid rows in a column view.
pub fn count(c: &Column) -> usize {
    if c.all_valid() {
        c.len()
    } else {
        (0..c.len()).filter(|&i| c.is_valid(i)).count()
    }
}

/// Wrapping sum of an `Int64` column's rows (invalid rows are treated
/// as zero). `None` when the column is not `Int64`-backed.
pub fn sum_i64(c: &Column) -> Option<i64> {
    let xs = c.as_i64()?;
    if c.all_valid() {
        Some(xs.iter().fold(0i64, |acc, x| acc.wrapping_add(*x)))
    } else {
        Some(
            xs.iter()
                .enumerate()
                .filter(|(i, _)| c.is_valid(*i))
                .fold(0i64, |acc, (_, x)| acc.wrapping_add(*x)),
        )
    }
}

/// Sequential (element-order) sum of a `Float64` column's rows, so
/// rounding matches a per-element fold bit for bit (invalid rows are
/// skipped). `None` when the column is not `Float64`-backed.
pub fn sum_f64(c: &Column) -> Option<f64> {
    let xs = c.as_f64()?;
    if c.all_valid() {
        Some(xs.iter().fold(0f64, |acc, x| acc + x))
    } else {
        Some(
            xs.iter()
                .enumerate()
                .filter(|(i, _)| c.is_valid(*i))
                .fold(0f64, |acc, (_, x)| acc + x),
        )
    }
}

// ---------------------------------------------------------------------
// pub(crate) folds into the interpreter's own StageState accumulators.
// Callers (`FusedChain::process_batch_columnar`) guarantee the columns
// are all-valid — engine-built batches always are.
// ---------------------------------------------------------------------

/// Folds a whole `Int64` column into a sum/avg accumulator exactly as
/// the interpreter would: `count` once and `sum_int += x` per element,
/// in order (same overflow discipline as the per-element path).
pub(crate) fn fold_sum_i64(count: &mut i64, sum_int: &mut i64, xs: &[i64]) {
    *count += xs.len() as i64;
    for x in xs {
        *sum_int += *x;
    }
}

/// Folds a whole `Float64` column into a sum/avg accumulator exactly as
/// the interpreter would: sequential adds, so rounding is
/// bit-identical to feeding the elements one at a time. An empty run
/// leaves `saw_real` untouched — the interpreter only flips it per
/// real element seen, and the flush type hangs on it.
pub(crate) fn fold_sum_f64(count: &mut i64, sum_real: &mut f64, saw_real: &mut bool, xs: &[f64]) {
    *count += xs.len() as i64;
    for x in xs {
        *saw_real = true;
        *sum_real += *x;
    }
}

/// Folds a whole `Int64` column into a max/min accumulator: the same
/// first-best strict comparison over `f64` the interpreter applies,
/// keeping the original integer value.
pub(crate) fn fold_best_i64(
    count: &mut i64,
    best: &mut Option<Value>,
    xs: &[i64],
    is_better: fn(f64, f64) -> bool,
) {
    *count += xs.len() as i64;
    let mut cur = best.as_ref().and_then(Value::as_real);
    let mut cur_raw: Option<i64> = None;
    for &i in xs {
        let x = i as f64;
        if cur.is_none_or(|b| is_better(x, b)) {
            cur = Some(x);
            cur_raw = Some(i);
        }
    }
    if let Some(i) = cur_raw {
        *best = Some(Value::Integer(i));
    }
}

/// Folds a whole `Float64` column into a max/min accumulator (see
/// [`fold_best_i64`]).
pub(crate) fn fold_best_f64(
    count: &mut i64,
    best: &mut Option<Value>,
    xs: &[f64],
    is_better: fn(f64, f64) -> bool,
) {
    *count += xs.len() as i64;
    let mut cur = best.as_ref().and_then(Value::as_real);
    let mut cur_raw: Option<f64> = None;
    for &x in xs {
        if cur.is_none_or(|b| is_better(x, b)) {
            cur = Some(x);
            cur_raw = Some(x);
        }
    }
    if let Some(x) = cur_raw {
        *best = Some(Value::Real(x));
    }
}

/// Folds a decomposed metric-sample run (`channel`/`time_ns`/`bytes`
/// `Int64` columns) into a bandwidth accumulator, row by row in order.
///
/// # Errors
///
/// A row whose timestamp or byte count is negative reproduces the
/// interpreter's "metric sample" type error for the reconstructed bag
/// (state mutated by earlier rows stays mutated, exactly as the
/// per-element path leaves it).
pub(crate) fn fold_bandwidth(
    bytes: &mut u64,
    last_nanos: &mut u64,
    channel: &[i64],
    time_ns: &[i64],
    sample_bytes: &[i64],
) -> Result<(), EngineError> {
    for ((&ch, &t), &b) in channel.iter().zip(time_ns).zip(sample_bytes) {
        if t < 0 || b < 0 {
            let bag = Value::Bag(vec![
                Value::Integer(ch),
                Value::Integer(t),
                Value::Integer(b),
            ]);
            return bandwidth_accumulate(bytes, last_nanos, &bag);
        }
        *bytes += b as u64;
        if t as u64 > *last_nanos {
            *last_nanos = t as u64;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::metric_sample;

    fn ints(xs: &[i64]) -> Column {
        Column::new(ColumnData::Int64(xs.to_vec()))
    }

    #[test]
    fn map_kernels_transform_whole_columns() {
        let c = ints(&[1, 2, 3]);
        assert_eq!(
            add_i64(&c, 10).unwrap().as_i64(),
            Some(&[11i64, 12, 13][..])
        );
        assert_eq!(
            cmp_lt_i64(&c, 3).unwrap().as_bool(),
            Some(&[true, true, false][..])
        );
        let f = Column::new(ColumnData::Float64(vec![0.5, -1.0]));
        assert_eq!(
            mul_f64(&f, 2.0).unwrap().as_f64(),
            Some(&[1.0f64, -2.0][..])
        );
        assert!(add_i64(&f, 1).is_none());
    }

    #[test]
    fn filter_and_take_compose() {
        let c = ints(&[5, 1, 7, 2, 9]);
        let sel = filter_to_selection(&cmp_lt_i64(&c, 5).unwrap()).unwrap();
        assert_eq!(sel.rows(), &[1, 3]);
        assert_eq!(take(&c, &sel).as_i64(), Some(&[1i64, 2][..]));
    }

    #[test]
    fn filter_skips_invalid_rows() {
        let mut validity = ValidityBitmap::new_valid(3);
        validity.set_invalid(1);
        let mask = Column::with_validity(ColumnData::Bool(vec![true, true, true]), validity);
        let sel = filter_to_selection(&mask).unwrap();
        assert_eq!(sel.rows(), &[0, 2]);
    }

    #[test]
    fn aggregate_kernels_match_scalar_folds() {
        let c = ints(&[3, -1, 4]);
        assert_eq!(count(&c), 3);
        assert_eq!(sum_i64(&c), Some(6));
        let f = Column::new(ColumnData::Float64(vec![0.1, 0.2, 0.3]));
        assert_eq!(sum_f64(&f), Some(0.1 + 0.2 + 0.3));
    }

    #[test]
    fn folds_replay_interpreter_state_updates() {
        let (mut count, mut sum_int) = (2i64, 10i64);
        fold_sum_i64(&mut count, &mut sum_int, &[1, 2, 3]);
        assert_eq!((count, sum_int), (5, 16));

        let mut best = Some(Value::Integer(5));
        let mut c = 0i64;
        fold_best_i64(&mut c, &mut best, &[3, 9, 9], |x, b| x > b);
        assert_eq!(best, Some(Value::Integer(9)));
        fold_best_i64(&mut c, &mut best, &[1, 2], |x, b| x < b);
        assert_eq!(best, Some(Value::Integer(1)));

        let mut bestf = None;
        let mut cf = 0i64;
        fold_best_f64(&mut cf, &mut bestf, &[1.5, -2.0], |x, b| x < b);
        assert_eq!(bestf, Some(Value::Real(-2.0)));
    }

    #[test]
    fn bandwidth_fold_matches_per_sample_accumulation() {
        let (mut bytes, mut last) = (0u64, 0u64);
        fold_bandwidth(&mut bytes, &mut last, &[0, 0], &[100, 300], &[10, 20]).unwrap();
        assert_eq!((bytes, last), (30, 300));

        let (mut b2, mut l2) = (0u64, 0u64);
        for s in [metric_sample(0, 100, 10), metric_sample(0, 300, 20)] {
            bandwidth_accumulate(&mut b2, &mut l2, &s).unwrap();
        }
        assert_eq!((bytes, last), (b2, l2));

        let err = fold_bandwidth(&mut bytes, &mut last, &[0], &[-1], &[5]).unwrap_err();
        assert!(err.to_string().contains("metric sample"));
        assert_eq!((bytes, last), (30, 300), "failed row mutates nothing");
    }
}
