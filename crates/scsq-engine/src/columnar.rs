//! Whole-column compute kernels for the fused executor.
//!
//! The per-element executors ([`crate::ops::StageChain`] and the fused
//! jump table) pay one dynamic dispatch, one `Value` match, and one
//! move per tuple. For the engine's dominant shapes — long runs of
//! identically-typed tuples flowing into a terminal aggregate — the
//! same work is a single tight loop over a flat array. This module
//! holds those loops: public map/filter/aggregate kernels over
//! [`Column`]s (the substrate the micro-benches measure), plus the
//! `pub(crate)` folds the fused chain uses to absorb a whole
//! [`ColumnarBatch`](scsq_ql::column::ColumnarBatch) into a
//! (crate-private) `StageState` accumulator.
//!
//! Correctness bar: every fold mutates the interpreter's own
//! `StageState` fields by replaying the interpreter's per-element
//! updates *in element order* — integer sums use the same wrapping
//! discipline (plain `+=`), float sums accumulate sequentially so the
//! rounding is bit-identical, max/min replace only on the same strict
//! comparison — so a columnar pass and a per-element pass over the same
//! run leave byte-identical state. `tests/columnar_equiv.rs` enforces
//! this against random pipelines.

use crate::error::EngineError;
use crate::ops::{bandwidth_accumulate, quantile_accumulate, ArithOp, CmpOp, MapFunc};
use scsq_ql::column::{Column, ColumnData, SelectionVector, ValidityBitmap};
use scsq_ql::Value;
use scsq_sim::LatencyHistogram;

/// Lane count of the chunked fold kernels: wide enough to fill a
/// 512-bit vector of `i64`/`f64`, small enough that the scalar drain of
/// a short column stays trivial.
const LANES: usize = 8;

/// The validity of a column view as an owned bitmap (all-valid stays
/// allocation-free).
fn view_validity(c: &Column) -> ValidityBitmap {
    if c.all_valid() {
        ValidityBitmap::new_valid(c.len())
    } else {
        let bools: Vec<bool> = (0..c.len()).map(|i| c.is_valid(i)).collect();
        ValidityBitmap::from_bools(&bools)
    }
}

/// Applies `row op rhs` to every row of an `Int64` column (wrapping,
/// the same discipline as the scalar `arith` stage, so invalid slots
/// cannot abort the loop). Validity propagates unchanged. `None` when
/// the column is not `Int64`-backed.
pub fn arith_i64(c: &Column, op: ArithOp, rhs: i64) -> Option<Column> {
    let xs = c.as_i64()?;
    let out: Vec<i64> = match op {
        ArithOp::Add => xs.iter().map(|x| x.wrapping_add(rhs)).collect(),
        ArithOp::Sub => xs.iter().map(|x| x.wrapping_sub(rhs)).collect(),
        ArithOp::Mul => xs.iter().map(|x| x.wrapping_mul(rhs)).collect(),
    };
    Some(Column::with_validity(
        ColumnData::Int64(out),
        view_validity(c),
    ))
}

/// Applies `row op rhs` over `f64` to every row of a numeric column —
/// `Float64` directly, `Int64` widened per element exactly as the
/// scalar `arith` stage widens via `Value::as_real`. Produces a
/// `Float64` column; validity propagates unchanged. `None` for
/// non-numeric columns.
pub fn arith_f64(c: &Column, op: ArithOp, rhs: f64) -> Option<Column> {
    fn apply(xs: impl Iterator<Item = f64>, op: ArithOp, rhs: f64) -> Vec<f64> {
        match op {
            ArithOp::Add => xs.map(|x| x + rhs).collect(),
            ArithOp::Sub => xs.map(|x| x - rhs).collect(),
            ArithOp::Mul => xs.map(|x| x * rhs).collect(),
        }
    }
    let out = if let Some(xs) = c.as_f64() {
        apply(xs.iter().copied(), op, rhs)
    } else {
        let xs = c.as_i64()?;
        apply(xs.iter().map(|&x| x as f64), op, rhs)
    };
    Some(Column::with_validity(
        ColumnData::Float64(out),
        view_validity(c),
    ))
}

/// Compares every row of an `Int64` column against `rhs` with exact
/// integer ordering (the scalar `cmp` stage's integer/integer arm),
/// producing a `Bool` mask. Validity propagates unchanged. `None` when
/// the column is not `Int64`-backed.
pub fn cmp_mask_i64(c: &Column, op: CmpOp, rhs: i64) -> Option<Column> {
    let xs = c.as_i64()?;
    let out: Vec<bool> = match op {
        CmpOp::Lt => xs.iter().map(|x| *x < rhs).collect(),
        CmpOp::Le => xs.iter().map(|x| *x <= rhs).collect(),
        CmpOp::Gt => xs.iter().map(|x| *x > rhs).collect(),
        CmpOp::Ge => xs.iter().map(|x| *x >= rhs).collect(),
        CmpOp::Eq => xs.iter().map(|x| *x == rhs).collect(),
        CmpOp::Ne => xs.iter().map(|x| *x != rhs).collect(),
    };
    Some(Column::with_validity(
        ColumnData::Bool(out),
        view_validity(c),
    ))
}

/// Compares every row of a numeric column against `rhs` with raw IEEE
/// `f64` operators (`Int64` rows widen per element) — the scalar `cmp`
/// stage's mixed-numeric arm. Produces a `Bool` mask; validity
/// propagates unchanged. `None` for non-numeric columns.
pub fn cmp_mask_f64(c: &Column, op: CmpOp, rhs: f64) -> Option<Column> {
    fn apply(xs: impl Iterator<Item = f64>, op: CmpOp, rhs: f64) -> Vec<bool> {
        match op {
            CmpOp::Lt => xs.map(|x| x < rhs).collect(),
            CmpOp::Le => xs.map(|x| x <= rhs).collect(),
            CmpOp::Gt => xs.map(|x| x > rhs).collect(),
            CmpOp::Ge => xs.map(|x| x >= rhs).collect(),
            CmpOp::Eq => xs.map(|x| x == rhs).collect(),
            CmpOp::Ne => xs.map(|x| x != rhs).collect(),
        }
    }
    let out = if let Some(xs) = c.as_f64() {
        apply(xs.iter().copied(), op, rhs)
    } else {
        let xs = c.as_i64()?;
        apply(xs.iter().map(|&x| x as f64), op, rhs)
    };
    Some(Column::with_validity(
        ColumnData::Bool(out),
        view_validity(c),
    ))
}

/// Compares every row of a `Utf8` column against `rhs`
/// lexicographically (the scalar `cmp` stage's string/string arm),
/// producing a `Bool` mask over the flat offset/byte storage — no
/// per-row `Value` is materialized. Validity propagates unchanged.
/// `None` when the column is not `Utf8`-backed.
pub fn cmp_mask_utf8(c: &Column, op: CmpOp, rhs: &str) -> Option<Column> {
    let (offsets, bytes) = c.as_utf8()?;
    let rhs = rhs.as_bytes();
    // Byte-wise comparison equals `str` comparison for UTF-8.
    let out: Vec<bool> = offsets
        .windows(2)
        .map(|w| op.holds(bytes[w[0] as usize..w[1] as usize].cmp(rhs)))
        .collect();
    Some(Column::with_validity(
        ColumnData::Bool(out),
        view_validity(c),
    ))
}

/// Applies an elementwise map function to a `Synthetic` column
/// symbolically, exactly like `funcs::apply_map` on synthetic arrays:
/// decimation halves each byte size, `fft`/`power` preserve it.
/// Validity propagates unchanged. `None` when the column is not
/// `Synthetic`-backed.
pub fn map_synthetic(c: &Column, f: MapFunc) -> Option<Column> {
    let xs = c.as_synthetic()?;
    let out: Vec<u64> = match f {
        MapFunc::Odd | MapFunc::Even => xs.iter().map(|b| b / 2).collect(),
        MapFunc::Fft | MapFunc::Power => xs.to_vec(),
    };
    Some(Column::with_validity(
        ColumnData::Synthetic(out),
        view_validity(c),
    ))
}

/// Legacy spelling of [`arith_i64`] with [`ArithOp::Add`].
pub fn add_i64(c: &Column, rhs: i64) -> Option<Column> {
    arith_i64(c, ArithOp::Add, rhs)
}

/// Legacy spelling of [`arith_f64`] with [`ArithOp::Mul`] on a
/// `Float64` column.
pub fn mul_f64(c: &Column, rhs: f64) -> Option<Column> {
    c.as_f64()?;
    arith_f64(c, ArithOp::Mul, rhs)
}

/// Legacy spelling of [`cmp_mask_i64`] with [`CmpOp::Lt`].
pub fn cmp_lt_i64(c: &Column, rhs: i64) -> Option<Column> {
    cmp_mask_i64(c, CmpOp::Lt, rhs)
}

/// Collects the rows of a `Bool` column that are valid and true into a
/// selection vector — the filter half of filter+gather. `None` when
/// the column is not `Bool`-backed.
pub fn filter_to_selection(mask: &Column) -> Option<SelectionVector> {
    let xs = mask.as_bool()?;
    let mut sel = SelectionVector::new();
    if mask.all_valid() {
        for (i, &keep) in xs.iter().enumerate() {
            if keep {
                sel.push(i as u32);
            }
        }
    } else {
        for (i, &keep) in xs.iter().enumerate() {
            if keep && mask.is_valid(i) {
                sel.push(i as u32);
            }
        }
    }
    Some(sel)
}

/// Narrows an existing selection by a `Bool` mask indexed in the
/// *original* row space: row `r` survives when it was already selected
/// and `mask[r]` is valid and true. This is how a second `filter` stage
/// composes with the survivors of the first without gathering the data
/// column in between. `None` when the mask is not `Bool`-backed.
pub fn intersect_selection(mask: &Column, sel: &SelectionVector) -> Option<SelectionVector> {
    let xs = mask.as_bool()?;
    let mut out = SelectionVector::new();
    if mask.all_valid() {
        for &r in sel.rows() {
            if xs[r as usize] {
                out.push(r);
            }
        }
    } else {
        for &r in sel.rows() {
            if xs[r as usize] && mask.is_valid(r as usize) {
                out.push(r);
            }
        }
    }
    Some(out)
}

/// Gathers the selected rows of a column into a new owned column — the
/// gather half of filter+gather. Validity of the selected rows
/// propagates.
///
/// # Panics
///
/// Panics if any selected row is out of range for the column view.
pub fn take(c: &Column, sel: &SelectionVector) -> Column {
    let gather_valid = |c: &Column| {
        ValidityBitmap::from_bools(
            &sel.rows()
                .iter()
                .map(|&i| c.is_valid(i as usize))
                .collect::<Vec<_>>(),
        )
    };
    if let Some(xs) = c.as_i64() {
        let out: Vec<i64> = sel.rows().iter().map(|&i| xs[i as usize]).collect();
        return Column::with_validity(ColumnData::Int64(out), gather_valid(c));
    }
    if let Some(xs) = c.as_f64() {
        let out: Vec<f64> = sel.rows().iter().map(|&i| xs[i as usize]).collect();
        return Column::with_validity(ColumnData::Float64(out), gather_valid(c));
    }
    if let Some(xs) = c.as_bool() {
        let out: Vec<bool> = sel.rows().iter().map(|&i| xs[i as usize]).collect();
        return Column::with_validity(ColumnData::Bool(out), gather_valid(c));
    }
    if let Some(xs) = c.as_synthetic() {
        let out: Vec<u64> = sel.rows().iter().map(|&i| xs[i as usize]).collect();
        return Column::with_validity(ColumnData::Synthetic(out), gather_valid(c));
    }
    // Utf8 and the row fallback gather through `value_at`, staying
    // lossless at O(selected) values.
    let out: Vec<Value> = sel
        .rows()
        .iter()
        .map(|&i| c.value_at(i as usize).unwrap_or(Value::Bag(Vec::new())))
        .collect();
    Column::with_validity(ColumnData::Values(out), gather_valid(c))
}

/// Number of valid rows in a column view.
pub fn count(c: &Column) -> usize {
    if c.all_valid() {
        c.len()
    } else {
        (0..c.len()).filter(|&i| c.is_valid(i)).count()
    }
}

/// Wrapping sum of an `Int64` column's rows (invalid rows are treated
/// as zero). `None` when the column is not `Int64`-backed.
pub fn sum_i64(c: &Column) -> Option<i64> {
    let xs = c.as_i64()?;
    if c.all_valid() {
        Some(xs.iter().fold(0i64, |acc, x| acc.wrapping_add(*x)))
    } else {
        Some(
            xs.iter()
                .enumerate()
                .filter(|(i, _)| c.is_valid(*i))
                .fold(0i64, |acc, (_, x)| acc.wrapping_add(*x)),
        )
    }
}

/// Sequential (element-order) sum of a `Float64` column's rows, so
/// rounding matches a per-element fold bit for bit (invalid rows are
/// skipped). `None` when the column is not `Float64`-backed.
pub fn sum_f64(c: &Column) -> Option<f64> {
    let xs = c.as_f64()?;
    if c.all_valid() {
        Some(xs.iter().fold(0f64, |acc, x| acc + x))
    } else {
        Some(
            xs.iter()
                .enumerate()
                .filter(|(i, _)| c.is_valid(*i))
                .fold(0f64, |acc, (_, x)| acc + x),
        )
    }
}

// ---------------------------------------------------------------------
// pub(crate) folds into the interpreter's own StageState accumulators.
// Callers (`FusedChain::process_batch_columnar`) guarantee the columns
// are all-valid — engine-built batches always are.
// ---------------------------------------------------------------------

/// Folds a whole `Int64` column into a sum/avg accumulator exactly as
/// the interpreter would. Integer addition is associative modulo 2^64,
/// so the fold can run `LANES` independent wrapping accumulators (the
/// shape LLVM turns into vector adds) and still land on the identical
/// sum the sequential per-element path produces. Release builds wrap
/// either way; the lane split only changes *where* a debug build would
/// trip an overflow check, which is why the lanes wrap explicitly while
/// the interpreter's `+=` stays the semantic reference.
pub(crate) fn fold_sum_i64(count: &mut i64, sum_int: &mut i64, xs: &[i64]) {
    *count += xs.len() as i64;
    let mut lanes = [0i64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (lane, x) in lanes.iter_mut().zip(chunk) {
            *lane = lane.wrapping_add(*x);
        }
    }
    let mut acc = lanes
        .into_iter()
        .fold(0i64, |acc, lane| acc.wrapping_add(lane));
    for x in chunks.remainder() {
        acc = acc.wrapping_add(*x);
    }
    *sum_int = sum_int.wrapping_add(acc);
}

/// Folds a whole `Float64` column into a sum/avg accumulator exactly as
/// the interpreter would: sequential adds, so rounding is
/// bit-identical to feeding the elements one at a time. An empty run
/// leaves `saw_real` untouched — the interpreter only flips it per
/// real element seen, and the flush type hangs on it.
pub(crate) fn fold_sum_f64(count: &mut i64, sum_real: &mut f64, saw_real: &mut bool, xs: &[f64]) {
    *count += xs.len() as i64;
    for x in xs {
        *saw_real = true;
        *sum_real += *x;
    }
}

/// Extremum of a non-empty `f64` key slice via `LANES` independent
/// `f64::max`/`f64::min` accumulators — the branch-free shape LLVM
/// vectorizes. Callers must rule out NaN keys first: `max`/`min`
/// silently drop a NaN operand, which would diverge from the
/// interpreter's strict-comparison walk.
fn column_extremum(keys: impl Iterator<Item = f64>, maximize: bool) -> f64 {
    let init = if maximize {
        f64::NEG_INFINITY
    } else {
        f64::INFINITY
    };
    let mut lanes = [init; LANES];
    for (i, k) in keys.enumerate() {
        let lane = &mut lanes[i % LANES];
        *lane = if maximize { lane.max(k) } else { lane.min(k) };
    }
    lanes
        .into_iter()
        .fold(init, |a, l| if maximize { a.max(l) } else { a.min(l) })
}

/// Whether `x` beats `b` under the interpreter's strict max/min
/// comparison over `f64` keys.
fn beats(x: f64, b: f64, maximize: bool) -> bool {
    if maximize {
        x > b
    } else {
        x < b
    }
}

/// Folds a whole `Int64` column into a max/min accumulator: the same
/// first-best strict comparison over `f64` keys the interpreter
/// applies, keeping the original integer value. Runs in two passes —
/// a chunked [`column_extremum`] over the keys, then a scan for the
/// first element whose key equals it — which lands on the same winner
/// as the sequential walk: strict comparison keeps the *first*
/// occurrence of the best key, and equal `f64` keys from distinct
/// integers (possible past 2^53) tie exactly the way the interpreter
/// ties, first one wins.
pub(crate) fn fold_best_i64(count: &mut i64, best: &mut Option<Value>, xs: &[i64], maximize: bool) {
    *count += xs.len() as i64;
    let Some(&first) = xs.first() else { return };
    let m = column_extremum(xs.iter().map(|&i| i as f64), maximize);
    let winner = if m == first as f64 {
        first
    } else {
        xs[xs.iter().position(|&i| i as f64 == m).unwrap()]
    };
    if best
        .as_ref()
        .and_then(Value::as_real)
        .is_none_or(|b| beats(m, b, maximize))
    {
        *best = Some(Value::Integer(winner));
    }
}

/// Folds a whole `Float64` column into a max/min accumulator (see
/// [`fold_best_i64`]). A column containing NaN falls back to the
/// sequential walk: NaN loses every strict comparison, so once a NaN
/// seeds the accumulator it sticks — semantics `f64::max`/`f64::min`
/// cannot reproduce.
pub(crate) fn fold_best_f64(count: &mut i64, best: &mut Option<Value>, xs: &[f64], maximize: bool) {
    *count += xs.len() as i64;
    if xs.is_empty() {
        return;
    }
    let mut cur = best.as_ref().and_then(Value::as_real);
    if xs.iter().any(|x| x.is_nan()) {
        let mut cur_raw: Option<f64> = None;
        for &x in xs {
            if cur.is_none_or(|b| beats(x, b, maximize)) {
                cur = Some(x);
                cur_raw = Some(x);
            }
        }
        if let Some(x) = cur_raw {
            *best = Some(Value::Real(x));
        }
        return;
    }
    let m = column_extremum(xs.iter().copied(), maximize);
    if cur.is_none_or(|b| beats(m, b, maximize)) {
        // -0.0 == 0.0 makes the equality scan honor the same "first of
        // equals wins" rule as the strict walk.
        let winner = xs[xs.iter().position(|&x| x == m).unwrap()];
        *best = Some(Value::Real(winner));
    }
}

/// Folds a decomposed metric-sample run (`channel`/`time_ns`/`bytes`
/// `Int64` columns) into a bandwidth accumulator, row by row in order.
///
/// # Errors
///
/// A row whose timestamp or byte count is negative reproduces the
/// interpreter's "metric sample" type error for the reconstructed bag
/// (state mutated by earlier rows stays mutated, exactly as the
/// per-element path leaves it).
pub(crate) fn fold_bandwidth(
    bytes: &mut u64,
    last_nanos: &mut u64,
    channel: &[i64],
    time_ns: &[i64],
    sample_bytes: &[i64],
) -> Result<(), EngineError> {
    // Negative timestamps/byte counts are the error path, so the hot
    // loop works a chunk at a time: one sign-bit sweep (OR of the raw
    // i64s goes negative iff any element does) clears a whole chunk for
    // branch-free sum/max, and only a dirty chunk replays row by row to
    // reproduce the exact failing sample and the partial state the
    // per-element path would leave behind.
    const CHUNK: usize = 1024;
    let dirty = |xs: &[i64]| xs.iter().fold(0i64, |acc, &v| acc | v) < 0;
    for start in (0..time_ns.len()).step_by(CHUNK) {
        let end = (start + CHUNK).min(time_ns.len());
        let (t, b) = (&time_ns[start..end], &sample_bytes[start..end]);
        if dirty(t) || dirty(b) {
            for ((&ch, &t), &b) in channel[start..end].iter().zip(t).zip(b) {
                if t < 0 || b < 0 {
                    let bag = Value::Bag(vec![
                        Value::Integer(ch),
                        Value::Integer(t),
                        Value::Integer(b),
                    ]);
                    return bandwidth_accumulate(bytes, last_nanos, &bag);
                }
                *bytes += b as u64;
                if t as u64 > *last_nanos {
                    *last_nanos = t as u64;
                }
            }
            unreachable!("a dirty chunk must contain a negative sample");
        }
        *bytes += b.iter().map(|&v| v as u64).sum::<u64>();
        let mx = t.iter().fold(i64::MIN, |a, &v| a.max(v));
        if end > start && mx as u64 > *last_nanos {
            *last_nanos = mx as u64;
        }
    }
    Ok(())
}

/// Folds a whole `Int64` column into a quantile histogram exactly as
/// the interpreter would. Bucket counts are order-independent, but the
/// fold still walks in element order so an error (a negative value)
/// leaves exactly the partial state the per-element path would.
///
/// # Errors
///
/// A negative value reproduces the interpreter's "non-negative number"
/// type error for that element.
pub(crate) fn fold_quantile_i64(
    hist: &mut LatencyHistogram,
    xs: &[i64],
) -> Result<(), EngineError> {
    for &x in xs {
        if x < 0 {
            return quantile_accumulate(hist, &Value::Integer(x));
        }
        hist.record(x as u64);
    }
    Ok(())
}

/// [`fold_quantile_i64`] over a `Float64` column: finite non-negative
/// reals truncate toward zero, exactly as the scalar accumulate does.
///
/// # Errors
///
/// A negative, NaN or infinite value reproduces the interpreter's
/// "non-negative number" type error for that element.
pub(crate) fn fold_quantile_f64(
    hist: &mut LatencyHistogram,
    xs: &[f64],
) -> Result<(), EngineError> {
    for &x in xs {
        if !(x.is_finite() && x >= 0.0) {
            return quantile_accumulate(hist, &Value::Real(x));
        }
        hist.record(x as u64);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Selection-aware folds: same accumulators, but only the rows a filter
// stage kept. These replay the interpreter walk index by index — the
// survivors of a filter are rarely the hot path's long dense run, and
// sequential order is what keeps float rounding byte-identical.
// ---------------------------------------------------------------------

/// [`fold_sum_i64`] restricted to the selected rows.
pub(crate) fn fold_sum_i64_sel(
    count: &mut i64,
    sum_int: &mut i64,
    xs: &[i64],
    sel: &SelectionVector,
) {
    *count += sel.len() as i64;
    for &r in sel.rows() {
        *sum_int = sum_int.wrapping_add(xs[r as usize]);
    }
}

/// [`fold_sum_f64`] restricted to the selected rows.
pub(crate) fn fold_sum_f64_sel(
    count: &mut i64,
    sum_real: &mut f64,
    saw_real: &mut bool,
    xs: &[f64],
    sel: &SelectionVector,
) {
    *count += sel.len() as i64;
    for &r in sel.rows() {
        *saw_real = true;
        *sum_real += xs[r as usize];
    }
}

/// [`fold_best_i64`] restricted to the selected rows.
pub(crate) fn fold_best_i64_sel(
    count: &mut i64,
    best: &mut Option<Value>,
    xs: &[i64],
    sel: &SelectionVector,
    maximize: bool,
) {
    *count += sel.len() as i64;
    let mut cur = best.as_ref().and_then(Value::as_real);
    let mut cur_raw: Option<i64> = None;
    for &r in sel.rows() {
        let i = xs[r as usize];
        let x = i as f64;
        if cur.is_none_or(|b| beats(x, b, maximize)) {
            cur = Some(x);
            cur_raw = Some(i);
        }
    }
    if let Some(i) = cur_raw {
        *best = Some(Value::Integer(i));
    }
}

/// [`fold_best_f64`] restricted to the selected rows.
pub(crate) fn fold_best_f64_sel(
    count: &mut i64,
    best: &mut Option<Value>,
    xs: &[f64],
    sel: &SelectionVector,
    maximize: bool,
) {
    *count += sel.len() as i64;
    let mut cur = best.as_ref().and_then(Value::as_real);
    let mut cur_raw: Option<f64> = None;
    for &r in sel.rows() {
        let x = xs[r as usize];
        if cur.is_none_or(|b| beats(x, b, maximize)) {
            cur = Some(x);
            cur_raw = Some(x);
        }
    }
    if let Some(x) = cur_raw {
        *best = Some(Value::Real(x));
    }
}

/// [`fold_quantile_i64`] restricted to the selected rows.
pub(crate) fn fold_quantile_i64_sel(
    hist: &mut LatencyHistogram,
    xs: &[i64],
    sel: &SelectionVector,
) -> Result<(), EngineError> {
    for &r in sel.rows() {
        let x = xs[r as usize];
        if x < 0 {
            return quantile_accumulate(hist, &Value::Integer(x));
        }
        hist.record(x as u64);
    }
    Ok(())
}

/// [`fold_quantile_f64`] restricted to the selected rows.
pub(crate) fn fold_quantile_f64_sel(
    hist: &mut LatencyHistogram,
    xs: &[f64],
    sel: &SelectionVector,
) -> Result<(), EngineError> {
    for &r in sel.rows() {
        let x = xs[r as usize];
        if !(x.is_finite() && x >= 0.0) {
            return quantile_accumulate(hist, &Value::Real(x));
        }
        hist.record(x as u64);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::metric_sample;

    fn ints(xs: &[i64]) -> Column {
        Column::new(ColumnData::Int64(xs.to_vec()))
    }

    #[test]
    fn map_kernels_transform_whole_columns() {
        let c = ints(&[1, 2, 3]);
        assert_eq!(
            add_i64(&c, 10).unwrap().as_i64(),
            Some(&[11i64, 12, 13][..])
        );
        assert_eq!(
            cmp_lt_i64(&c, 3).unwrap().as_bool(),
            Some(&[true, true, false][..])
        );
        let f = Column::new(ColumnData::Float64(vec![0.5, -1.0]));
        assert_eq!(
            mul_f64(&f, 2.0).unwrap().as_f64(),
            Some(&[1.0f64, -2.0][..])
        );
        assert!(add_i64(&f, 1).is_none());
    }

    #[test]
    fn filter_and_take_compose() {
        let c = ints(&[5, 1, 7, 2, 9]);
        let sel = filter_to_selection(&cmp_lt_i64(&c, 5).unwrap()).unwrap();
        assert_eq!(sel.rows(), &[1, 3]);
        assert_eq!(take(&c, &sel).as_i64(), Some(&[1i64, 2][..]));
    }

    #[test]
    fn filter_skips_invalid_rows() {
        let mut validity = ValidityBitmap::new_valid(3);
        validity.set_invalid(1);
        let mask = Column::with_validity(ColumnData::Bool(vec![true, true, true]), validity);
        let sel = filter_to_selection(&mask).unwrap();
        assert_eq!(sel.rows(), &[0, 2]);
    }

    #[test]
    fn bitmap_and_selection_survive_non_word_lengths() {
        // 127 rows straddle the validity bitmap's 64-bit words;
        // invalidate rows on both sides of the word boundary and at the
        // tail, and check every kernel that consults validity.
        let n = 127usize;
        let xs: Vec<i64> = (0..n as i64).collect();
        let dead = [0usize, 63, 64, 65, 126];
        let mut validity = ValidityBitmap::new_valid(n);
        for &i in &dead {
            validity.set_invalid(i);
        }
        let c = Column::with_validity(ColumnData::Int64(xs.clone()), validity);
        assert_eq!(count(&c), n - dead.len());
        let expected: i64 = (0..n as i64)
            .filter(|i| !dead.contains(&(*i as usize)))
            .sum();
        assert_eq!(sum_i64(&c), Some(expected));
        // An all-true mask over the same validity keeps exactly the
        // valid rows, in order.
        let mask = cmp_lt_i64(&c, n as i64).unwrap();
        let sel = filter_to_selection(&mask).unwrap();
        assert_eq!(sel.rows().len(), n - dead.len());
        assert!(dead.iter().all(|&d| !sel.rows().contains(&(d as u32))));
        let gathered = take(&c, &sel);
        assert!(gathered.all_valid());
        assert_eq!(sum_i64(&gathered), Some(expected));
        // Narrowing by a second mask at the word boundary composes.
        let second = cmp_lt_i64(&c, 64).unwrap();
        let narrowed = intersect_selection(&second, &sel).unwrap();
        assert_eq!(
            narrowed.rows().len(),
            (0..64).filter(|i| !dead.contains(i)).count()
        );
    }

    #[test]
    fn empty_selection_batches_flow_through_kernels() {
        // 70 rows (not a word multiple), nothing survives the filter:
        // the empty selection must compose and gather to empty without
        // touching fold state.
        let c = ints(&(0..70).collect::<Vec<i64>>());
        let mask = cmp_lt_i64(&c, 0).unwrap();
        let sel = filter_to_selection(&mask).unwrap();
        assert!(sel.rows().is_empty());
        let taken = take(&c, &sel);
        assert_eq!(taken.len(), 0);
        assert_eq!(count(&taken), 0);
        assert_eq!(sum_i64(&taken), Some(0));
        let narrowed = intersect_selection(&mask, &sel).unwrap();
        assert!(narrowed.rows().is_empty());
        let (mut cnt, mut sum) = (7i64, 40i64);
        fold_sum_i64(&mut cnt, &mut sum, taken.as_i64().unwrap());
        assert_eq!((cnt, sum), (7, 40));
    }

    #[test]
    fn aggregate_kernels_match_scalar_folds() {
        let c = ints(&[3, -1, 4]);
        assert_eq!(count(&c), 3);
        assert_eq!(sum_i64(&c), Some(6));
        let f = Column::new(ColumnData::Float64(vec![0.1, 0.2, 0.3]));
        assert_eq!(sum_f64(&f), Some(0.1 + 0.2 + 0.3));
    }

    #[test]
    fn folds_replay_interpreter_state_updates() {
        let (mut count, mut sum_int) = (2i64, 10i64);
        fold_sum_i64(&mut count, &mut sum_int, &[1, 2, 3]);
        assert_eq!((count, sum_int), (5, 16));

        let mut best = Some(Value::Integer(5));
        let mut c = 0i64;
        fold_best_i64(&mut c, &mut best, &[3, 9, 9], true);
        assert_eq!(best, Some(Value::Integer(9)));
        fold_best_i64(&mut c, &mut best, &[1, 2], false);
        assert_eq!(best, Some(Value::Integer(1)));

        let mut bestf = None;
        let mut cf = 0i64;
        fold_best_f64(&mut cf, &mut bestf, &[1.5, -2.0], false);
        assert_eq!(bestf, Some(Value::Real(-2.0)));
    }

    #[test]
    fn chunked_folds_match_sequential_reference() {
        // Long enough to exercise full lanes plus a remainder.
        let xs: Vec<i64> = (0..1003).map(|i| i * 7 - 2500).collect();
        let (mut count, mut sum) = (0i64, 0i64);
        fold_sum_i64(&mut count, &mut sum, &xs);
        let mut reference = 0i64;
        for &x in &xs {
            reference += x;
        }
        assert_eq!((count, sum), (1003, reference));

        let mut best = None;
        let mut c = 0i64;
        fold_best_i64(&mut c, &mut best, &xs, true);
        assert_eq!(best, Some(Value::Integer(*xs.iter().max().unwrap())));
        let mut best = None;
        fold_best_i64(&mut c, &mut best, &xs, false);
        assert_eq!(best, Some(Value::Integer(*xs.iter().min().unwrap())));

        let fs: Vec<f64> = (0..517).map(|i| ((i * 31) % 97) as f64 - 48.0).collect();
        let mut best = None;
        fold_best_f64(&mut c, &mut best, &fs, true);
        // First occurrence of the extremum wins, as in the strict walk.
        let seq_max = fs
            .iter()
            .copied()
            .fold(None::<f64>, |b, x| match b {
                Some(b) if x <= b => Some(b),
                _ => Some(x),
            })
            .unwrap();
        assert_eq!(best, Some(Value::Real(seq_max)));
    }

    #[test]
    fn best_fold_nan_falls_back_to_strict_walk() {
        // NaN seeds the accumulator and then loses every strict
        // comparison, so it sticks — the chunked path must defer.
        let mut best = None;
        let mut c = 0i64;
        fold_best_f64(&mut c, &mut best, &[f64::NAN, 3.0, 7.0], true);
        assert!(matches!(best, Some(Value::Real(x)) if x.is_nan()));
    }

    #[test]
    fn arith_kernels_match_scalar_ops() {
        let c = ints(&[4, -3, i64::MAX]);
        assert_eq!(
            arith_i64(&c, ArithOp::Mul, 2).unwrap().as_i64(),
            Some(&[8i64, -6, -2][..]),
            "wrapping multiply mirrors the scalar stage"
        );
        assert_eq!(
            arith_i64(&c, ArithOp::Sub, 1).unwrap().as_i64(),
            Some(&[3i64, -4, i64::MAX - 1][..])
        );
        // Int column with real constant widens to Float64.
        assert_eq!(
            arith_f64(&c, ArithOp::Add, 0.5).unwrap().as_f64(),
            Some(&[4.5f64, -2.5, i64::MAX as f64 + 0.5][..])
        );
        let f = Column::new(ColumnData::Float64(vec![1.0, -2.0]));
        assert_eq!(
            arith_f64(&f, ArithOp::Sub, 3.0).unwrap().as_f64(),
            Some(&[-2.0f64, -5.0][..])
        );
        assert!(arith_i64(&f, ArithOp::Add, 1).is_none());
    }

    #[test]
    fn cmp_kernels_match_scalar_ops() {
        let c = ints(&[1, 5, 5, 9]);
        assert_eq!(
            cmp_mask_i64(&c, CmpOp::Ge, 5).unwrap().as_bool(),
            Some(&[false, true, true, true][..])
        );
        assert_eq!(
            cmp_mask_i64(&c, CmpOp::Ne, 5).unwrap().as_bool(),
            Some(&[true, false, false, true][..])
        );
        assert_eq!(
            cmp_mask_f64(&c, CmpOp::Lt, 5.5).unwrap().as_bool(),
            Some(&[true, true, true, false][..])
        );
        // NaN constant compares false everywhere except `!=`.
        let f = Column::new(ColumnData::Float64(vec![1.0, f64::NAN]));
        assert_eq!(
            cmp_mask_f64(&f, CmpOp::Eq, f64::NAN).unwrap().as_bool(),
            Some(&[false, false][..])
        );
        assert_eq!(
            cmp_mask_f64(&f, CmpOp::Ne, f64::NAN).unwrap().as_bool(),
            Some(&[true, true][..])
        );

        let s = Column::from_values(&[
            Value::Str("alpha".into()),
            Value::Str("beta".into()),
            Value::Str("ant".into()),
        ]);
        assert_eq!(
            cmp_mask_utf8(&s, CmpOp::Lt, "az").unwrap().as_bool(),
            Some(&[true, false, true][..])
        );
        assert_eq!(
            cmp_mask_utf8(&s, CmpOp::Eq, "beta").unwrap().as_bool(),
            Some(&[false, true, false][..])
        );
    }

    #[test]
    fn map_synthetic_mirrors_apply_map() {
        let c = Column::new(ColumnData::Synthetic(vec![100, 7]));
        assert_eq!(
            map_synthetic(&c, MapFunc::Odd).unwrap().as_synthetic(),
            Some(&[50u64, 3][..])
        );
        assert_eq!(
            map_synthetic(&c, MapFunc::Fft).unwrap().as_synthetic(),
            Some(&[100u64, 7][..])
        );
    }

    #[test]
    fn intersect_narrows_existing_selection() {
        let sel = SelectionVector::from_rows(vec![0, 2, 3]);
        let mask = Column::new(ColumnData::Bool(vec![true, true, false, true, true]));
        let out = intersect_selection(&mask, &sel).unwrap();
        assert_eq!(out.rows(), &[0, 3]);

        let mut validity = ValidityBitmap::new_valid(5);
        validity.set_invalid(3);
        let masked = Column::with_validity(ColumnData::Bool(vec![true; 5]), validity);
        let out = intersect_selection(&masked, &sel).unwrap();
        assert_eq!(out.rows(), &[0, 2], "invalid mask rows drop out");
    }

    #[test]
    fn selection_folds_only_touch_selected_rows() {
        let xs = [10i64, 20, 30, 40];
        let sel = SelectionVector::from_rows(vec![1, 3]);
        let (mut count, mut sum) = (0i64, 0i64);
        fold_sum_i64_sel(&mut count, &mut sum, &xs, &sel);
        assert_eq!((count, sum), (2, 60));

        let mut best = None;
        let mut c = 0i64;
        fold_best_i64_sel(&mut c, &mut best, &xs, &sel, false);
        assert_eq!(best, Some(Value::Integer(20)));

        let fs = [1.0f64, -5.0, 2.5, 9.0];
        let (mut count, mut sum, mut saw) = (0i64, 0f64, false);
        fold_sum_f64_sel(&mut count, &mut sum, &mut saw, &fs, &sel);
        assert_eq!((count, sum, saw), (2, 4.0, true));

        let mut best = None;
        fold_best_f64_sel(&mut c, &mut best, &fs, &sel, true);
        assert_eq!(best, Some(Value::Real(9.0)));
    }

    #[test]
    fn bandwidth_fold_matches_per_sample_accumulation() {
        let (mut bytes, mut last) = (0u64, 0u64);
        fold_bandwidth(&mut bytes, &mut last, &[0, 0], &[100, 300], &[10, 20]).unwrap();
        assert_eq!((bytes, last), (30, 300));

        let (mut b2, mut l2) = (0u64, 0u64);
        for s in [metric_sample(0, 100, 10), metric_sample(0, 300, 20)] {
            bandwidth_accumulate(&mut b2, &mut l2, &s).unwrap();
        }
        assert_eq!((bytes, last), (b2, l2));

        let err = fold_bandwidth(&mut bytes, &mut last, &[0], &[-1], &[5]).unwrap_err();
        assert!(err.to_string().contains("metric sample"));
        assert_eq!((bytes, last), (30, 300), "failed row mutates nothing");
    }

    #[test]
    fn cmp_kernels_propagate_nontrivial_validity() {
        let mut validity = ValidityBitmap::new_valid(5);
        validity.set_invalid(1);
        validity.set_invalid(4);
        let c = Column::with_validity(ColumnData::Int64(vec![1, 2, 3, 4, 5]), validity);

        // The mask computes over every slot, but the invalid rows stay
        // invalid, so a filter over the mask never selects them even
        // when the predicate holds there.
        let mask = cmp_mask_i64(&c, CmpOp::Ge, 2).unwrap();
        assert_eq!(mask.as_bool(), Some(&[false, true, true, true, true][..]));
        assert!(!mask.is_valid(1));
        assert!(!mask.is_valid(4));
        let sel = filter_to_selection(&mask).unwrap();
        assert_eq!(sel.rows(), &[2, 3]);

        // Same contract through the arithmetic kernels: validity rides
        // along unchanged.
        let shifted = arith_i64(&c, ArithOp::Add, 10).unwrap();
        assert!(!shifted.is_valid(1) && shifted.is_valid(2));
        let widened = arith_f64(&c, ArithOp::Mul, 0.5).unwrap();
        assert!(!widened.is_valid(4) && widened.is_valid(0));
    }

    #[test]
    fn selection_extremes_all_none_alternating() {
        let c = ints(&[3, 8, 1, 9, 4, 7]);

        // All-pass: the selection is full and folds see every row.
        let all = filter_to_selection(&cmp_mask_i64(&c, CmpOp::Lt, 100).unwrap()).unwrap();
        assert_eq!(all.rows(), &[0, 1, 2, 3, 4, 5]);
        let (mut n, mut sum) = (0i64, 0i64);
        fold_sum_i64_sel(&mut n, &mut sum, c.as_i64().unwrap(), &all);
        assert_eq!((n, sum), (6, 32));

        // None-pass: the selection is empty; folds and intersections
        // must leave every accumulator untouched.
        let none = filter_to_selection(&cmp_mask_i64(&c, CmpOp::Gt, 100).unwrap()).unwrap();
        assert!(none.is_empty());
        let (mut n, mut sum) = (0i64, 0i64);
        fold_sum_i64_sel(&mut n, &mut sum, c.as_i64().unwrap(), &none);
        assert_eq!((n, sum), (0, 0));
        let mut best = None;
        fold_best_i64_sel(&mut n, &mut best, c.as_i64().unwrap(), &none, true);
        assert_eq!(best, None);

        // Alternating: every other row survives; a second filter
        // intersects without re-ordering the original row space.
        let odd_mask = Column::new(ColumnData::Bool(vec![
            false, true, false, true, false, true,
        ]));
        let alternating = filter_to_selection(&odd_mask).unwrap();
        assert_eq!(alternating.rows(), &[1, 3, 5]);
        let second = cmp_mask_i64(&c, CmpOp::Gt, 7).unwrap();
        let both = intersect_selection(&second, &alternating).unwrap();
        assert_eq!(both.rows(), &[1, 3]);

        // Intersecting with the extremes collapses predictably.
        assert_eq!(
            intersect_selection(&odd_mask, &all).unwrap().rows(),
            &[1, 3, 5]
        );
        assert!(intersect_selection(&odd_mask, &none).unwrap().is_empty());
    }
}
