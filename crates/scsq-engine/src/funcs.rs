//! Implementations of SCSQL's elementwise and source functions.
//!
//! These are the *semantics* behind the operator vocabulary: `odd`,
//! `even`, and `fft` transform array objects (backing the paper's radix2
//! function); `grep`/`filename` read a deterministic synthetic corpus
//! (backing the mapreduce example); `receiver` produces signal arrays.

use crate::error::EngineError;
use crate::ops::MapFunc;
use scsq_fft::{combine, fft, fft_real, Complex};
use scsq_ql::{ArrayData, Value};

/// Applies `odd` / `even` / `fft` to one stream element.
///
/// Synthetic arrays (pure-accounting payloads) transform symbolically:
/// decimation halves the byte size, `fft` preserves it — so the
/// benchmark workloads can flow through any pipeline.
///
/// # Errors
///
/// Type error if the element is not an array, or an FFT error for
/// non-power-of-two materialized arrays.
pub fn apply_map(f: MapFunc, value: Value) -> Result<Value, EngineError> {
    let Value::Array(data) = value else {
        return Err(EngineError::type_error("array", &value, map_name(f)));
    };
    let out = match (f, data) {
        (MapFunc::Odd, ArrayData::Real(v)) => {
            ArrayData::Real(v.into_iter().skip(1).step_by(2).collect())
        }
        (MapFunc::Even, ArrayData::Real(v)) => ArrayData::Real(v.into_iter().step_by(2).collect()),
        (MapFunc::Odd, ArrayData::Complex(v)) => {
            ArrayData::Complex(v.into_iter().skip(1).step_by(2).collect())
        }
        (MapFunc::Even, ArrayData::Complex(v)) => {
            ArrayData::Complex(v.into_iter().step_by(2).collect())
        }
        (MapFunc::Odd | MapFunc::Even, ArrayData::Synthetic { bytes }) => {
            ArrayData::Synthetic { bytes: bytes / 2 }
        }
        (MapFunc::Fft, ArrayData::Real(v)) => {
            let spectrum = fft_real(&v).map_err(|e| EngineError::Runtime(e.to_string()))?;
            ArrayData::Complex(spectrum.into_iter().map(|c| (c.re, c.im)).collect())
        }
        (MapFunc::Fft, ArrayData::Complex(v)) => {
            let input: Vec<Complex> = v.into_iter().map(Complex::from).collect();
            let spectrum = fft(&input).map_err(|e| EngineError::Runtime(e.to_string()))?;
            ArrayData::Complex(spectrum.into_iter().map(|c| (c.re, c.im)).collect())
        }
        (MapFunc::Fft, ArrayData::Synthetic { bytes }) => ArrayData::Synthetic { bytes },
        (MapFunc::Power, ArrayData::Real(v)) => {
            ArrayData::Real(v.into_iter().map(|x| x * x).collect())
        }
        (MapFunc::Power, ArrayData::Complex(v)) => {
            ArrayData::Real(v.into_iter().map(|(re, im)| re * re + im * im).collect())
        }
        // Complex bins (16 B) collapse to real powers (8 B); synthetic
        // payloads carry no element type, so the size is left unchanged.
        (MapFunc::Power, ArrayData::Synthetic { bytes }) => ArrayData::Synthetic { bytes },
    };
    Ok(Value::Array(out))
}

fn map_name(f: MapFunc) -> &'static str {
    match f {
        MapFunc::Odd => "odd()",
        MapFunc::Even => "even()",
        MapFunc::Fft => "fft()",
        MapFunc::Power => "power()",
    }
}

/// The `radixcombine` pairing step: combines the FFT of the even samples
/// with the FFT of the odd samples into the FFT of the full signal.
///
/// # Errors
///
/// Type errors for non-complex-array inputs; FFT errors for mismatched
/// halves. Synthetic pairs combine symbolically (byte sizes add).
pub fn radix_combine(even_fft: Value, odd_fft: Value) -> Result<Value, EngineError> {
    match (even_fft, odd_fft) {
        (
            Value::Array(ArrayData::Synthetic { bytes: b1 }),
            Value::Array(ArrayData::Synthetic { bytes: b2 }),
        ) => Ok(Value::Array(ArrayData::Synthetic { bytes: b1 + b2 })),
        (Value::Array(ArrayData::Complex(e)), Value::Array(ArrayData::Complex(o))) => {
            let e: Vec<Complex> = e.into_iter().map(Complex::from).collect();
            let o: Vec<Complex> = o.into_iter().map(Complex::from).collect();
            let full = combine(&e, &o).map_err(|err| EngineError::Runtime(err.to_string()))?;
            Ok(Value::Array(ArrayData::Complex(
                full.into_iter().map(|c| (c.re, c.im)).collect(),
            )))
        }
        (e, o) => Err(EngineError::Runtime(format!(
            "radixcombine expects two complex arrays, got {} and {}",
            e.type_name(),
            o.type_name()
        ))),
    }
}

/// Compute-time charged (in bytes of equivalent memory traffic) for
/// applying a stage function to an element of `bytes` size. Decimation
/// is one pass; `fft` is O(n log n): half a pass per butterfly level
/// over the array's `bytes/8` scalar elements.
pub fn map_cost_bytes(f: MapFunc, bytes: u64) -> u64 {
    match f {
        MapFunc::Odd | MapFunc::Even | MapFunc::Power => bytes,
        MapFunc::Fft => {
            let len = (bytes / 8).max(4);
            let levels = u64::from(len.ilog2());
            bytes.saturating_mul(levels) / 2
        }
    }
}

// ----- synthetic grep corpus ------------------------------------------

/// Words used to build the deterministic corpus.
const WORDS: &[&str] = &[
    "stream",
    "query",
    "torus",
    "antenna",
    "signal",
    "buffer",
    "process",
    "node",
    "pulsar",
    "cluster",
    "bandwidth",
    "telescope",
    "lofar",
    "merge",
    "extract",
];

/// The i-th file name of the corpus table — the paper's `filename(i)`.
pub fn filename(i: i64) -> String {
    format!("lofar_log_{i:04}.txt")
}

/// Deterministic lines of a synthetic corpus file. Each file has 100
/// lines of pseudo-random words derived from the file name, so grep
/// results are stable across runs and machines.
pub fn file_lines(file: &str) -> Vec<String> {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..100)
        .map(|lineno| {
            let n_words = 4 + (next() % 5) as usize;
            let words: Vec<&str> = (0..n_words)
                .map(|_| WORDS[(next() % WORDS.len() as u64) as usize])
                .collect();
            format!("{lineno}: {}", words.join(" "))
        })
        .collect()
}

/// `grep(pattern, file)`: the matching lines, as string values.
pub fn grep(pattern: &str, file: &str) -> Vec<Value> {
    file_lines(file)
        .into_iter()
        .filter(|line| line.contains(pattern))
        .map(Value::Str)
        .collect()
}

// ----- the receiver() signal source -----------------------------------

/// Signal arrays produced by `receiver(name)`: a deterministic mix of
/// tones whose fundamental frequency is derived from the source name, so
/// examples can assert on the resulting spectrum.
pub fn receiver_array(name: &str, index: u64, samples: usize) -> Value {
    let base = 3 + (name.len() as u64 + index) % 13;
    let signal = scsq_fft::sine(samples, base as f64, 1.0);
    let overtone = scsq_fft::sine(samples, (base * 2) as f64, 0.25);
    let mixed: Vec<f64> = signal.iter().zip(&overtone).map(|(a, b)| a + b).collect();
    Value::Array(ArrayData::Real(mixed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_even_partition_real_arrays() {
        let v = Value::from(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let even = apply_map(MapFunc::Even, v.clone()).unwrap();
        let odd = apply_map(MapFunc::Odd, v).unwrap();
        assert_eq!(even, Value::from(vec![0.0, 2.0, 4.0]));
        assert_eq!(odd, Value::from(vec![1.0, 3.0]));
    }

    #[test]
    fn synthetic_arrays_transform_symbolically() {
        let v = Value::synthetic_array(1000);
        let half = apply_map(MapFunc::Odd, v.clone()).unwrap();
        assert_eq!(half, Value::synthetic_array(500));
        let f = apply_map(MapFunc::Fft, v).unwrap();
        assert_eq!(f, Value::synthetic_array(1000));
        let combined =
            radix_combine(Value::synthetic_array(500), Value::synthetic_array(500)).unwrap();
        assert_eq!(combined, Value::synthetic_array(1000));
    }

    #[test]
    fn fft_map_produces_complex_spectrum() {
        let v = Value::from(scsq_fft::sine(64, 4.0, 1.0));
        let out = apply_map(MapFunc::Fft, v).unwrap();
        let Value::Array(ArrayData::Complex(spec)) = out else {
            panic!("expected complex");
        };
        assert_eq!(spec.len(), 64);
        let peak = spec
            .iter()
            .take(32)
            .enumerate()
            .max_by(|a, b| {
                let ma = a.1 .0.hypot(a.1 .1);
                let mb = b.1 .0.hypot(b.1 .1);
                ma.total_cmp(&mb)
            })
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(peak, 4);
    }

    #[test]
    fn power_squares_magnitudes() {
        let real = Value::from(vec![1.0, -2.0, 3.0]);
        assert_eq!(
            apply_map(MapFunc::Power, real).unwrap(),
            Value::from(vec![1.0, 4.0, 9.0])
        );
        let complex = Value::Array(ArrayData::Complex(vec![(3.0, 4.0), (0.0, 2.0)]));
        assert_eq!(
            apply_map(MapFunc::Power, complex).unwrap(),
            Value::from(vec![25.0, 4.0])
        );
        assert_eq!(
            apply_map(MapFunc::Power, Value::synthetic_array(64)).unwrap(),
            Value::synthetic_array(64)
        );
    }

    #[test]
    fn map_rejects_non_arrays() {
        let err = apply_map(MapFunc::Fft, Value::Integer(1)).unwrap_err();
        assert!(err.to_string().contains("expected array"));
    }

    #[test]
    fn radix_combine_rejects_mixed_types() {
        let err = radix_combine(Value::Integer(1), Value::synthetic_array(4)).unwrap_err();
        assert!(err.to_string().contains("complex arrays"));
    }

    #[test]
    fn corpus_is_deterministic_and_distinct_per_file() {
        assert_eq!(file_lines("a.txt"), file_lines("a.txt"));
        assert_ne!(file_lines("a.txt"), file_lines("b.txt"));
        assert_eq!(file_lines("a.txt").len(), 100);
    }

    #[test]
    fn grep_finds_only_matching_lines() {
        let hits = grep("pulsar", &filename(3));
        assert!(!hits.is_empty(), "the corpus should contain pulsar lines");
        for hit in &hits {
            assert!(hit.as_str().unwrap().contains("pulsar"));
        }
        let total = file_lines(&filename(3)).len();
        assert!(hits.len() < total, "grep must filter");
    }

    #[test]
    fn grep_with_no_match_is_empty() {
        assert!(grep("zebra", &filename(1)).is_empty());
    }

    #[test]
    fn receiver_arrays_are_deterministic_power_of_two() {
        let a = receiver_array("s", 0, 1024);
        let b = receiver_array("s", 0, 1024);
        assert_eq!(a, b);
        let Value::Array(data) = &a else { panic!() };
        assert_eq!(data.len(), 1024);
        assert_ne!(a, receiver_array("s", 1, 1024));
    }

    #[test]
    fn fft_cost_exceeds_decimation_cost() {
        assert!(map_cost_bytes(MapFunc::Fft, 1000) > map_cost_bytes(MapFunc::Odd, 1000));
    }
}
